"""Batcher workers: the serving layer's scale-out unit.

PR 6's service ran everything through **one** batcher thread over one
engine and one coalescing window, so the whole pipeline — dynamic batch
formation, lockstep search, cross-batch merge, flush replay — was serial
no matter how many cores the host had.  :class:`BatcherWorker` is the
unit that scales that out (the work-queue/result-queue worker shape of
the lumos ``ASICQuad.Worker`` model): ``ServingConfig.workers`` of them
drain the *shared* :class:`~repro.serving.service.TenantQueues` under the
service lock, and each one owns

* its **own engine** — a :meth:`~repro.engine.engine.QueryEngine.clone`
  over the shared read-only backend, so lockstep searches of different
  batches run truly concurrently;
* its **own coalescing window** — consecutive batches taken by the same
  worker merge across that worker's window, and every flush is replayed
  via :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.replay_flush`
  as an independent scheduling epoch (the PR 4 contract), so a worker's
  flush sequence is field-for-field identical to the offline
  :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.run_windowed`
  path over the batches that worker happened to take — the single-worker
  equivalence pin holds per worker partition (``tests/test_serving.py``).

Batch formation, completion bookkeeping and the admission queue stay in
:class:`~repro.serving.service.QueryService`; the worker is the engine/
window/replay state plus the loop that drives it.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from ..accel.exma_accelerator import AcceleratorRunResult, WindowedRunResult
from ..engine.window import CoalescingWindow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..engine.engine import QueryEngine
    from .service import QueryService, _Pending

__all__ = ["BatcherWorker"]


class BatcherWorker:
    """One batcher worker: a private engine + coalescing window draining
    the service's shared admission queue.

    Created (and started) by :class:`~repro.serving.service.QueryService`;
    everything shared — queue, stats, completion — goes through the
    service under its lock, everything per-worker (engine, window,
    batches awaiting their flush, flush results) lives here and is only
    touched by this worker's thread.
    """

    __slots__ = (
        "index",
        "engine",
        "window",
        "thread",
        "_service",
        "_in_window",
        "_flushes",
        "_window_batches",
        "_issued",
    )

    def __init__(self, service: "QueryService", index: int, engine: "QueryEngine") -> None:
        self.index = index
        self.engine = engine
        self.window = CoalescingWindow(service.config.window)
        self.thread: threading.Thread | None = None
        self._service = service
        #: Batches searched by this worker, awaiting their window flush.
        self._in_window: list[list["_Pending"]] = []
        self._flushes: list[AcceleratorRunResult] = []
        self._window_batches = 0
        self._issued = 0

    def start(self) -> None:
        """Start (or restart) this worker's batcher thread."""
        self.thread = threading.Thread(
            target=self.serve_loop,
            name=f"repro-serving-batcher-{self.index}",
            daemon=True,
        )
        self.thread.start()

    @property
    def alive(self) -> bool:
        """Whether this worker's thread is running."""
        return self.thread is not None and self.thread.is_alive()

    # ------------------------------------------------------------------ #
    # The loop
    # ------------------------------------------------------------------ #

    def serve_loop(self) -> None:
        service = self._service
        while True:
            batch = service._next_batch()
            if batch is None:
                break
            if batch:
                self.run_batch(batch)
            elif self._in_window:
                # Idle tick with a partially filled coalescing window: no
                # new batch is coming to top it off, so flush now — a
                # query's completion must never wait on *future* traffic.
                flushed = self.window.flush()
                if flushed is not None:
                    self.replay(flushed)
        self.finish()

    def run_batch(self, pendings: list["_Pending"]) -> None:
        """Search one dynamic batch and push it through this worker's window.

        The elapsed wall time (search plus any flush replay it triggered)
        feeds the service's EWMA of batch service time, which the
        backpressure ``retry_after`` estimate is based on.
        """
        service = self._service
        started = service._clock()
        result = self.engine.search_batch([pending.query for pending in pendings])
        with service._lock:
            service.stats.searched += len(pendings)
        for pending, interval in zip(pendings, result.intervals):
            pending.interval = interval
        if service._accelerator is None:
            service._complete(pendings, flush_index=-1, worker_index=self.index)
        else:
            self._in_window.append(pendings)
            flushed = self.window.push(result.stats.requests)
            if flushed is not None:
                self.replay(flushed)
        service._observe_service_time(service._clock() - started)

    def replay(self, flushed) -> None:
        """Replay one flushed window — the worker's unit of work.

        Goes through the service's shared :class:`~repro.accel.parallel
        .ParallelReplay`: inline when ``replay_workers == 1``, offloaded
        to the persistent replay pool otherwise (this thread blocks on
        its own flush; flushes from other batcher workers overlap in the
        pool).
        """
        service = self._service
        run = service._replay_flush(flushed)
        pendings = [pending for batch in self._in_window for pending in batch]
        self._in_window = []
        self._flushes.append(run)
        self._window_batches += flushed.batches
        self._issued += flushed.issued
        flush_index = service._record_flush(run, flushed)
        service._complete(pendings, flush_index, worker_index=self.index)

    def finish(self) -> None:
        """Drain the shared queue and force-flush this worker's partial
        window (the stop path; also run inline for a never-started service)."""
        service = self._service
        while True:
            with service._lock:
                batch = service._take_batch()
            if not batch:
                break
            self.run_batch(batch)
        final = self.window.flush()
        if final is not None:
            self.replay(final)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def result(self) -> WindowedRunResult:
        """This worker's replay record, shaped like
        :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.run_windowed`'s.

        For the batch partition this worker took, the flushes are
        field-for-field identical to the offline ``run_windowed`` over the
        same batch streams — both run ``replay_flush`` on identical
        merges.  Call only after the worker stopped (or from its thread).
        """
        return WindowedRunResult(
            name=self._service.config.name,
            flushes=list(self._flushes),
            capacity=self.window.capacity,
            batches=self._window_batches,
            issued=self._issued,
        )
