"""Batcher workers: the serving layer's scale-out unit.

PR 6's service ran everything through **one** batcher thread over one
engine and one coalescing window, so the whole pipeline — dynamic batch
formation, lockstep search, cross-batch merge, flush replay — was serial
no matter how many cores the host had.  :class:`BatcherWorker` is the
unit that scales that out (the work-queue/result-queue worker shape of
the lumos ``ASICQuad.Worker`` model): ``ServingConfig.workers`` of them
drain the *shared* :class:`~repro.serving.service.TenantQueues` under the
service lock, and each one owns

* its **own engine** — a :meth:`~repro.engine.engine.QueryEngine.clone`
  over the shared read-only backend, so lockstep searches of different
  batches run truly concurrently;
* its **own coalescing window** — consecutive batches taken by the same
  worker merge across that worker's window, and every flush is replayed
  via :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.replay_flush`
  as an independent scheduling epoch (the PR 4 contract), so a worker's
  flush sequence is field-for-field identical to the offline
  :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.run_windowed`
  path over the batches that worker happened to take — the single-worker
  equivalence pin holds per worker partition (``tests/test_serving.py``).

The worker is also the serving layer's **failure domain**.  Every
pending the worker takes off the queue is *owned* until its ticket
resolves, and the recovery ladder guarantees it resolves no matter what:

* a search exception **bisects** the batch — halves are re-searched
  independently until the poisoned query is isolated and fails alone
  (``SearchFailed``, quarantined), the rest complete;
* a replay exception is retried with capped backoff
  (:meth:`~repro.serving.service.QueryService._replay_with_retry`), then
  the window is **bisected per batch** in degraded-mode replay — each
  batch replays as its own single-batch flush, so a poisoned batch fails
  alone (``ReplayFailed``) while its window-mates still complete;
* anything that escapes the ladder (e.g. an injected
  :class:`~repro.faults.WorkerKilled`) crashes the worker: its owned
  queries resolve as failed, the window resets, and supervision
  (:meth:`~repro.serving.service.QueryService._on_worker_crash`)
  respawns the thread.

Batch formation, completion bookkeeping and the admission queue stay in
:class:`~repro.serving.service.QueryService`; the worker is the engine/
window/replay state plus the loop that drives it.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from ..accel.exma_accelerator import AcceleratorRunResult, WindowedRunResult
from ..engine.window import CoalescingWindow
from ..faults import SITE_LOOP, SITE_SEARCH, WorkerKilled

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..engine.coalesce import RequestStream
    from ..engine.engine import QueryEngine
    from .service import QueryService, _Pending

__all__ = ["BatcherWorker"]


class BatcherWorker:
    """One batcher worker: a private engine + coalescing window draining
    the service's shared admission queue.

    Created (and started) by :class:`~repro.serving.service.QueryService`;
    everything shared — queue, stats, completion — goes through the
    service under its lock, everything per-worker (engine, window,
    batches awaiting their flush, flush results) lives here and is only
    touched by this worker's thread.
    """

    __slots__ = (
        "index",
        "engine",
        "window",
        "thread",
        "_service",
        "_in_window",
        "_in_window_streams",
        "_owned",
        "_flushes",
        "_window_batches",
        "_issued",
    )

    def __init__(self, service: "QueryService", index: int, engine: "QueryEngine") -> None:
        self.index = index
        self.engine = engine
        self.window = CoalescingWindow(service.config.window)
        self.thread: threading.Thread | None = None
        self._service = service
        #: Batches searched by this worker, awaiting their window flush —
        #: and, in parallel, each batch's columnar request stream (kept
        #: so a failed window flush can be bisected into per-batch
        #: degraded replays).
        self._in_window: list[list["_Pending"]] = []
        self._in_window_streams: list["RequestStream"] = []
        #: Every pending taken off the queue and not yet resolved.  The
        #: crash ledger: whatever is in here when the worker dies is
        #: failed immediately, so no ticket ever strands.  Only touched
        #: by this worker's thread.
        self._owned: list["_Pending"] = []
        self._flushes: list[AcceleratorRunResult] = []
        self._window_batches = 0
        self._issued = 0

    def start(self) -> None:
        """Start (or restart) this worker's batcher thread."""
        self.thread = threading.Thread(
            target=self.serve_loop,
            name=f"repro-serving-batcher-{self.index}",
            daemon=True,
        )
        self.thread.start()

    @property
    def alive(self) -> bool:
        """Whether this worker's thread is running."""
        return self.thread is not None and self.thread.is_alive()

    # ------------------------------------------------------------------ #
    # The loop
    # ------------------------------------------------------------------ #

    def serve_loop(self) -> None:
        service = self._service
        try:
            while True:
                service._fire_fault(SITE_LOOP)
                batch = service._next_batch()
                if batch is None:
                    break
                if batch:
                    self._owned.extend(batch)
                    self.run_batch(batch)
                elif self._in_window:
                    # Idle tick with a partially filled coalescing window:
                    # no new batch is coming to top it off, so flush now —
                    # a query's completion must never wait on *future*
                    # traffic.
                    flushed = self.window.flush()
                    if flushed is not None:
                        self.replay(flushed)
            self.finish()
        except BaseException as error:  # noqa: BLE001 - crash containment
            self._abandon_in_flight(error)
            service._on_worker_crash(self, error)

    def run_batch(self, pendings: list["_Pending"]) -> None:
        """Search one dynamic batch and push it through this worker's window.

        The elapsed wall time (search plus any flush replay it triggered)
        feeds the service's EWMA of batch service time, which the
        backpressure ``retry_after`` estimate is based on.  A search
        exception never fails the whole batch outright: the batch is
        bisected (:meth:`_bisect_search_failure`) until the poisoned
        query fails alone.
        """
        service = self._service
        started = service._clock()
        try:
            try:
                service._fire_fault(SITE_SEARCH)
                result = self.engine.search_batch(
                    [pending.query for pending in pendings]
                )
            except WorkerKilled:
                raise
            except Exception as error:  # noqa: BLE001 - bisection ladder
                self._bisect_search_failure(pendings, error)
                return
            with service._lock:
                service.stats.searched += len(pendings)
            for pending, interval in zip(pendings, result.intervals):
                pending.interval = interval
            if service._accelerator is None:
                self._resolve_completed(pendings, flush_index=-1)
            else:
                self._in_window.append(pendings)
                self._in_window_streams.append(result.stats.requests)
                flushed = self.window.push(result.stats.requests)
                if flushed is not None:
                    self.replay(flushed)
        finally:
            service._observe_service_time(service._clock() - started)

    def _bisect_search_failure(
        self, pendings: list["_Pending"], error: BaseException
    ) -> None:
        """Quarantine a poisoned query by halving the failed batch.

        A singleton failure is the poisoned query itself: it resolves as
        failed (:class:`~repro.serving.service.SearchFailed`, counted as
        quarantined) and the rest of the original batch — re-searched in
        ever smaller sub-batches — completes normally.  Transient faults
        simply succeed on the re-search.
        """
        from .service import SearchFailed

        if len(pendings) == 1:
            cause = SearchFailed(f"batch search failed: {error}")
            cause.__cause__ = error
            self._resolve_failed(pendings, cause, quarantined=True)
            return
        mid = len(pendings) // 2
        self.run_batch(pendings[:mid])
        self.run_batch(pendings[mid:])

    def replay(self, flushed) -> None:
        """Replay one flushed window — the worker's unit of work.

        Goes through the service's shared :class:`~repro.accel.parallel
        .ParallelReplay`: inline when ``replay_workers == 1``, offloaded
        to the persistent replay pool otherwise (this thread blocks on
        its own flush; flushes from other batcher workers overlap in the
        pool).  Transient replay faults retry with capped backoff; a
        flush that keeps failing falls to :meth:`_degraded_replay`.
        """
        service = self._service
        batches = self._in_window
        streams = self._in_window_streams
        self._in_window = []
        self._in_window_streams = []
        try:
            run = service._replay_with_retry(flushed)
        except WorkerKilled:
            raise
        except Exception as error:  # noqa: BLE001 - degraded-mode ladder
            self._degraded_replay(batches, streams, error)
            return
        self._flushes.append(run)
        self._window_batches += flushed.batches
        self._issued += flushed.issued
        flush_index = service._record_flush(run, flushed)
        self._resolve_completed(
            [pending for batch in batches for pending in batch], flush_index
        )

    def _degraded_replay(
        self,
        batches: list[list["_Pending"]],
        streams: list["RequestStream"],
        error: BaseException,
    ) -> None:
        """Bisect a repeatedly failing window into per-batch flushes.

        Each batch of the dead window replays as its own single-batch
        flush (retries included) — exactly what a ``window=1`` service
        would have run, so a surviving batch's flush result is still an
        honest :meth:`~repro.accel.exma_accelerator.ExmaAccelerator
        .replay_flush` epoch.  Only a batch that *still* fails resolves
        as failed (:class:`~repro.serving.service.ReplayFailed`,
        quarantined); its window-mates complete.
        """
        from .service import ReplayFailed

        service = self._service
        if len(batches) <= 1:
            cause = ReplayFailed(f"flush replay failed: {error}")
            cause.__cause__ = error
            self._resolve_failed(
                [pending for batch in batches for pending in batch],
                cause,
                quarantined=True,
            )
            return
        for pendings, stream in zip(batches, streams):
            single = CoalescingWindow(1).push(stream)
            if single is None:  # pragma: no cover - capacity-1 always flushes
                self._resolve_completed(pendings, flush_index=-1)
                continue
            try:
                run = service._replay_with_retry(single)
            except WorkerKilled:
                raise
            except Exception as inner:  # noqa: BLE001 - quarantine the batch
                cause = ReplayFailed(f"degraded per-batch replay failed: {inner}")
                cause.__cause__ = inner
                self._resolve_failed(pendings, cause, quarantined=True)
                continue
            self._flushes.append(run)
            self._window_batches += single.batches
            self._issued += single.issued
            flush_index = service._record_flush(run, single)
            self._resolve_completed(pendings, flush_index)

    def finish(self) -> None:
        """Drain the shared queue and force-flush this worker's partial
        window (the stop path; also run inline for a never-started service)."""
        service = self._service
        while True:
            with service._lock:
                batch = service._take_batch()
            if not batch:
                break
            self._owned.extend(batch)
            self.run_batch(batch)
        final = self.window.flush()
        if final is not None:
            self.replay(final)

    # ------------------------------------------------------------------ #
    # Resolution bookkeeping (the ownership ledger)
    # ------------------------------------------------------------------ #

    def _resolve_completed(self, pendings: list["_Pending"], flush_index: int) -> None:
        self._disown(pendings)
        self._service._complete(pendings, flush_index, worker_index=self.index)

    def _resolve_failed(
        self,
        pendings: list["_Pending"],
        error: BaseException,
        quarantined: bool = False,
    ) -> None:
        self._disown(pendings)
        self._service._fail(
            pendings, error, worker_index=self.index, quarantined=quarantined
        )

    def _disown(self, pendings: list["_Pending"]) -> None:
        if not self._owned:
            return
        resolved = set(map(id, pendings))
        self._owned = [p for p in self._owned if id(p) not in resolved]

    def _abandon_in_flight(self, error: BaseException) -> None:
        """Crash epilogue: fail everything this worker still owns.

        Resets the window and ownership ledger so a respawned thread
        starts clean; the owned pendings' tickets resolve as failed
        right now instead of stranding their waiters.
        """
        abandoned, self._owned = self._owned, []
        self._in_window = []
        self._in_window_streams = []
        self.window = CoalescingWindow(self._service.config.window)
        if abandoned:
            self._service._fail(abandoned, error, worker_index=self.index)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def result(self) -> WindowedRunResult:
        """This worker's replay record, shaped like
        :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.run_windowed`'s.

        For the batch partition this worker took, the flushes are
        field-for-field identical to the offline ``run_windowed`` over the
        same batch streams — both run ``replay_flush`` on identical
        merges.  Call only after the worker stopped (or from its thread).
        """
        return WindowedRunResult(
            name=self._service.config.name,
            flushes=list(self._flushes),
            capacity=self.window.capacity,
            batches=self._window_batches,
            issued=self._issued,
        )
