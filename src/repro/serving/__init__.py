"""Always-on serving layer over the engine/accelerator stack.

:class:`~repro.serving.service.QueryService` wraps a
:class:`~repro.engine.engine.QueryEngine` (and optionally an
:class:`~repro.accel.exma_accelerator.ExmaAccelerator`) behind a
continuous ingestion loop: bounded multi-tenant admission with explicit
backpressure, deadline-aware dynamic batching, cross-batch coalescing and
per-flush accelerator replay — turning the batch-harness reproduction
into a traffic-serving system.  :mod:`repro.serving.loadgen` provides the
open-loop Poisson/bursty/Zipfian load generation the serving benchmark
(:mod:`repro.experiments.serving`) is measured under.
"""

from .loadgen import (
    Arrival,
    OpenLoopResult,
    bursty_schedule,
    make_schedule,
    poisson_schedule,
    rate_ladder,
    run_open_loop,
    sample_query_pool,
    zipfian_picks,
)
from .service import (
    AdmissionRejected,
    QueryCancelled,
    QueryFailed,
    QueryOutcome,
    QueryService,
    ReplayFailed,
    SearchFailed,
    ServingConfig,
    ServingStats,
    TenantQueues,
    Ticket,
    percentile,
)
from .workers import BatcherWorker

__all__ = [
    "AdmissionRejected",
    "Arrival",
    "BatcherWorker",
    "OpenLoopResult",
    "QueryCancelled",
    "QueryFailed",
    "QueryOutcome",
    "QueryService",
    "ReplayFailed",
    "SearchFailed",
    "ServingConfig",
    "ServingStats",
    "TenantQueues",
    "Ticket",
    "bursty_schedule",
    "make_schedule",
    "percentile",
    "poisson_schedule",
    "rate_ladder",
    "run_open_loop",
    "sample_query_pool",
    "zipfian_picks",
]
