"""The always-on serving layer: continuous ingestion with dynamic batching.

Everything below PR 5 is a *batch harness*: a caller materialises its
query batches up front and pushes them through ``QueryEngine`` /
``run_windowed``.  A service facing millions of users sees the opposite
shape — queries trickle in continuously from many concurrent clients, and
the system must *form* the batches the engine stack is fast on.
:class:`QueryService` closes that gap:

* **Admission** — clients :meth:`~QueryService.submit` query groups into a
  bounded multi-tenant queue (:class:`TenantQueues`).  When the backlog
  would exceed ``queue_capacity`` the submit is rejected immediately with
  :class:`AdmissionRejected` carrying a ``retry_after`` estimate — explicit
  backpressure instead of unbounded memory growth.
* **Dynamic batching** — a single batcher thread forms batches under a
  deadline-aware admission window: the window opens when the oldest
  queued query arrived and closes after ``max_delay`` seconds or as soon
  as ``max_batch`` queries are queued, whichever comes first.  Small
  traffic pays at most ``max_delay`` of batching latency; heavy traffic
  always runs full batches.
* **Fairness** — batch slots are filled round-robin across tenant queues
  (one query per tenant per turn, resuming after the last tenant served),
  so a flooding tenant cannot starve the others; each tenant still drains
  FIFO internally.
* **Execution** — each batch runs through the wrapped
  :class:`~repro.engine.engine.QueryEngine` (which brings the persistent
  sharded :class:`~repro.engine.sharded.BackendWorkerPool` substrate along
  for free), its columnar request stream feeds a
  :class:`~repro.engine.window.CoalescingWindow`, and every flushed window
  is replayed on the accelerator model via
  :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.replay_flush` — the
  *same* unit of work :meth:`~repro.accel.exma_accelerator.ExmaAccelerator
  .run_stream` uses, so for a given batch partitioning the served flush
  results are field-for-field identical to the offline
  :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.run_windowed` path
  (pinned by ``tests/test_serving.py``).

Completion is per flush: a query's :class:`QueryOutcome` resolves once the
flush containing its batch has been replayed, and its latency spans
arrival → flush completion — the number the serving benchmark reports as
p50/p99 (:mod:`repro.experiments.serving`).
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..accel.exma_accelerator import (
    AcceleratorRunResult,
    ExmaAccelerator,
    WindowedRunResult,
)
from ..accel.parallel import ParallelReplay
from ..engine.engine import QueryEngine
from ..engine.sharded import EXECUTORS
from ..faults import SITE_REPLAY, FaultInjector, FaultPlan, WorkerKilled
from ..index.fmindex import Interval
from .workers import BatcherWorker

__all__ = [
    "AdmissionRejected",
    "QueryCancelled",
    "QueryFailed",
    "QueryOutcome",
    "QueryService",
    "ReplayFailed",
    "SearchFailed",
    "ServingConfig",
    "ServingStats",
    "TenantQueues",
    "Ticket",
    "percentile",
]


#: Smoothing factor of the batch-service-time EWMA feeding
#: :meth:`QueryService._retry_after` — recent batches dominate (the
#: backlog drains at today's pace, not the lifetime average) without a
#: single slow batch whipsawing the estimate.
_EWMA_ALPHA = 0.2


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of *values* (``q`` in [0, 100]).

    Returns ``nan`` for an empty sequence — downstream gates check
    ``math.isfinite``, so "no latencies recorded" can never masquerade as
    a great tail.
    """
    if not values:
        return float("nan")
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile q must be in [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


class QueryFailed(RuntimeError):
    """Base of the structured failure taxonomy.

    Every query a :class:`QueryService` accepts resolves to exactly one
    of three terminal states — ``completed``, ``failed`` or ``cancelled``
    (the zero-stranded-tickets contract) — and a non-completed
    :class:`QueryOutcome` carries ``str(error)`` of the ``QueryFailed``
    subclass (or original exception) that terminated it.
    """


class SearchFailed(QueryFailed):
    """The lockstep batch search raised; bisection isolated this query."""


class ReplayFailed(QueryFailed):
    """The flush replay failed after retries and degraded per-batch replay."""


class QueryCancelled(QueryFailed):
    """The service stopped without draining while the query was queued."""


class AdmissionRejected(RuntimeError):
    """A submit bounced off the full admission queue (backpressure).

    Attributes:
        retry_after: seconds the client should wait before retrying —
            the time the batcher needs to drain the current backlog at
            one ``max_batch`` batch per admission window.
        queued: queries queued at rejection time.
        capacity: the configured admission-queue bound.
    """

    def __init__(self, retry_after: float, queued: int, capacity: int) -> None:
        super().__init__(
            f"admission queue full ({queued}/{capacity} queries); "
            f"retry after {retry_after:.3f}s"
        )
        self.retry_after = retry_after
        self.queued = queued
        self.capacity = capacity


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the dynamic batcher and admission queue.

    Args:
        max_batch: most queries one dynamic batch may carry; a full queue
            closes the admission window early.
        max_delay: the admission window — the longest a queued query may
            wait for co-batched company before its batch is formed anyway.
        queue_capacity: bound on queries queued across all tenants;
            submits beyond it are rejected with a ``retry_after``.
        window: :class:`~repro.engine.window.CoalescingWindow` capacity W —
            how many consecutive dynamic batches share one cross-batch
            merge and flush replay.
        idle_timeout: how long the idle batcher sleeps between checks when
            nothing is queued (an admission window that times out with no
            queued queries simply reopens; see ``ServingStats
            .idle_timeouts``).  An idle tick also force-flushes a
            partially filled coalescing window, so under a traffic lull a
            query waits at most ~``idle_timeout`` for its flush instead
            of indefinitely for ``window`` batches' worth of company.
        workers: batcher workers draining the shared admission queue
            concurrently (:class:`~repro.serving.workers.BatcherWorker`).
            Each worker owns a cloned engine and its own coalescing
            window; batches are still formed one at a time under the
            service lock, so fairness and the per-partition offline
            equivalence are unchanged.
        replay_workers: size of the shared epoch-replay pool
            (:class:`~repro.accel.parallel.ParallelReplay`) the batcher
            workers hand their flushes to.  At 1 (the default) each
            batcher replays its flush inline, exactly as before; above 1
            every flush is offloaded to the pool — the batcher blocks on
            its own flush, but flushes from different batchers overlap,
            and with the process executor the replay escapes the GIL.
            Flush results are unchanged either way (the exact-equivalence
            contract).
        replay_executor: executor kind of the replay pool (``"thread"``
            or ``"process"``; ``None`` defers to the
            ``REPRO_DEFAULT_EXECUTOR`` environment toggle).
        stats_retention: how many completed-query latencies (and flush
            results) the service retains, oldest-first truncation beyond.
            Percentiles and :meth:`QueryService.result` are exact while
            the service lifetime stays under the bound — any benchmark
            run — and cover the most recent ``stats_retention``
            completions/flushes on an always-on service that outlives it;
            counters (``completed``, ``flushes``, ...) are never
            truncated.
        replay_retries: extra flush-replay attempts after a transient
            replay failure, with capped exponential backoff
            (``retry_backoff``) between attempts.  A flush that exhausts
            its retries is bisected per batch (degraded-mode replay) so a
            poisoned batch fails alone.
        retry_backoff: base sleep before replay retry *n* (doubled per
            attempt, capped at ``0.25`` s); ``0`` retries immediately.
        replay_timeout: gather timeout (seconds) on offloaded flush
            replays — a wedged replay-pool worker trips the pool's
            rebuild-once/serial-fallback ladder instead of blocking a
            batcher forever.  ``None`` (default) waits indefinitely.
        faults: optional :class:`~repro.faults.FaultPlan` of injected
            faults, evaluated by a seeded per-service
            :class:`~repro.faults.FaultInjector` (chaos testing).
            ``None`` disables injection entirely; the fault-free path is
            field-for-field identical either way.
        name: label stamped on the accelerator run results.
    """

    max_batch: int = 64
    max_delay: float = 0.005
    queue_capacity: int = 4096
    window: int = 1
    idle_timeout: float = 0.05
    workers: int = 1
    replay_workers: int = 1
    replay_executor: str | None = None
    stats_retention: int = 200_000
    replay_retries: int = 2
    retry_backoff: float = 0.005
    replay_timeout: float | None = None
    faults: FaultPlan | None = None
    name: str = "EXMA-serving"

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_delay <= 0:
            raise ValueError("max_delay must be > 0")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.idle_timeout <= 0:
            raise ValueError("idle_timeout must be > 0")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.replay_workers < 1:
            raise ValueError("replay_workers must be >= 1")
        if self.replay_executor is not None and self.replay_executor not in EXECUTORS:
            raise ValueError(
                f"unknown replay_executor {self.replay_executor!r}; "
                f"available: {', '.join(EXECUTORS)}"
            )
        if self.stats_retention < 1:
            raise ValueError("stats_retention must be >= 1")
        if self.replay_retries < 0:
            raise ValueError("replay_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if self.replay_timeout is not None and self.replay_timeout <= 0:
            raise ValueError("replay_timeout must be > 0 (or None)")
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise TypeError("faults must be a FaultPlan (or None)")


@dataclass(frozen=True)
class QueryOutcome:
    """One served query: its search result plus the serving timeline.

    Every accepted query resolves to exactly one outcome, successful or
    not: ``status`` is ``"completed"`` (interval valid), ``"failed"``
    (the query's batch or flush died after the recovery ladder —
    ``error`` names the :class:`QueryFailed` cause) or ``"cancelled"``
    (``stop(drain=False)`` dropped it while queued).  A ticket therefore
    always resolves; it never strands a waiter in ``TimeoutError``.
    """

    query: str
    tenant: str
    #: The search result; ``None`` unless ``status == "completed"``
    #: (except search-complete queries failed later in replay, which keep
    #: the interval their search produced).
    interval: Interval | None
    #: Clock reading when the query was admitted.
    arrival: float
    #: Clock reading when its flush finished replaying.
    completion: float
    #: Index of the dynamic batch that searched the query.
    batch_index: int
    #: Index of the flush that replayed it (-1 when the service runs
    #: without an accelerator and completes queries at search time).
    flush_index: int
    #: Index of the batcher worker that served the query (-1 when
    #: unknown, e.g. outcomes constructed outside the service).
    worker_index: int = -1
    #: Terminal state: ``"completed"``, ``"failed"`` or ``"cancelled"``.
    status: str = "completed"
    #: ``str`` of the failure cause (``None`` when completed).
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the query completed successfully."""
        return self.status == "completed"

    @property
    def latency(self) -> float:
        """Arrival-to-completion seconds (the benchmark's p50/p99 unit)."""
        return self.completion - self.arrival


class Ticket:
    """Completion handle for one submitted query group.

    Queries of one group may land in different dynamic batches (and
    flushes); the ticket resolves once *all* of them have completed, and
    :meth:`result` returns their outcomes in submission order.
    """

    __slots__ = ("_event", "_lock", "_outcomes", "_remaining")

    def __init__(self, count: int) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._outcomes: list[QueryOutcome | None] = [None] * count
        self._remaining = count
        if count == 0:
            self._event.set()

    def _complete(self, slot: int, outcome: QueryOutcome) -> None:
        with self._lock:
            self._outcomes[slot] = outcome
            self._remaining -= 1
            if self._remaining == 0:
                self._event.set()

    def done(self) -> bool:
        """Whether every query of the group has completed."""
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the group completes; False on timeout."""
        return self._event.wait(timeout)

    def result(self, timeout: float | None = None) -> list[QueryOutcome]:
        """The group's outcomes, in submission order.

        Raises:
            TimeoutError: the group did not complete within *timeout*.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"query group not complete ({self._remaining} of "
                f"{len(self._outcomes)} queries pending)"
            )
        return list(self._outcomes)  # type: ignore[arg-type]


class _Pending:
    """One admitted query waiting for (or riding through) a batch."""

    __slots__ = ("query", "tenant", "ticket", "slot", "arrival", "interval", "batch_index")

    def __init__(self, query: str, tenant: str, ticket: Ticket, slot: int, arrival: float) -> None:
        self.query = query
        self.tenant = tenant
        self.ticket = ticket
        self.slot = slot
        self.arrival = arrival
        self.interval: Interval | None = None
        self.batch_index = -1


class TenantQueues:
    """Bounded multi-tenant FIFO queues with round-robin fair draining.

    Admission is bounded globally (``capacity`` queries across all
    tenants).  :meth:`take` fills a batch one query per tenant per turn,
    rotating through the ring of *active* tenants from just after the
    tenant served last — the classic round-robin guarantee: with T active
    tenants, each is due at least ``floor(max_batch / T)`` slots of every
    batch, regardless of how hard any single tenant floods.  Within a
    tenant, order stays FIFO.

    A tenant lives in the ring only while it has queries queued: the
    moment its queue drains it is **evicted** — queue and ring slot both
    freed — and a later submit re-enters it at the tail of the ring (the
    position a continuously-active tenant would be in right after being
    served, so eviction never buys anyone extra turns).  An always-on
    service facing millions of one-shot tenants therefore keeps the ring
    at O(active tenants), not O(all tenants ever seen), and every
    ``take()``/``oldest_arrival()`` walk is over active tenants only
    (pinned by ``tests/test_serving.py``).

    Not thread-safe on its own; :class:`QueryService` serialises access
    under its lock.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        #: Per-tenant FIFO; a tenant is present iff its queue is non-empty.
        self._queues: dict[str, deque[_Pending]] = {}
        #: Active tenants in service order; ``take`` rotates left-to-right.
        self._ring: deque[str] = deque()
        self._queued = 0

    @property
    def queued(self) -> int:
        """Queries currently admitted and not yet taken."""
        return self._queued

    @property
    def active(self) -> int:
        """Tenants with at least one query queued (the ring size)."""
        return len(self._ring)

    @property
    def tenants(self) -> list[str]:
        """Active tenants, in ring (next-served-first) order."""
        return list(self._ring)

    def admit(self, pendings: Sequence[_Pending]) -> None:
        """Enqueue a group (caller enforced capacity; one tenant per call)."""
        for pending in pendings:
            queue = self._queues.get(pending.tenant)
            if queue is None:
                queue = self._queues[pending.tenant] = deque()
                self._ring.append(pending.tenant)
            queue.append(pending)
        self._queued += len(pendings)

    def has_room(self, count: int) -> bool:
        """Whether *count* more queries fit under the capacity bound."""
        return self._queued + count <= self.capacity

    def oldest_arrival(self) -> float | None:
        """Arrival time of the longest-waiting query (None when empty)."""
        heads = [queue[0].arrival for queue in self._queues.values()]
        return min(heads) if heads else None

    def take(self, limit: int) -> list[_Pending]:
        """Dequeue up to *limit* queries, round-robin across tenants.

        Rotates the active ring: the served tenant goes to the tail when
        it still has queries queued, and is evicted when the take drained
        it — either way the next take starts with the tenant after the
        one served last.
        """
        batch: list[_Pending] = []
        while len(batch) < limit and self._ring:
            tenant = self._ring.popleft()
            queue = self._queues[tenant]
            batch.append(queue.popleft())
            if queue:
                self._ring.append(tenant)
            else:
                del self._queues[tenant]
        self._queued -= len(batch)
        return batch

    def clear(self) -> list[_Pending]:
        """Drop everything queued (``stop(drain=False)``); returns the drops."""
        dropped = [pending for queue in self._queues.values() for pending in queue]
        self._queues.clear()
        self._ring.clear()
        self._queued = 0
        return dropped


@dataclass
class ServingStats:
    """Counters the service accumulates over its lifetime.

    Mutated only by the submit path and the batcher threads under the
    service lock; read freely (python ints/floats, worst case a stale
    snapshot).

    The scalar counters grow for the whole service lifetime, but the
    per-query ``latencies`` record is **bounded**: only the most recent
    ``retention`` completions are kept (a ``deque(maxlen=retention)``), so
    an always-on service does not leak one float per query forever.
    Percentiles are exact while ``completed <= retention`` — every
    benchmark run — and cover the trailing ``retention``-completion
    window beyond it (documented truncation, pinned by
    ``tests/test_serving.py``).
    """

    #: Client submit calls accepted / queries admitted through them.
    submissions: int = 0
    accepted: int = 0
    #: Queries bounced by backpressure.
    rejected: int = 0
    #: Queries searched / completed (outcome delivered).
    searched: int = 0
    completed: int = 0
    #: Dynamic batches formed and flush replays executed.
    batches: int = 0
    flushes: int = 0
    #: Requests entering / surviving the cross-batch merge.
    issued_requests: int = 0
    scheduled_requests: int = 0
    #: Query batches merged into flushed windows (mirrors
    #: :attr:`~repro.accel.exma_accelerator.WindowedRunResult.batches`).
    window_batches: int = 0
    #: Admission windows that timed out with no queued queries.
    idle_timeouts: int = 0
    #: Queries resolved with a failed / cancelled outcome (all three
    #: terminal states sum to every accepted query — the ledger the
    #: chaos gate checks).
    failed: int = 0
    cancelled: int = 0
    #: Batcher-worker crashes absorbed by supervision (each respawned
    #: the worker unless the service was stopping).
    worker_crashes: int = 0
    #: Flush-replay attempts that raised (each either retried with
    #: backoff or escalated to degraded per-batch replay).
    replay_faults: int = 0
    #: Queries failed in isolation after bisection (a poisoned query
    #: quarantined at search time, or a poisoned batch in degraded
    #: replay) — the rest of their batch/window completed.
    quarantined: int = 0
    #: Arrival→completion seconds per completed query, in completion
    #: order; bounded to the most recent :attr:`retention` completions.
    latencies: "deque[float]" = field(default_factory=deque)
    #: Completed queries per tenant.
    per_tenant: dict[str, int] = field(default_factory=dict)
    #: Bound on :attr:`latencies` (``None`` = unbounded, for bare
    #: ``ServingStats()`` uses; the service always passes its config's
    #: ``stats_retention``).
    retention: int | None = None

    def __post_init__(self) -> None:
        self.latencies = deque(self.latencies, maxlen=self.retention)

    def latency_percentile(self, q: float) -> float:
        """Nearest-rank latency percentile over the retained window
        (nan with nothing completed)."""
        return percentile(list(self.latencies), q)


class QueryService(object):
    """A long-lived serving loop over a query engine and accelerator model.

    Args:
        engine: the :class:`~repro.engine.engine.QueryEngine` dynamic
            batches run through (sharded engines bring their persistent
            worker pool along).  With ``config.workers > 1`` this engine
            serves worker 0 and each further batcher worker gets a
            :meth:`~repro.engine.engine.QueryEngine.clone` over the same
            read-only backend.
        accelerator: the accelerator model replaying each flushed window
            (immutable after construction, so all workers share it);
            ``None`` serves search-only and completes queries at search
            time.
        config: batching/backpressure knobs (:class:`ServingConfig`).
        clock: monotonic time source (injectable for tests).

    Use as a context manager, or :meth:`start` / :meth:`stop` explicitly.
    ``stop(drain=True)`` (the default) finishes everything admitted —
    remaining queue drained into final batches, every worker's partial
    coalescing window force-flushed — so every accepted ticket resolves.
    """

    def __init__(
        self,
        engine: QueryEngine,
        accelerator: ExmaAccelerator | None = None,
        config: ServingConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._engine = engine
        self._accelerator = accelerator
        self._config = config or ServingConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queues = TenantQueues(self._config.queue_capacity)
        #: Flush results in completion order, most recent
        #: ``stats_retention`` retained (the bounded-stats contract).
        self._flushes: "deque[AcceleratorRunResult]" = deque(
            maxlen=self._config.stats_retention
        )
        #: Fault-injection runtime, built once from the (frozen) plan;
        #: ``None`` — the production default — keeps every injection
        #: point a no-op branch.
        self._faults = (
            FaultInjector(self._config.faults)
            if self._config.faults is not None
            else None
        )
        #: Shared epoch-replay driver all batcher workers hand their
        #: flushes to; at ``replay_workers == 1`` it replays inline (no
        #: pool exists), so the single-worker path is unchanged.
        self._replay = (
            ParallelReplay(
                accelerator,
                workers=self._config.replay_workers,
                executor=self._config.replay_executor,
                faults=self._faults,
                timeout=self._config.replay_timeout,
            )
            if accelerator is not None
            else None
        )
        self._workers = [
            BatcherWorker(self, index, engine if index == 0 else engine.clone())
            for index in range(self._config.workers)
        ]
        self._stopping = False
        #: EWMA of observed batch service seconds (search + flush share);
        #: ``None`` until the first batch completes.
        self._service_ewma: float | None = None
        self.stats = ServingStats(retention=self._config.stats_retention)

    @property
    def config(self) -> ServingConfig:
        """The service's batching/backpressure knobs."""
        return self._config

    @property
    def engine(self) -> QueryEngine:
        """The wrapped query engine (worker 0's; others use clones)."""
        return self._engine

    @property
    def workers(self) -> list[BatcherWorker]:
        """The batcher workers, in index order."""
        return list(self._workers)

    @property
    def replay(self) -> ParallelReplay | None:
        """The shared epoch-replay driver (None when serving search-only)."""
        return self._replay

    @property
    def faults(self) -> FaultInjector | None:
        """The fault-injection runtime (None without a configured plan)."""
        return self._faults

    @property
    def running(self) -> bool:
        """Whether any batcher thread is alive."""
        return any(worker.alive for worker in self._workers)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "QueryService":
        """Start the batcher workers (idempotent while running)."""
        with self._lock:
            if self._stopping:
                raise RuntimeError("service has been stopped")
            for worker in self._workers:
                if not worker.alive:
                    worker.start()
        return self

    def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the batcher workers.

        With ``drain=True`` everything already admitted is batched,
        searched, flushed and completed first; with ``drain=False`` still-
        queued queries resolve *immediately* with a structured
        ``cancelled`` outcome (queries already searched and riding a
        partial coalescing window still complete — their work is done but
        for the flush).  Either way every accepted ticket resolves; a
        ``result()`` waiter is never stranded into ``TimeoutError``.
        """
        with self._wakeup:
            self._stopping = True
            dropped = [] if drain else self._queues.clear()
            self._wakeup.notify_all()
            threads = [worker.thread for worker in self._workers if worker.thread]
        if dropped:
            self._fail(
                dropped,
                QueryCancelled("service stopped without draining"),
                status="cancelled",
            )
        if threads:
            deadline = None if timeout is None else time.monotonic() + timeout
            for thread in threads:
                thread.join(
                    None if deadline is None else max(0.0, deadline - time.monotonic())
                )
        elif drain:
            # Never-started service: drain inline so submitted work still
            # completes deterministically.
            self._drain_inline()
        if drain and not self.running and self._queues.queued:
            # A worker crashed while we were stopping and left queued
            # work behind (supervision does not respawn past this point):
            # sweep it inline so the zero-stranded contract holds.
            self._drain_inline()
        if self._replay is not None:
            self._replay.close()

    def _drain_inline(self) -> None:
        """Drain the queue on the caller's thread via worker 0, resolving
        everything as failed if even the inline sweep dies."""
        worker = self._workers[0]
        try:
            worker.finish()
        except BaseException as error:  # noqa: BLE001 - last-resort sweep
            worker._abandon_in_flight(error)
            with self._lock:
                leftovers = self._queues.clear()
            if leftovers:
                self._fail(leftovers, error)

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #

    def submit(self, queries: Iterable[str], tenant: str = "default") -> Ticket:
        """Admit a query group for *tenant*; returns its :class:`Ticket`.

        Raises:
            AdmissionRejected: the bounded queue cannot hold the group;
                the exception's ``retry_after`` estimates when the backlog
                will have drained.
            RuntimeError: the service has been stopped — unconditionally,
                including for an empty group (an empty submit must not
                masquerade as accepted work on a dead service).
        """
        group = [str(query) for query in queries]
        ticket = Ticket(len(group))
        now = self._clock()
        with self._wakeup:
            if self._stopping:
                raise RuntimeError("service has been stopped")
            if not group:
                return ticket
            if not self._queues.has_room(len(group)):
                self.stats.rejected += len(group)
                raise AdmissionRejected(
                    retry_after=self._retry_after(),
                    queued=self._queues.queued,
                    capacity=self._config.queue_capacity,
                )
            self._queues.admit(
                [
                    _Pending(query, tenant, ticket, slot, now)
                    for slot, query in enumerate(group)
                ]
            )
            self.stats.submissions += 1
            self.stats.accepted += len(group)
            self._wakeup.notify_all()
        return ticket

    def _retry_after(self) -> float:
        """Backlog drain estimate for bounced clients.

        Batches outstanding × the per-batch pace, spread over the
        workers draining concurrently.  The pace is the admission window
        until batches have actually been observed, then never *less* than
        the EWMA of measured batch service time (search + flush-replay
        share): charging only the window, as PR 6 did, underestimates the
        drain whenever service time exceeds ``max_delay`` — which is
        exactly when clients are being bounced — and sends them straight
        back into a still-full queue.
        """
        backlog_batches = math.ceil(
            max(1, self._queues.queued) / self._config.max_batch
        )
        pace = self._config.max_delay
        if self._service_ewma is not None:
            pace = max(pace, self._service_ewma)
        return math.ceil(backlog_batches / self._config.workers) * pace

    def _observe_service_time(self, seconds: float) -> None:
        """Fold one batch's measured service time into the EWMA."""
        seconds = max(0.0, float(seconds))
        with self._lock:
            if self._service_ewma is None:
                self._service_ewma = seconds
            else:
                self._service_ewma += _EWMA_ALPHA * (seconds - self._service_ewma)

    @property
    def service_time_ewma(self) -> float | None:
        """EWMA of observed batch service seconds (None before any batch)."""
        return self._service_ewma

    # ------------------------------------------------------------------ #
    # Batch formation (shared by all workers; see workers.py for the loop)
    # ------------------------------------------------------------------ #

    def _take_batch(self) -> list[_Pending]:
        """Take one dynamic batch off the queues (caller holds the lock),
        stamping the global formation-order batch index."""
        batch = self._queues.take(self._config.max_batch)
        if batch:
            batch_index = self.stats.batches
            self.stats.batches += 1
            for pending in batch:
                pending.batch_index = batch_index
        return batch

    def _next_batch(self) -> list[_Pending] | None:
        """Form the next dynamic batch.

        Returns ``None`` to shut the loop down, ``[]`` when an admission
        window timed out with nothing queued (the idle tick — the loop
        simply reopens the window), else the batch.
        """
        config = self._config
        with self._wakeup:
            while self._queues.queued == 0:
                if self._stopping:
                    return None
                if not self._wakeup.wait(config.idle_timeout):
                    self.stats.idle_timeouts += 1
                    return []
            # The admission window is anchored at the oldest queued
            # query's arrival: nobody waits longer than max_delay for a
            # batch to form, and a full batch never waits at all.
            oldest = self._queues.oldest_arrival()
            deadline = (oldest if oldest is not None else self._clock()) + config.max_delay
            while self._queues.queued < config.max_batch and not self._stopping:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                self._wakeup.wait(remaining)
            return self._take_batch()

    def _fire_fault(self, site: str) -> None:
        """Probe one fault-injection site (no-op without a configured plan)."""
        if self._faults is not None:
            self._faults.fire(site)

    def _replay_flush(self, flushed) -> AcceleratorRunResult:
        """Replay one flushed window through the shared replay driver.

        The single replay entry point of every batcher worker: inline at
        ``replay_workers == 1``, offloaded to the persistent pool above —
        either way the result is field-for-field what
        :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.replay_flush`
        returns, so the offline-equivalence pin is untouched.
        """
        return self._replay.replay_flush(flushed, name=self._config.name)

    def _replay_with_retry(self, flushed) -> AcceleratorRunResult:
        """Replay a flush, absorbing transient faults with capped backoff.

        Up to ``1 + replay_retries`` attempts; each failed attempt counts
        into ``stats.replay_faults`` and sleeps ``retry_backoff * 2**n``
        (capped at 0.25 s) before the next.  :class:`~repro.faults
        .WorkerKilled` is never retried — a killed worker must crash to
        its supervisor, not limp on.  Exhausted retries raise
        :class:`ReplayFailed`; the worker then bisects the window into
        degraded per-batch replays so a poisoned batch fails alone.
        """
        attempts = 1 + self._config.replay_retries
        last: BaseException | None = None
        for attempt in range(attempts):
            try:
                self._fire_fault(SITE_REPLAY)
                return self._replay_flush(flushed)
            except WorkerKilled:
                raise
            except Exception as error:  # noqa: BLE001 - retry ladder
                last = error
                with self._lock:
                    self.stats.replay_faults += 1
                if attempt + 1 < attempts and self._config.retry_backoff > 0:
                    time.sleep(min(self._config.retry_backoff * (2**attempt), 0.25))
        raise ReplayFailed(
            f"flush replay failed after {attempts} attempt(s): {last}"
        ) from last

    def _record_flush(self, run: AcceleratorRunResult, flushed) -> int:
        """Account one replayed flush (called by the worker that ran it);
        returns the flush's global completion-order index."""
        with self._lock:
            flush_index = self.stats.flushes
            self.stats.flushes += 1
            self._flushes.append(run)
            self.stats.issued_requests += flushed.issued
            self.stats.scheduled_requests += flushed.unique
            self.stats.window_batches += flushed.batches
        return flush_index

    def _complete(
        self, pendings: list[_Pending], flush_index: int, worker_index: int = -1
    ) -> None:
        now = self._clock()
        with self._lock:
            for pending in pendings:
                self.stats.latencies.append(now - pending.arrival)
                self.stats.per_tenant[pending.tenant] = (
                    self.stats.per_tenant.get(pending.tenant, 0) + 1
                )
            self.stats.completed += len(pendings)
        for pending in pendings:
            pending.ticket._complete(
                pending.slot,
                QueryOutcome(
                    query=pending.query,
                    tenant=pending.tenant,
                    interval=pending.interval,
                    arrival=pending.arrival,
                    completion=now,
                    batch_index=pending.batch_index,
                    flush_index=flush_index,
                    worker_index=worker_index,
                ),
            )

    def _fail(
        self,
        pendings: list[_Pending],
        error: BaseException,
        worker_index: int = -1,
        status: str = "failed",
        quarantined: bool = False,
    ) -> None:
        """Resolve *pendings* with a structured failed/cancelled outcome.

        The unhappy-path twin of :meth:`_complete`: the tickets resolve
        right now — carrying the failure cause instead of hanging their
        waiters into ``TimeoutError`` — and the failure counters advance.
        Failed/cancelled queries never enter the latency record or the
        per-tenant completion counts; those stay success-only.
        """
        if not pendings:
            return
        now = self._clock()
        message = f"{type(error).__name__}: {error}"
        with self._lock:
            if status == "cancelled":
                self.stats.cancelled += len(pendings)
            else:
                self.stats.failed += len(pendings)
            if quarantined:
                self.stats.quarantined += len(pendings)
        for pending in pendings:
            pending.ticket._complete(
                pending.slot,
                QueryOutcome(
                    query=pending.query,
                    tenant=pending.tenant,
                    interval=pending.interval,
                    arrival=pending.arrival,
                    completion=now,
                    batch_index=pending.batch_index,
                    flush_index=-1,
                    worker_index=worker_index,
                    status=status,
                    error=message,
                ),
            )

    def _on_worker_crash(self, worker: BatcherWorker, error: BaseException) -> None:
        """Supervision: absorb a batcher-worker crash and respawn it.

        Runs on the dying worker's own thread as its last act (the
        worker already resolved its in-flight queries as failed).  The
        crash only takes down its batch: unless the service is stopping,
        a fresh thread picks the same worker state (engine, empty window)
        back up, so queued and future queries keep flowing.
        """
        with self._wakeup:
            self.stats.worker_crashes += 1
            # Respawn under the lock: :meth:`stop` snapshots the worker
            # threads under the same lock, so it either sees the old
            # (dying) thread or the replacement after ``start()`` —
            # never a Thread object that exists but is not yet started
            # (joining one raises RuntimeError).
            if not self._stopping:
                worker.start()

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def result(self) -> WindowedRunResult:
        """The accumulated replay record, shaped exactly like
        :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.run_windowed`'s.

        For a given partitioning of the served queries into dynamic
        batches, the flushes in here are field-for-field identical to the
        offline path over the same batch streams — both run
        :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.replay_flush`
        on identical :class:`~repro.engine.window.WindowedBatch` merges.
        With multiple workers the flushes appear in completion order
        (interleaved across workers); :meth:`worker_results` gives the
        per-worker sequences the offline equivalence pin extends to.
        """
        with self._lock:
            return WindowedRunResult(
                name=self._config.name,
                flushes=list(self._flushes),
                capacity=self._config.window,
                batches=self.stats.window_batches,
                issued=self.stats.issued_requests,
            )

    def worker_results(self) -> list[WindowedRunResult]:
        """Each worker's replay record, in worker-index order.

        Worker *w*'s record covers exactly the dynamic batches that
        worker took (its partition), in the order it took them — the
        shape :class:`~repro.serving.workers.BatcherWorker.result`
        documents.  Call after :meth:`stop`.
        """
        return [worker.result() for worker in self._workers]
