"""The always-on serving layer: continuous ingestion with dynamic batching.

Everything below PR 5 is a *batch harness*: a caller materialises its
query batches up front and pushes them through ``QueryEngine`` /
``run_windowed``.  A service facing millions of users sees the opposite
shape — queries trickle in continuously from many concurrent clients, and
the system must *form* the batches the engine stack is fast on.
:class:`QueryService` closes that gap:

* **Admission** — clients :meth:`~QueryService.submit` query groups into a
  bounded multi-tenant queue (:class:`TenantQueues`).  When the backlog
  would exceed ``queue_capacity`` the submit is rejected immediately with
  :class:`AdmissionRejected` carrying a ``retry_after`` estimate — explicit
  backpressure instead of unbounded memory growth.
* **Dynamic batching** — a single batcher thread forms batches under a
  deadline-aware admission window: the window opens when the oldest
  queued query arrived and closes after ``max_delay`` seconds or as soon
  as ``max_batch`` queries are queued, whichever comes first.  Small
  traffic pays at most ``max_delay`` of batching latency; heavy traffic
  always runs full batches.
* **Fairness** — batch slots are filled round-robin across tenant queues
  (one query per tenant per turn, resuming after the last tenant served),
  so a flooding tenant cannot starve the others; each tenant still drains
  FIFO internally.
* **Execution** — each batch runs through the wrapped
  :class:`~repro.engine.engine.QueryEngine` (which brings the persistent
  sharded :class:`~repro.engine.sharded.BackendWorkerPool` substrate along
  for free), its columnar request stream feeds a
  :class:`~repro.engine.window.CoalescingWindow`, and every flushed window
  is replayed on the accelerator model via
  :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.replay_flush` — the
  *same* unit of work :meth:`~repro.accel.exma_accelerator.ExmaAccelerator
  .run_stream` uses, so for a given batch partitioning the served flush
  results are field-for-field identical to the offline
  :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.run_windowed` path
  (pinned by ``tests/test_serving.py``).

Completion is per flush: a query's :class:`QueryOutcome` resolves once the
flush containing its batch has been replayed, and its latency spans
arrival → flush completion — the number the serving benchmark reports as
p50/p99 (:mod:`repro.experiments.serving`).
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..accel.exma_accelerator import (
    AcceleratorRunResult,
    ExmaAccelerator,
    WindowedRunResult,
)
from ..engine.engine import QueryEngine
from ..engine.window import CoalescingWindow
from ..index.fmindex import Interval

__all__ = [
    "AdmissionRejected",
    "QueryOutcome",
    "QueryService",
    "ServingConfig",
    "ServingStats",
    "TenantQueues",
    "Ticket",
    "percentile",
]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of *values* (``q`` in [0, 100]).

    Returns ``nan`` for an empty sequence — downstream gates check
    ``math.isfinite``, so "no latencies recorded" can never masquerade as
    a great tail.
    """
    if not values:
        return float("nan")
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile q must be in [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


class AdmissionRejected(RuntimeError):
    """A submit bounced off the full admission queue (backpressure).

    Attributes:
        retry_after: seconds the client should wait before retrying —
            the time the batcher needs to drain the current backlog at
            one ``max_batch`` batch per admission window.
        queued: queries queued at rejection time.
        capacity: the configured admission-queue bound.
    """

    def __init__(self, retry_after: float, queued: int, capacity: int) -> None:
        super().__init__(
            f"admission queue full ({queued}/{capacity} queries); "
            f"retry after {retry_after:.3f}s"
        )
        self.retry_after = retry_after
        self.queued = queued
        self.capacity = capacity


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the dynamic batcher and admission queue.

    Args:
        max_batch: most queries one dynamic batch may carry; a full queue
            closes the admission window early.
        max_delay: the admission window — the longest a queued query may
            wait for co-batched company before its batch is formed anyway.
        queue_capacity: bound on queries queued across all tenants;
            submits beyond it are rejected with a ``retry_after``.
        window: :class:`~repro.engine.window.CoalescingWindow` capacity W —
            how many consecutive dynamic batches share one cross-batch
            merge and flush replay.
        idle_timeout: how long the idle batcher sleeps between checks when
            nothing is queued (an admission window that times out with no
            queued queries simply reopens; see ``ServingStats
            .idle_timeouts``).  An idle tick also force-flushes a
            partially filled coalescing window, so under a traffic lull a
            query waits at most ~``idle_timeout`` for its flush instead
            of indefinitely for ``window`` batches' worth of company.
        name: label stamped on the accelerator run results.
    """

    max_batch: int = 64
    max_delay: float = 0.005
    queue_capacity: int = 4096
    window: int = 1
    idle_timeout: float = 0.05
    name: str = "EXMA-serving"

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_delay <= 0:
            raise ValueError("max_delay must be > 0")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.idle_timeout <= 0:
            raise ValueError("idle_timeout must be > 0")


@dataclass(frozen=True)
class QueryOutcome:
    """One served query: its search result plus the serving timeline."""

    query: str
    tenant: str
    interval: Interval
    #: Clock reading when the query was admitted.
    arrival: float
    #: Clock reading when its flush finished replaying.
    completion: float
    #: Index of the dynamic batch that searched the query.
    batch_index: int
    #: Index of the flush that replayed it (-1 when the service runs
    #: without an accelerator and completes queries at search time).
    flush_index: int

    @property
    def latency(self) -> float:
        """Arrival-to-completion seconds (the benchmark's p50/p99 unit)."""
        return self.completion - self.arrival


class Ticket:
    """Completion handle for one submitted query group.

    Queries of one group may land in different dynamic batches (and
    flushes); the ticket resolves once *all* of them have completed, and
    :meth:`result` returns their outcomes in submission order.
    """

    __slots__ = ("_event", "_lock", "_outcomes", "_remaining")

    def __init__(self, count: int) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._outcomes: list[QueryOutcome | None] = [None] * count
        self._remaining = count
        if count == 0:
            self._event.set()

    def _complete(self, slot: int, outcome: QueryOutcome) -> None:
        with self._lock:
            self._outcomes[slot] = outcome
            self._remaining -= 1
            if self._remaining == 0:
                self._event.set()

    def done(self) -> bool:
        """Whether every query of the group has completed."""
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the group completes; False on timeout."""
        return self._event.wait(timeout)

    def result(self, timeout: float | None = None) -> list[QueryOutcome]:
        """The group's outcomes, in submission order.

        Raises:
            TimeoutError: the group did not complete within *timeout*.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"query group not complete ({self._remaining} of "
                f"{len(self._outcomes)} queries pending)"
            )
        return list(self._outcomes)  # type: ignore[arg-type]


class _Pending:
    """One admitted query waiting for (or riding through) a batch."""

    __slots__ = ("query", "tenant", "ticket", "slot", "arrival", "interval", "batch_index")

    def __init__(self, query: str, tenant: str, ticket: Ticket, slot: int, arrival: float) -> None:
        self.query = query
        self.tenant = tenant
        self.ticket = ticket
        self.slot = slot
        self.arrival = arrival
        self.interval: Interval | None = None
        self.batch_index = -1


class TenantQueues:
    """Bounded multi-tenant FIFO queues with round-robin fair draining.

    Admission is bounded globally (``capacity`` queries across all
    tenants).  :meth:`take` fills a batch one query per tenant per turn,
    walking the tenant ring from just after the tenant served last — the
    classic round-robin guarantee: with T active tenants, each is due at
    least ``floor(max_batch / T)`` slots of every batch, regardless of how
    hard any single tenant floods.  Within a tenant, order stays FIFO.

    Not thread-safe on its own; :class:`QueryService` serialises access
    under its lock.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._queues: "OrderedDict[str, deque[_Pending]]" = OrderedDict()
        #: Tenant ring in first-appearance order; `_next` is the ring
        #: index the next take() starts from.
        self._ring: list[str] = []
        self._next = 0
        self._queued = 0

    @property
    def queued(self) -> int:
        """Queries currently admitted and not yet taken."""
        return self._queued

    @property
    def tenants(self) -> list[str]:
        """Tenants seen so far, in first-appearance (ring) order."""
        return list(self._ring)

    def admit(self, pendings: Sequence[_Pending]) -> None:
        """Enqueue a group (caller enforced capacity; one tenant per call)."""
        for pending in pendings:
            queue = self._queues.get(pending.tenant)
            if queue is None:
                queue = self._queues[pending.tenant] = deque()
                self._ring.append(pending.tenant)
            queue.append(pending)
        self._queued += len(pendings)

    def has_room(self, count: int) -> bool:
        """Whether *count* more queries fit under the capacity bound."""
        return self._queued + count <= self.capacity

    def oldest_arrival(self) -> float | None:
        """Arrival time of the longest-waiting query (None when empty)."""
        heads = [queue[0].arrival for queue in self._queues.values() if queue]
        return min(heads) if heads else None

    def take(self, limit: int) -> list[_Pending]:
        """Dequeue up to *limit* queries, round-robin across tenants."""
        if limit < 1 or self._queued == 0:
            return []
        batch: list[_Pending] = []
        ring_size = len(self._ring)
        position = self._next
        idle_turns = 0
        while len(batch) < limit and idle_turns < ring_size:
            tenant = self._ring[position % ring_size]
            queue = self._queues[tenant]
            if queue:
                batch.append(queue.popleft())
                idle_turns = 0
            else:
                idle_turns += 1
            position += 1
        self._next = position % ring_size
        self._queued -= len(batch)
        return batch

    def clear(self) -> list[_Pending]:
        """Drop everything queued (``stop(drain=False)``); returns the drops."""
        dropped = [pending for queue in self._queues.values() for pending in queue]
        for queue in self._queues.values():
            queue.clear()
        self._queued = 0
        return dropped


@dataclass
class ServingStats:
    """Counters the service accumulates over its lifetime.

    Mutated only by the submit path and the batcher thread under the
    service lock; read freely (python ints/floats, worst case a stale
    snapshot).
    """

    #: Client submit calls accepted / queries admitted through them.
    submissions: int = 0
    accepted: int = 0
    #: Queries bounced by backpressure.
    rejected: int = 0
    #: Queries searched / completed (outcome delivered).
    searched: int = 0
    completed: int = 0
    #: Dynamic batches formed and flush replays executed.
    batches: int = 0
    flushes: int = 0
    #: Requests entering / surviving the cross-batch merge.
    issued_requests: int = 0
    scheduled_requests: int = 0
    #: Query batches merged into flushed windows (mirrors
    #: :attr:`~repro.accel.exma_accelerator.WindowedRunResult.batches`).
    window_batches: int = 0
    #: Admission windows that timed out with no queued queries.
    idle_timeouts: int = 0
    #: Arrival→completion seconds per completed query, in completion order.
    latencies: list[float] = field(default_factory=list)
    #: Completed queries per tenant.
    per_tenant: dict[str, int] = field(default_factory=dict)

    def latency_percentile(self, q: float) -> float:
        """Nearest-rank latency percentile (nan with nothing completed)."""
        return percentile(self.latencies, q)


class QueryService(object):
    """A long-lived serving loop over a query engine and accelerator model.

    Args:
        engine: the :class:`~repro.engine.engine.QueryEngine` every
            dynamic batch runs through (sharded engines bring their
            persistent worker pool along).
        accelerator: the accelerator model replaying each flushed window;
            ``None`` serves search-only and completes queries at search
            time.
        config: batching/backpressure knobs (:class:`ServingConfig`).
        clock: monotonic time source (injectable for tests).

    Use as a context manager, or :meth:`start` / :meth:`stop` explicitly.
    ``stop(drain=True)`` (the default) finishes everything admitted —
    remaining queue drained into final batches, the partial coalescing
    window force-flushed — so every accepted ticket resolves.
    """

    def __init__(
        self,
        engine: QueryEngine,
        accelerator: ExmaAccelerator | None = None,
        config: ServingConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._engine = engine
        self._accelerator = accelerator
        self._config = config or ServingConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queues = TenantQueues(self._config.queue_capacity)
        self._window = CoalescingWindow(self._config.window)
        #: Batches searched but awaiting their window flush.
        self._in_window: list[list[_Pending]] = []
        self._flushes: list[AcceleratorRunResult] = []
        self._thread: threading.Thread | None = None
        self._stopping = False
        self.stats = ServingStats()

    @property
    def config(self) -> ServingConfig:
        """The service's batching/backpressure knobs."""
        return self._config

    @property
    def engine(self) -> QueryEngine:
        """The wrapped query engine."""
        return self._engine

    @property
    def running(self) -> bool:
        """Whether the batcher thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "QueryService":
        """Start the batcher thread (idempotent while running)."""
        with self._lock:
            if self._stopping:
                raise RuntimeError("service has been stopped")
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._serve_loop, name="repro-serving-batcher", daemon=True
                )
                self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the batcher.

        With ``drain=True`` everything already admitted is batched,
        searched, flushed and completed first; with ``drain=False`` the
        queue is dropped and the affected tickets never resolve (their
        ``result(timeout=...)`` raises ``TimeoutError``).
        """
        with self._wakeup:
            self._stopping = True
            if not drain:
                self._queues.clear()
            self._wakeup.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout)
        elif drain:
            # Never-started service: drain inline so submitted work still
            # completes deterministically.
            self._finish()

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #

    def submit(self, queries: Iterable[str], tenant: str = "default") -> Ticket:
        """Admit a query group for *tenant*; returns its :class:`Ticket`.

        Raises:
            AdmissionRejected: the bounded queue cannot hold the group;
                the exception's ``retry_after`` estimates when the backlog
                will have drained.
            RuntimeError: the service has been stopped.
        """
        group = [str(query) for query in queries]
        ticket = Ticket(len(group))
        if not group:
            return ticket
        now = self._clock()
        with self._wakeup:
            if self._stopping:
                raise RuntimeError("service has been stopped")
            if not self._queues.has_room(len(group)):
                self.stats.rejected += len(group)
                raise AdmissionRejected(
                    retry_after=self._retry_after(),
                    queued=self._queues.queued,
                    capacity=self._config.queue_capacity,
                )
            self._queues.admit(
                [
                    _Pending(query, tenant, ticket, slot, now)
                    for slot, query in enumerate(group)
                ]
            )
            self.stats.submissions += 1
            self.stats.accepted += len(group)
            self._wakeup.notify_all()
        return ticket

    def _retry_after(self) -> float:
        """Backlog drain estimate: batches outstanding × admission window."""
        backlog_batches = math.ceil(
            max(1, self._queues.queued) / self._config.max_batch
        )
        return backlog_batches * self._config.max_delay

    # ------------------------------------------------------------------ #
    # Batcher
    # ------------------------------------------------------------------ #

    def _serve_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                break
            if batch:
                self._run_batch(batch)
            elif self._in_window:
                # Idle tick with a partially filled coalescing window: no
                # new batch is coming to top it off, so flush now — a
                # query's completion must never wait on *future* traffic.
                flushed = self._window.flush()
                if flushed is not None:
                    self._replay(flushed)
        self._finish()

    def _next_batch(self) -> list[_Pending] | None:
        """Form the next dynamic batch.

        Returns ``None`` to shut the loop down, ``[]`` when an admission
        window timed out with nothing queued (the idle tick — the loop
        simply reopens the window), else the batch.
        """
        config = self._config
        with self._wakeup:
            while self._queues.queued == 0:
                if self._stopping:
                    return None
                if not self._wakeup.wait(config.idle_timeout):
                    self.stats.idle_timeouts += 1
                    return []
            # The admission window is anchored at the oldest queued
            # query's arrival: nobody waits longer than max_delay for a
            # batch to form, and a full batch never waits at all.
            oldest = self._queues.oldest_arrival()
            deadline = (oldest if oldest is not None else self._clock()) + config.max_delay
            while self._queues.queued < config.max_batch and not self._stopping:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                self._wakeup.wait(remaining)
            return self._queues.take(config.max_batch)

    def _run_batch(self, pendings: list[_Pending]) -> None:
        result = self._engine.search_batch([pending.query for pending in pendings])
        with self._lock:
            batch_index = self.stats.batches
            self.stats.batches += 1
            self.stats.searched += len(pendings)
        for pending, interval in zip(pendings, result.intervals):
            pending.interval = interval
            pending.batch_index = batch_index
        if self._accelerator is None:
            self._complete(pendings, flush_index=-1)
            return
        self._in_window.append(pendings)
        flushed = self._window.push(result.stats.requests)
        if flushed is not None:
            self._replay(flushed)

    def _replay(self, flushed) -> None:
        """Replay one flushed window — the service's unit of work."""
        run = self._accelerator.replay_flush(flushed, name=self._config.name)
        pendings = [pending for batch in self._in_window for pending in batch]
        self._in_window = []
        with self._lock:
            flush_index = len(self._flushes)
            self._flushes.append(run)
            self.stats.flushes += 1
            self.stats.issued_requests += flushed.issued
            self.stats.scheduled_requests += flushed.unique
            self.stats.window_batches += flushed.batches
        self._complete(pendings, flush_index)

    def _complete(self, pendings: list[_Pending], flush_index: int) -> None:
        now = self._clock()
        with self._lock:
            for pending in pendings:
                self.stats.latencies.append(now - pending.arrival)
                self.stats.per_tenant[pending.tenant] = (
                    self.stats.per_tenant.get(pending.tenant, 0) + 1
                )
            self.stats.completed += len(pendings)
        for pending in pendings:
            pending.ticket._complete(
                pending.slot,
                QueryOutcome(
                    query=pending.query,
                    tenant=pending.tenant,
                    interval=pending.interval,
                    arrival=pending.arrival,
                    completion=now,
                    batch_index=pending.batch_index,
                    flush_index=flush_index,
                ),
            )

    def _finish(self) -> None:
        """Drain the queue and force-flush the partial window (stop path)."""
        while True:
            with self._lock:
                batch = self._queues.take(self._config.max_batch)
            if not batch:
                break
            self._run_batch(batch)
        final = self._window.flush()
        if final is not None:
            self._replay(final)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def result(self) -> WindowedRunResult:
        """The accumulated replay record, shaped exactly like
        :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.run_windowed`'s.

        For a given partitioning of the served queries into dynamic
        batches, the flushes in here are field-for-field identical to the
        offline path over the same batch streams — both run
        :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.replay_flush`
        on identical :class:`~repro.engine.window.WindowedBatch` merges.
        """
        with self._lock:
            return WindowedRunResult(
                name=self._config.name,
                flushes=list(self._flushes),
                capacity=self._config.window,
                batches=self.stats.window_batches,
                issued=self.stats.issued_requests,
            )
