"""Open-loop load generation for the serving layer.

Open-loop means the arrival process is fixed *before* the run and never
waits on the service: every submit happens at its scheduled offset
whether or not earlier queries have completed, so queueing delay shows up
as latency (and, past saturation, as backpressure rejections) instead of
silently throttling the offered load — the methodology the SPEChpc-style
sustained-throughput studies insist on, and the only way a p99 means
anything.

Three ingredients, all deterministic under a seed:

* **arrival processes** — :func:`poisson_schedule` (exponential
  inter-arrival gaps at a constant rate) and :func:`bursty_schedule`
  (on/off-modulated Poisson: the same *mean* rate compressed into on-
  windows of each period, so bursts hit the admission queue at
  ``1/on_fraction`` times the nominal rate);
* **key skew** — :func:`zipfian_picks` draws query-pool ranks with
  ``P(rank r) ∝ 1/r^s``, the classic production-traffic skew (a handful
  of hot queries dominate), which is exactly what the cross-batch
  coalescing window monetises;
* **the driver** — :func:`run_open_loop` walks a schedule against a
  running :class:`~repro.serving.service.QueryService`, counts
  rejections without retrying (open loop), and gathers every accepted
  ticket at the end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .service import AdmissionRejected, QueryService, Ticket

__all__ = [
    "Arrival",
    "OpenLoopResult",
    "bursty_schedule",
    "make_schedule",
    "poisson_schedule",
    "rate_ladder",
    "run_open_loop",
    "sample_query_pool",
    "zipfian_picks",
]


def rate_ladder(base_rate: float, multipliers: Sequence[float]) -> list[float]:
    """The offered-load ladder of a saturation sweep: ``base_rate`` scaled
    by each multiplier, ascending.

    A *multiplicative* ladder (1, 2, 4, ... × the base rate) is how the
    sustained-throughput studies walk to the knee: each rung doubles the
    pressure, so the sweep brackets the saturation point in a handful of
    runs where a linear ladder would need dozens — and the knee reads off
    as the last rung the service absorbs without rejecting.
    """
    if base_rate <= 0:
        raise ValueError("base_rate must be > 0")
    if not multipliers:
        raise ValueError("at least one multiplier is required")
    if any(multiplier <= 0 for multiplier in multipliers):
        raise ValueError("multipliers must be > 0")
    return sorted(base_rate * multiplier for multiplier in multipliers)


@dataclass(frozen=True)
class Arrival:
    """One scheduled client submit: *queries* for *tenant* at *offset*."""

    offset: float
    tenant: str
    queries: tuple[str, ...]


def poisson_schedule(rate: float, duration: float, seed: int = 0) -> list[float]:
    """Poisson arrival offsets in ``[0, duration)`` at *rate* arrivals/s."""
    if rate <= 0:
        raise ValueError("rate must be > 0")
    if duration <= 0:
        raise ValueError("duration must be > 0")
    rng = np.random.default_rng(seed)
    # Draw enough exponential gaps in one shot, then trim to the horizon.
    expected = max(8, int(rate * duration * 2))
    offsets = np.cumsum(rng.exponential(1.0 / rate, size=expected))
    while offsets.size and offsets[-1] < duration:
        extra = np.cumsum(rng.exponential(1.0 / rate, size=expected)) + offsets[-1]
        offsets = np.concatenate([offsets, extra])
    return offsets[offsets < duration].tolist()


def bursty_schedule(
    rate: float,
    duration: float,
    seed: int = 0,
    period: float = 0.2,
    on_fraction: float = 0.25,
) -> list[float]:
    """On/off bursty arrivals with mean *rate* arrivals/s.

    Each *period* opens with an on-window of ``period * on_fraction``
    seconds during which arrivals are Poisson at ``rate / on_fraction``
    (so the long-run mean stays *rate*), followed by silence — the
    admission queue sees ``1/on_fraction``× overload at the front of
    every period, which is what exercises backpressure and tail latency.
    """
    if not 0.0 < on_fraction <= 1.0:
        raise ValueError("on_fraction must be in (0, 1]")
    if period <= 0:
        raise ValueError("period must be > 0")
    offsets: list[float] = []
    start = 0.0
    seed_step = 0
    while start < duration:
        on_seconds = min(period * on_fraction, duration - start)
        burst = poisson_schedule(rate / on_fraction, on_seconds, seed=seed + seed_step)
        offsets.extend(start + offset for offset in burst)
        start += period
        seed_step += 1
    return offsets


def zipfian_picks(count: int, pool_size: int, s: float = 1.1, seed: int = 0) -> np.ndarray:
    """*count* pool indices drawn with ``P(rank r) ∝ 1/r^s`` (0-based)."""
    if pool_size < 1:
        raise ValueError("pool_size must be >= 1")
    weights = 1.0 / np.arange(1, pool_size + 1, dtype=np.float64) ** s
    weights /= weights.sum()
    rng = np.random.default_rng(seed)
    return rng.choice(pool_size, size=count, p=weights)


def sample_query_pool(
    reference: str, pool_size: int, length: int, seed: int = 0
) -> list[str]:
    """A pool of *pool_size* reference substrings to draw skewed traffic from."""
    if len(reference) <= length:
        raise ValueError("reference shorter than the query length")
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, len(reference) - length, size=pool_size)
    return [reference[start : start + length] for start in starts.tolist()]


def make_schedule(
    offsets: Sequence[float],
    pool: Sequence[str],
    tenants: int = 1,
    queries_per_arrival: int = 4,
    zipf_s: float = 1.1,
    seed: int = 0,
) -> list[Arrival]:
    """Assemble arrivals: Zipf-skewed pool picks, tenants round-robin.

    Tenants take turns in arrival order, so every tenant offers the same
    share of the load — what the fairness test of the batcher expects.
    """
    picks = zipfian_picks(
        max(1, len(offsets)) * queries_per_arrival, len(pool), s=zipf_s, seed=seed
    )
    arrivals = []
    for index, offset in enumerate(offsets):
        chosen = picks[index * queries_per_arrival : (index + 1) * queries_per_arrival]
        arrivals.append(
            Arrival(
                offset=float(offset),
                tenant=f"tenant-{index % max(1, tenants)}",
                queries=tuple(pool[pick] for pick in chosen.tolist()),
            )
        )
    return arrivals


@dataclass
class OpenLoopResult:
    """What one open-loop run offered and what came back."""

    #: Queries offered / admitted / bounced by backpressure.
    offered: int = 0
    accepted: int = 0
    rejected: int = 0
    #: Tickets of the accepted groups, in submission order.
    tickets: list[Ticket] = field(default_factory=list)
    #: ``retry_after`` hints collected from rejections.
    retry_afters: list[float] = field(default_factory=list)
    #: Wall-clock seconds from first submit to all tickets resolved.
    wall_seconds: float = 0.0

    @property
    def rejection_rate(self) -> float:
        """Fraction of offered queries bounced."""
        return self.rejected / self.offered if self.offered else 0.0


def run_open_loop(
    service: QueryService,
    schedule: Sequence[Arrival],
    result_timeout: float = 60.0,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> OpenLoopResult:
    """Drive *service* with *schedule*, open-loop, and gather every ticket.

    Submits never wait on completions; a rejected submit is recorded (with
    its ``retry_after``) and the driver moves on to the next arrival.
    Returns once every accepted ticket has resolved.

    Raises:
        TimeoutError: an accepted ticket did not resolve within
            *result_timeout* — the service wedged, which the caller should
            treat as a failed run rather than report fabricated latencies.
    """
    result = OpenLoopResult()
    start = clock()
    for arrival in schedule:
        delay = start + arrival.offset - clock()
        if delay > 0:
            sleep(delay)
        result.offered += len(arrival.queries)
        try:
            result.tickets.append(service.submit(arrival.queries, tenant=arrival.tenant))
            result.accepted += len(arrival.queries)
        except AdmissionRejected as rejection:
            result.rejected += len(arrival.queries)
            result.retry_afters.append(rejection.retry_after)
    deadline = clock() + result_timeout
    for ticket in result.tickets:
        if not ticket.wait(max(0.0, deadline - clock())):
            raise TimeoutError("accepted ticket did not resolve within result_timeout")
    result.wall_seconds = clock() - start
    return result
