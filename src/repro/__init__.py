"""EXMA reproduction: a genomics accelerator for exact-matching (HPCA 2021).

The package is organised bottom-up:

* :mod:`repro.genome` — DNA alphabet, synthetic references, read simulators,
  FASTA/FASTQ I/O.
* :mod:`repro.index` — suffix arrays, BWT, conventional 1-step and k-step
  FM-Index.
* :mod:`repro.lisa` — LISA: IP-BWT plus a recursive-model learned index.
* :mod:`repro.exma` — the paper's contribution: the EXMA table, the naive
  and MTL learned indexes, EXMA search, CHAIN and BΔI compression.
* :mod:`repro.engine` — the batched multi-backend query engine: a
  :class:`~repro.engine.engine.QueryEngine` advancing whole query batches
  in lockstep through a registered search backend, with (k-mer, pos)
  request coalescing feeding the hardware model.
* :mod:`repro.hw` — DDR4 timing/energy, caches, the scheduling CAM,
  FR-FCFS / 2-stage schedulers and the PE-array inference engine.
* :mod:`repro.accel` — the trace-driven EXMA accelerator model, analytic
  baselines (CPU, GPU, FPGA, ASIC, MEDAL, FindeR) and metrics.
* :mod:`repro.apps` — read alignment, assembly, annotation and
  reference-based compression plus the pipeline time/energy models.
* :mod:`repro.experiments` — one entry point per table/figure of the
  paper's evaluation.
"""

from . import accel, apps, engine, exma, genome, hw, index, lisa

__version__ = "1.0.0"

__all__ = ["accel", "apps", "engine", "exma", "genome", "hw", "index", "lisa", "__version__"]
