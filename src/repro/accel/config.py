"""Hardware configuration of the EXMA accelerator and its host (Table I).

Everything the paper's Table I specifies is collected here: the accelerator
component inventory (areas and per-op energies live in
``repro.hw.energy``), the cache/CAM/PE-array geometries, the CPU baseline
parameters and the DDR4 main-memory system.  Experiments build variant
configurations from :class:`ExmaAcceleratorConfig` (e.g. the Fig. 22 design
-space sweeps change ``dimms_per_channel``, ``pe_arrays``, ``cam_entries``
and ``base_cache_bytes``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..hw.cam import CamConfig
from ..hw.dram import DDR4Config, PagePolicy
from ..hw.pe_array import PEArrayConfig


@dataclass(frozen=True)
class CpuConfig:
    """The CPU baseline of Table I."""

    cores: int = 16
    clock_ghz: float = 2.5
    llc_mb: int = 40
    llc_mshrs: int = 64

    def __post_init__(self) -> None:
        if min(self.cores, self.llc_mb, self.llc_mshrs) <= 0 or self.clock_ghz <= 0:
            raise ValueError("CPU parameters must be positive")


@dataclass(frozen=True)
class ExmaAcceleratorConfig:
    """Full configuration of the EXMA accelerator (Table I defaults)."""

    pe_arrays: int = 4
    cam_entries: int = 512
    index_cache_bytes: int = 32 * 1024
    index_cache_ways: int = 16
    base_cache_bytes: int = 1024 * 1024
    base_cache_ways: int = 8
    cache_line_bytes: int = 64
    decompress_adders: int = 32
    dimms_per_channel: int = 3
    channels: int = 4
    page_policy: PagePolicy = PagePolicy.DYNAMIC
    two_stage_scheduling: bool = True
    use_chain_compression: bool = True

    def __post_init__(self) -> None:
        if min(
            self.pe_arrays,
            self.cam_entries,
            self.index_cache_bytes,
            self.base_cache_bytes,
            self.cache_line_bytes,
            self.decompress_adders,
            self.dimms_per_channel,
            self.channels,
        ) <= 0:
            raise ValueError("accelerator parameters must be positive")

    def cam_config(self) -> CamConfig:
        """The scheduling-queue configuration."""
        return CamConfig(entries=self.cam_entries)

    def pe_config(self) -> PEArrayConfig:
        """The inference-engine configuration."""
        return PEArrayConfig(arrays=self.pe_arrays)

    def dram_config(self) -> DDR4Config:
        """The DDR4 configuration seen by this accelerator."""
        return DDR4Config(channels=self.channels, dimms_per_channel=self.dimms_per_channel)

    def with_overrides(self, **kwargs) -> "ExmaAcceleratorConfig":
        """A copy with selected fields replaced (for design-space sweeps)."""
        return replace(self, **kwargs)


#: Accelerator variants evaluated in Fig. 18 (cumulative feature stack).
def ex_acc_config() -> ExmaAcceleratorConfig:
    """EX-acc: the accelerator with FR-FCFS scheduling and close-page DRAM."""
    return ExmaAcceleratorConfig(page_policy=PagePolicy.CLOSE, two_stage_scheduling=False)


def ex_2stage_config() -> ExmaAcceleratorConfig:
    """EX-2stage: EX-acc plus 2-stage scheduling."""
    return ExmaAcceleratorConfig(page_policy=PagePolicy.CLOSE, two_stage_scheduling=True)


def exma_full_config() -> ExmaAcceleratorConfig:
    """EXMA: EX-2stage plus the dynamic page policy."""
    return ExmaAcceleratorConfig(page_policy=PagePolicy.DYNAMIC, two_stage_scheduling=True)


DEFAULT_CPU_CONFIG = CpuConfig()
DEFAULT_ACCELERATOR_CONFIG = ExmaAcceleratorConfig()
