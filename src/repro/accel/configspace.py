"""The accelerator design space: validated points, grids and the frontier.

The DSE harness (``repro.experiments.dse``) sweeps the microarchitecture
knobs the paper's Fig. 22 only ever moved one at a time: CAM width, the
geometry of both on-chip caches, the DRAM page policy, the MTL index
shape and the coalescing window W.  This module holds everything about
the *space* itself, independent of any workload:

* :class:`ConfigPoint` — one immutable, validated coordinate.  Cache
  geometry is expressed as (sets, ways) so every point is constructible
  by definition: ``SetAssociativeCache`` requires the capacity to be a
  multiple of ``line_bytes * ways``, and ``sets * ways * line_bytes``
  satisfies that for any positive sets/ways.  Sets and ways must be
  powers of two (real index functions decode set bits from the address).
* :func:`baseline_point` — the Table-I design (W=1), which must replay
  field-for-field identically to today's :meth:`ExmaAccelerator.run`.
* grid parsing/enumeration — ``parse_grid`` turns the CLI's
  ``"cam=64,128;base_ways=4,8"`` spec into axes, ``enumerate_grid``
  crosses them over an anchor point.
* :func:`area_proxy_mm2` — a first-order area model scaling the Table-I
  component areas with the swept structure sizes.
* :func:`pareto_frontier` — non-dominated extraction over
  maximised objective vectors, invariant under input ordering.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ..hw.dram import PagePolicy
from ..hw.energy import EXMA_COMPONENTS
from .config import ExmaAcceleratorConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..exma.mtl_index import MTLIndex
    from ..exma.table import ExmaTable
    from .exma_accelerator import ExmaAccelerator

__all__ = [
    "AXES",
    "ConfigPoint",
    "baseline_point",
    "clone_accelerator",
    "enumerate_grid",
    "parse_grid",
    "pareto_frontier",
    "point_from_dict",
    "point_to_dict",
    "scaled_sweep_point",
]


def _is_power_of_two(value: int) -> bool:
    return isinstance(value, int) and value > 0 and value & (value - 1) == 0


@dataclass(frozen=True)
class ConfigPoint:
    """One validated coordinate of the accelerator design space.

    Field defaults are the Table-I design: a 512-entry CAM, a 1 MB
    8-way base cache (2048 sets of 64 B lines), a 32 KB 16-way index
    cache (32 sets), dynamic page policy, the workload's default MTL
    index and no cross-batch coalescing (W=1).
    """

    cam_entries: int = 512
    base_cache_sets: int = 2048
    base_cache_ways: int = 8
    index_cache_sets: int = 32
    index_cache_ways: int = 16
    page_policy: PagePolicy = PagePolicy.DYNAMIC
    #: MTL split threshold, or ``None`` for the workload's default index.
    mtl_threshold: int | None = None
    #: Coalescing window W the workload's batch streams merge under.
    window: int = 1

    def __post_init__(self) -> None:
        for name in ("base_cache_sets", "base_cache_ways",
                     "index_cache_sets", "index_cache_ways"):
            value = getattr(self, name)
            if not _is_power_of_two(value):
                raise ValueError(f"{name} must be a power of two, got {value!r}")
        if not isinstance(self.cam_entries, int) or self.cam_entries < 1:
            raise ValueError(f"cam_entries must be a positive int, got {self.cam_entries!r}")
        if not isinstance(self.window, int) or self.window < 1:
            raise ValueError(f"window must be a positive int, got {self.window!r}")
        if self.mtl_threshold is not None and (
            not isinstance(self.mtl_threshold, int) or self.mtl_threshold < 1
        ):
            raise ValueError(
                f"mtl_threshold must be None or a positive int, got {self.mtl_threshold!r}"
            )
        policy = self.page_policy
        if isinstance(policy, str):
            try:
                policy = PagePolicy(policy.lower())
            except ValueError:
                raise ValueError(
                    f"page_policy must be one of "
                    f"{[p.value for p in PagePolicy]}, got {self.page_policy!r}"
                ) from None
            object.__setattr__(self, "page_policy", policy)
        elif not isinstance(policy, PagePolicy):
            raise ValueError(f"page_policy must be a PagePolicy, got {policy!r}")

    @property
    def base_cache_bytes(self) -> int:
        """Base-cache capacity implied by the (sets, ways) geometry."""
        return self.base_cache_sets * self.base_cache_ways * _LINE_BYTES

    @property
    def index_cache_bytes(self) -> int:
        """Index-cache capacity implied by the (sets, ways) geometry."""
        return self.index_cache_sets * self.index_cache_ways * _LINE_BYTES

    @property
    def label(self) -> str:
        """Compact unique name used in reports and gate output."""
        threshold = "def" if self.mtl_threshold is None else str(self.mtl_threshold)
        return (
            f"cam{self.cam_entries}-b{self.base_cache_sets}x{self.base_cache_ways}"
            f"-i{self.index_cache_sets}x{self.index_cache_ways}"
            f"-{self.page_policy.value}-mtl{threshold}-w{self.window}"
        )

    def accelerator_config(
        self, base: ExmaAcceleratorConfig | None = None
    ) -> ExmaAcceleratorConfig:
        """Project this point onto a full accelerator configuration.

        Everything the point does not sweep (PE arrays, channels, CHAIN
        compression, two-stage scheduling, ...) is inherited from *base*
        — Table I by default, so :func:`baseline_point` maps exactly to
        ``ExmaAcceleratorConfig()``.
        """
        base = base if base is not None else ExmaAcceleratorConfig()
        line = base.cache_line_bytes
        return base.with_overrides(
            cam_entries=self.cam_entries,
            base_cache_bytes=self.base_cache_sets * self.base_cache_ways * line,
            base_cache_ways=self.base_cache_ways,
            index_cache_bytes=self.index_cache_sets * self.index_cache_ways * line,
            index_cache_ways=self.index_cache_ways,
            page_policy=self.page_policy,
        )

    def build_accelerator(
        self,
        table: "ExmaTable",
        index: "MTLIndex | None",
        base: ExmaAcceleratorConfig | None = None,
    ) -> "ExmaAccelerator":
        """Construct a fresh accelerator at this design point."""
        from .exma_accelerator import ExmaAccelerator

        return ExmaAccelerator(table, index, self.accelerator_config(base))

    def area_proxy_mm2(self) -> float:
        """First-order area of this point, in mm².

        The Table-I component inventory supplies the anchor areas; the
        three swept structures (base cache, index cache, scheduling
        queue) scale linearly with their capacity relative to the
        Table-I geometry, and the fixed-function components (inference
        engine, decompressor, scheduling/row logic, DMA) carry over
        unchanged.  A linear SRAM/CAM area model is deliberately crude —
        the proxy only has to order design points, not price silicon.
        """
        reference = _TABLE1_REFERENCE
        total = 0.0
        for spec in EXMA_COMPONENTS:
            if spec.name == "base_cache":
                total += spec.area_mm2 * self.base_cache_bytes / reference.base_cache_bytes
            elif spec.name == "index_cache":
                total += spec.area_mm2 * self.index_cache_bytes / reference.index_cache_bytes
            elif spec.name == "scheduling_queue":
                total += spec.area_mm2 * self.cam_entries / reference.cam_entries
            else:
                total += spec.area_mm2
        return total


#: Cache line size shared by every design point (Table I fixes 64 B lines;
#: the line size is not a swept knob).
_LINE_BYTES = ExmaAcceleratorConfig().cache_line_bytes


def baseline_point() -> ConfigPoint:
    """The Table-I design with W=1 — the field-for-field equality anchor."""
    return ConfigPoint()


_TABLE1_REFERENCE = ConfigPoint()


def scaled_sweep_point() -> ConfigPoint:
    """The reproduction-scale anchor the default grids perturb.

    Mirrors the Fig. 18 ``_scaled_config`` shrink (8 KB base cache,
    1 KB index cache, 128-entry CAM) so toy-genome sweeps actually
    exercise capacity pressure instead of fitting entirely in cache.
    """
    return ConfigPoint(
        cam_entries=128,
        base_cache_sets=16,
        base_cache_ways=8,
        index_cache_sets=4,
        index_cache_ways=4,
    )


#: Grid axis names accepted by :func:`parse_grid`, mapped to the
#: :class:`ConfigPoint` field each one sweeps.
AXES: dict[str, str] = {
    "cam": "cam_entries",
    "base_sets": "base_cache_sets",
    "base_ways": "base_cache_ways",
    "index_sets": "index_cache_sets",
    "index_ways": "index_cache_ways",
    "page": "page_policy",
    "mtl": "mtl_threshold",
    "window": "window",
}


def _parse_axis_value(axis: str, text: str):
    text = text.strip()
    if axis == "page":
        return PagePolicy(text.lower())
    if axis == "mtl":
        return None if text.lower() in ("default", "none") else int(text)
    return int(text)


def parse_grid(spec: str) -> dict[str, tuple]:
    """Parse a CLI grid spec like ``"cam=64,128;base_ways=4,8"``.

    Axes are ``;``-separated ``name=v1,v2,...`` entries; the axis names
    are the keys of :data:`AXES`.  The page axis takes policy names
    (``close``/``open``/``dynamic``), the mtl axis takes thresholds or
    ``default`` (the workload's default index); everything else is an
    integer.  Values are de-duplicated preserving order.
    """
    grid: dict[str, tuple] = {}
    for entry in spec.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        name, separator, values_text = entry.partition("=")
        name = name.strip().lower()
        if not separator or name not in AXES:
            raise ValueError(
                f"unknown grid axis {name!r} (expected one of {sorted(AXES)})"
            )
        try:
            values = tuple(
                dict.fromkeys(
                    _parse_axis_value(name, part)
                    for part in values_text.split(",")
                    if part.strip()
                )
            )
        except ValueError as error:
            raise ValueError(f"bad value for grid axis {name!r}: {error}") from None
        if not values:
            raise ValueError(f"grid axis {name!r} needs at least one value")
        grid[name] = values
    if not grid:
        raise ValueError("empty grid spec")
    return grid


def enumerate_grid(
    grid: Mapping[str, Sequence], anchor: ConfigPoint | None = None
) -> list[ConfigPoint]:
    """Cross the grid axes over *anchor*, validating every point.

    Unswept fields keep the anchor's values; duplicate points (possible
    when an axis repeats the anchor value) are dropped preserving the
    first occurrence.  Every returned point passed :class:`ConfigPoint`
    validation — an invalid combination raises immediately rather than
    surfacing later inside a worker.
    """
    anchor = anchor if anchor is not None else scaled_sweep_point()
    for axis in grid:
        if axis not in AXES:
            raise ValueError(
                f"unknown grid axis {axis!r} (expected one of {sorted(AXES)})"
            )
    axes = list(grid.items())
    points: list[ConfigPoint] = []
    seen: set[ConfigPoint] = set()
    for combo in itertools.product(*(values for _, values in axes)):
        overrides = {AXES[axis]: value for (axis, _), value in zip(axes, combo)}
        point = replace(anchor, **overrides)
        if point not in seen:
            seen.add(point)
            points.append(point)
    return points


def point_to_dict(point: ConfigPoint) -> dict:
    """JSON-ready form of a point (page policy as its string value)."""
    record = {f.name: getattr(point, f.name) for f in fields(point)}
    record["page_policy"] = point.page_policy.value
    return record


def point_from_dict(record: Mapping) -> ConfigPoint:
    """Rebuild a validated point from :func:`point_to_dict` output."""
    kwargs = {f.name: record[f.name] for f in fields(ConfigPoint) if f.name in record}
    return ConfigPoint(**kwargs)


def clone_accelerator(
    accelerator: "ExmaAccelerator", point: ConfigPoint, index: "MTLIndex | None" = None
) -> "ExmaAccelerator":
    """A fresh accelerator over *accelerator*'s table at *point*.

    The table (and by default the index) are shared, not copied — the
    DSE re-prices the microarchitecture, not the data structure.  Pass
    *index* explicitly when the point sweeps the MTL shape.
    """
    return point.build_accelerator(
        accelerator.table,
        accelerator.index if index is None else index,
        accelerator.config,
    )


def pareto_frontier(vectors: Iterable[Sequence[float]]) -> list[int]:
    """Indices of the non-dominated *vectors* (every objective maximised).

    ``a`` dominates ``b`` when ``a`` is >= ``b`` on every objective and
    strictly greater on at least one; equal vectors never dominate each
    other, so membership is a pure function of the multiset of vectors —
    invariant under input ordering (the property test's oracle).  The
    returned indices are in input order.
    """
    rows = [tuple(vector) for vector in vectors]
    frontier: list[int] = []
    for i, candidate in enumerate(rows):
        dominated = False
        for j, other in enumerate(rows):
            if j == i or other == candidate:
                continue
            if all(o >= c for o, c in zip(other, candidate)):
                dominated = True
                break
        if not dominated:
            frontier.append(i)
    return frontier
