"""Accelerator layer: EXMA accelerator model, baselines, configs, metrics."""

from .baselines import (
    AcceleratorModel,
    stream_merge_ratio,
    CpuMemoryParameters,
    CpuThroughputModel,
    SoftwareAlgorithm,
    asic_model,
    exma_analytic_model,
    finder_model,
    fpga_model,
    gpu_model,
    medal_model,
    standard_accelerator_suite,
)
from .config import (
    DEFAULT_ACCELERATOR_CONFIG,
    DEFAULT_CPU_CONFIG,
    CpuConfig,
    ExmaAcceleratorConfig,
    ex_2stage_config,
    ex_acc_config,
    exma_full_config,
)
from .exma_accelerator import AcceleratorRunResult, ExmaAccelerator, WindowedRunResult
from .metrics import ApplicationRun, SearchThroughput, geometric_mean, normalise
from .parallel import ParallelReplay, replay_epoch

__all__ = [
    "AcceleratorModel",
    "CpuMemoryParameters",
    "CpuThroughputModel",
    "SoftwareAlgorithm",
    "asic_model",
    "exma_analytic_model",
    "finder_model",
    "fpga_model",
    "gpu_model",
    "medal_model",
    "standard_accelerator_suite",
    "DEFAULT_ACCELERATOR_CONFIG",
    "DEFAULT_CPU_CONFIG",
    "CpuConfig",
    "ExmaAcceleratorConfig",
    "ex_2stage_config",
    "ex_acc_config",
    "exma_full_config",
    "AcceleratorRunResult",
    "ExmaAccelerator",
    "ParallelReplay",
    "WindowedRunResult",
    "replay_epoch",
    "stream_merge_ratio",
    "ApplicationRun",
    "SearchThroughput",
    "geometric_mean",
    "normalise",
]
