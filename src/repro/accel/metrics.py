"""Throughput, bandwidth and energy-efficiency metrics.

The paper reports FM-Index search performance as *million bases searched
per second* (Mbase/s) and efficiency as Mbase/s per Watt (Table II), plus
normalised search throughput (Figs. 6, 10, 18, 22), application speedup
(Fig. 19), normalised energy (Fig. 20) and DRAM bandwidth utilisation
(Fig. 21).  This module holds the small result dataclasses and conversion
helpers shared by the accelerator models and the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SearchThroughput:
    """Result of running a seeding workload on one accelerator/algorithm."""

    name: str
    bases_processed: int
    seconds: float
    accelerator_power_w: float
    dram_power_w: float
    bandwidth_utilization: float = 0.0
    row_hit_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.bases_processed < 0:
            raise ValueError("bases_processed must be non-negative")
        if self.seconds <= 0:
            raise ValueError("seconds must be positive")

    @property
    def bases_per_second(self) -> float:
        """Raw search throughput in bases per second."""
        return self.bases_processed / self.seconds

    @property
    def mbase_per_second(self) -> float:
        """Search throughput in Mbase/s (Table II metric)."""
        return self.bases_per_second / 1e6

    @property
    def total_power_w(self) -> float:
        """Accelerator plus DRAM power."""
        return self.accelerator_power_w + self.dram_power_w

    @property
    def mbase_per_second_per_watt(self) -> float:
        """Efficiency in Mbase/s/W (Table II metric)."""
        if self.total_power_w <= 0:
            return 0.0
        return self.mbase_per_second / self.total_power_w

    def speedup_over(self, baseline: "SearchThroughput") -> float:
        """Throughput ratio against a baseline result."""
        if baseline.bases_per_second <= 0:
            raise ValueError("baseline throughput must be positive")
        return self.bases_per_second / baseline.bases_per_second


@dataclass(frozen=True)
class ApplicationRun:
    """Execution-time breakdown of one genome-analysis application run."""

    application: str
    dataset: str
    fm_index_seconds: float
    dynamic_programming_seconds: float
    other_seconds: float

    def __post_init__(self) -> None:
        for value in (self.fm_index_seconds, self.dynamic_programming_seconds, self.other_seconds):
            if value < 0:
                raise ValueError("time components must be non-negative")

    @property
    def total_seconds(self) -> float:
        """Total run time."""
        return self.fm_index_seconds + self.dynamic_programming_seconds + self.other_seconds

    @property
    def fm_index_fraction(self) -> float:
        """Fraction of time in FM-Index searches (Fig. 1)."""
        total = self.total_seconds
        if total == 0:
            return 0.0
        return self.fm_index_seconds / total

    def speedup_with_search_speedup(self, search_speedup: float) -> float:
        """Amdahl's-law application speedup when searches run faster."""
        if search_speedup <= 0:
            raise ValueError("search_speedup must be positive")
        fraction = self.fm_index_fraction
        return 1.0 / ((1.0 - fraction) + fraction / search_speedup)


def normalise(values: dict[str, float], baseline: str) -> dict[str, float]:
    """Divide every value by the named baseline's value."""
    if baseline not in values:
        raise KeyError(f"baseline {baseline!r} not present")
    base = values[baseline]
    if base == 0:
        raise ValueError("baseline value must be non-zero")
    return {name: value / base for name, value in values.items()}


def geometric_mean(values: list[float]) -> float:
    """Geometric mean of positive values (the paper's gmean columns)."""
    if not values:
        raise ValueError("values must be non-empty")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
