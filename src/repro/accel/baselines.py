"""Analytic throughput models: CPU software variants and prior accelerators.

The paper compares EXMA against software algorithms running on a 16-core
CPU (conventional k-step FM-Index and LISA variants, Figs. 6(d)/10(b)/18)
and against prior hardware accelerators (GPU, FPGA, ASIC, and the PIMs
MEDAL and FindeR; Table II and Fig. 21).  None of those designs is
available to run, so each is modelled analytically from the quantities that
the paper argues actually determine FM-Index search performance:

* how many DNA symbols one iteration consumes (k),
* how many random memory accesses an iteration issues,
* how many sequential bytes the learned-index error forces it to scan,
* how much concurrency the device can keep in flight,
* the DRAM page policy / chip parallelism / address-bus behaviour.

The CPU model takes its error statistics from *measured* learned-index
errors on the scaled datasets, so the shapes of Figs. 6(d) and 10(b)
emerge from the data rather than being hard-coded.  The absolute constants
(DRAM latency, streaming bandwidth, TLB penalties, device concurrency) are
calibration assumptions recorded here and in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from ..engine.window import WindowedBatch
from ..hw.dram import DDR4Config
from ..hw.energy import CPU_POWER_W, DRAM_SYSTEM_POWER_W
from .metrics import SearchThroughput

#: Bytes of one IP-BWT entry (k-mer + paired row) used for scan traffic.
IPBWT_ENTRY_BYTES = 16

#: Bytes of one EXMA increment entry.
INCREMENT_ENTRY_BYTES = 4


def stream_merge_ratio(windows: "Iterable[WindowedBatch]") -> float:
    """Issued-to-unique request ratio of a windowed stream (>= 1.0).

    The scheduling-window merge removes duplicate ``(k-mer, pos)``
    requests before they reach a device, so every lookup-rate-bound model
    serves ``1 / ratio`` as many lookups per base.  Plain request
    sequences count as already-merged windows (ratio contribution 1).
    """
    issued = 0
    unique = 0
    for flushed in windows:
        if isinstance(flushed, WindowedBatch):
            issued += flushed.issued
            unique += flushed.unique
        else:
            issued += len(flushed)
            unique += len(flushed)
    if unique == 0:
        return 1.0
    return max(1.0, issued / unique)


# --------------------------------------------------------------------------- #
# CPU software model
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class CpuMemoryParameters:
    """Calibration constants of the CPU memory system."""

    random_access_ns: float = 95.0
    streaming_bandwidth_gbs: float = 12.0
    memory_level_parallelism: float = 4.0
    cores: int = 16
    tlb_walk_ns: float = 80.0
    #: Data-structure size (GB) at which TLB misses start to hurt; the
    #: penalty grows with log2(size / threshold).
    tlb_threshold_gb: float = 8.0
    index_node_access_ns: float = 40.0


@dataclass(frozen=True)
class SoftwareAlgorithm:
    """One software search algorithm running on the CPU baseline.

    Attributes:
        name: scheme name (``FM-1``, ``LISA-21``, ``EXMA-15M`` ...).
        symbols_per_iteration: DNA symbols consumed per backward-search
            iteration (the step number k).
        random_accesses_per_iteration: DRAM accesses with no locality
            (Occ bucket / IP-BWT / increment lookups; 2 per iteration).
        index_node_accesses_per_lookup: pointer-chasing accesses through a
            learned-index hierarchy per Occ lookup (0 when there is none,
            or when a perfect cache holds the index).
        scan_entries_per_lookup: entries linearly scanned per lookup due to
            learned-index error (0 for exact search structures).
        scan_entry_bytes: bytes per scanned entry.
        structure_size_gb: paper-scale data-structure size, which drives
            the TLB penalty.
    """

    name: str
    symbols_per_iteration: int
    random_accesses_per_iteration: float = 2.0
    index_node_accesses_per_lookup: float = 0.0
    scan_entries_per_lookup: float = 0.0
    scan_entry_bytes: int = IPBWT_ENTRY_BYTES
    structure_size_gb: float = 16.0


class CpuThroughputModel:
    """Throughput of a software algorithm on the 16-core CPU baseline."""

    def __init__(self, parameters: CpuMemoryParameters | None = None) -> None:
        self._params = parameters or CpuMemoryParameters()

    @property
    def parameters(self) -> CpuMemoryParameters:
        """The calibration constants in use."""
        return self._params

    def _tlb_penalty_ns(self, structure_size_gb: float) -> float:
        """Extra nanoseconds per random access due to TLB misses."""
        params = self._params
        if structure_size_gb <= params.tlb_threshold_gb:
            return 0.0
        import math

        return params.tlb_walk_ns * math.log2(structure_size_gb / params.tlb_threshold_gb)

    def iteration_time_ns(self, algorithm: SoftwareAlgorithm) -> float:
        """Time one core spends on one backward-search iteration."""
        params = self._params
        penalty = self._tlb_penalty_ns(algorithm.structure_size_gb)
        random_ns = (
            algorithm.random_accesses_per_iteration
            * (params.random_access_ns + penalty)
            / params.memory_level_parallelism
        )
        index_ns = (
            algorithm.random_accesses_per_iteration
            * algorithm.index_node_accesses_per_lookup
            * params.index_node_access_ns
        )
        scan_bytes = (
            algorithm.random_accesses_per_iteration
            * algorithm.scan_entries_per_lookup
            * algorithm.scan_entry_bytes
        )
        scan_ns = scan_bytes / params.streaming_bandwidth_gbs if scan_bytes else 0.0
        return random_ns + index_ns + scan_ns

    def bases_per_second(self, algorithm: SoftwareAlgorithm) -> float:
        """Aggregate search throughput of the CPU in bases per second."""
        iteration_ns = self.iteration_time_ns(algorithm)
        if iteration_ns <= 0:
            raise ValueError("iteration time must be positive")
        per_core = algorithm.symbols_per_iteration / (iteration_ns * 1e-9)
        return per_core * self._params.cores

    def throughput(self, algorithm: SoftwareAlgorithm) -> SearchThroughput:
        """Full throughput record including CPU and DRAM power."""
        bases_per_second = self.bases_per_second(algorithm)
        # Report over a nominal one-second window.
        return SearchThroughput(
            name=algorithm.name,
            bases_processed=int(bases_per_second),
            seconds=1.0,
            accelerator_power_w=CPU_POWER_W,
            dram_power_w=DRAM_SYSTEM_POWER_W,
        )

    def run_stream(
        self, algorithm: SoftwareAlgorithm, windows: "Iterable[WindowedBatch]"
    ) -> SearchThroughput:
        """Throughput of *algorithm* consuming a windowed request stream.

        The software mirror of the accelerator's scheduling-window merge:
        duplicate ``(k-mer, pos)`` lookups inside one window are resolved
        once and the result shared, so the random accesses each iteration
        actually issues shrink by the stream's merge ratio while the
        symbols consumed per iteration stay the same.
        """
        ratio = stream_merge_ratio(windows)
        merged = replace(
            algorithm,
            random_accesses_per_iteration=algorithm.random_accesses_per_iteration / ratio,
        )
        return self.throughput(merged)


# --------------------------------------------------------------------------- #
# Hardware accelerator models
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class AcceleratorModel:
    """Analytic model of one prior FM-Index accelerator.

    Attributes:
        name: device name.
        algorithm: search algorithm the device runs (Table II row 1).
        symbols_per_iteration: DNA symbols per backward-search iteration.
        useful_bytes_per_lookup: bytes the device actually needs per Occ
            lookup (a 64 B bucket for FM-1, a partial-row slice for MEDAL,
            predicted increments for EXMA).
        scan_bytes_per_lookup: additional sequential bytes scanned per
            lookup (learned-index error traffic).
        outstanding_lookups: concurrent lookups the device sustains.
        commands_per_lookup: DDR4 command-bus slots per lookup (3 for
            close-page PRE/ACT/RD, more for chip-level parallelism).
        bus_conflict_factor: multiplier on command slots that accounts for
            the Fig. 7 address-bus bubbles under chip-level parallelism.
        row_cycle_cycles: bank occupancy per lookup in DRAM cycles
            (tRCD + tCAS + burst + tRP for close page).
        chip_level_parallelism: MEDAL-style per-chip activation.
        device_power_w: accelerator power (Table II "Acc Power").
        internal_memory_gb: on-accelerator memory (FindeR's 2.6 GB ReRAM);
            lookups that miss it pay an extra external access.
        fetched_bytes_per_lookup: bytes the memory system actually moves
            per lookup (defaults to useful + scan); used for the Fig. 21
            bandwidth-utilisation metric.
    """

    name: str
    algorithm: str
    symbols_per_iteration: int
    useful_bytes_per_lookup: float
    scan_bytes_per_lookup: float = 0.0
    outstanding_lookups: int = 64
    commands_per_lookup: float = 3.0
    bus_conflict_factor: float = 1.0
    row_cycle_cycles: int = 52
    chip_level_parallelism: bool = False
    device_power_w: float = 10.0
    internal_memory_gb: float = 0.0
    fetched_bytes_per_lookup: float | None = None

    def lookups_per_iteration(self) -> float:
        """Occ lookups per backward-search iteration (low and high)."""
        return 2.0

    def throughput(
        self,
        dram: DDR4Config | None = None,
        dataset_size_gb: float = 128.0,
        coalescing_factor: float = 1.0,
    ) -> SearchThroughput:
        """Search throughput under the shared DDR4 main memory.

        The rate is the minimum of three per-channel bounds, scaled by the
        channel count:

        * data-bus bound: peak bytes/cycle divided by bytes moved per base;
        * command-bus bound: one command per cycle divided by commands per
          base (this is what throttles MEDAL);
        * latency bound: outstanding lookups overlapping ``row_cycle``
          bank occupancy.

        *coalescing_factor* (>= 1) models a scheduling-window merge in
        front of the device: every bound serves ``1 / factor`` as many
        lookups per base, because duplicate requests inside a window are
        resolved once.
        """
        if coalescing_factor < 1.0:
            raise ValueError("coalescing_factor must be >= 1")
        dram = dram or DDR4Config()
        lookups_per_base = (
            self.lookups_per_iteration() / self.symbols_per_iteration / coalescing_factor
        )
        bytes_per_lookup = self.useful_bytes_per_lookup + self.scan_bytes_per_lookup
        # Internal-memory misses force a second external access (FindeR).
        external_factor = 1.0
        if self.internal_memory_gb > 0 and dataset_size_gb > self.internal_memory_gb:
            external_factor = 1.0 + (1.0 - self.internal_memory_gb / dataset_size_gb)

        bytes_per_base = bytes_per_lookup * lookups_per_base * external_factor
        commands_per_base = (
            self.commands_per_lookup
            * self.bus_conflict_factor
            * lookups_per_base
            * external_factor
        )

        # System-wide bounds in bases per DRAM cycle.
        data_bound = dram.channels * dram.bus_bytes_per_cycle / max(bytes_per_base, 1e-9)
        command_bound = dram.channels / max(commands_per_base, 1e-9)
        latency_bound = (
            self.outstanding_lookups
            / max(self.row_cycle_cycles, 1)
            / max(lookups_per_base * external_factor, 1e-9)
        )

        bases_per_cycle = min(data_bound, command_bound, latency_bound)
        bases_per_second = bases_per_cycle * dram.clock_mhz * 1e6
        fetched = self.fetched_bytes_per_lookup
        if fetched is None:
            fetched = bytes_per_lookup
        fetched_per_base = fetched * lookups_per_base * external_factor
        utilization = min(
            1.0,
            bases_per_cycle * fetched_per_base / (dram.channels * dram.bus_bytes_per_cycle),
        )
        return SearchThroughput(
            name=self.name,
            bases_processed=int(bases_per_second),
            seconds=1.0,
            accelerator_power_w=self.device_power_w,
            dram_power_w=DRAM_SYSTEM_POWER_W,
            bandwidth_utilization=utilization,
        )

    def run_stream(
        self,
        windows: "Iterable[WindowedBatch]",
        dram: DDR4Config | None = None,
        dataset_size_gb: float = 128.0,
    ) -> SearchThroughput:
        """Throughput when the device consumes a windowed request stream.

        The stream-consuming twin of :meth:`throughput`: the flushes'
        issued/unique counts set the coalescing factor, so a wider
        scheduling window (more duplicates merged per flush) raises every
        lookup-bound rate.  A stream of W=1 flushes with no cross-step
        duplicates degenerates to :meth:`throughput` exactly.
        """
        return self.throughput(
            dram,
            dataset_size_gb=dataset_size_gb,
            coalescing_factor=stream_merge_ratio(windows),
        )


def gpu_model(scan_entries_per_lookup: float = 300.0) -> AcceleratorModel:
    """Tesla P100 running LISA-21.

    The GPU keeps thousands of lookups in flight and streams whole rows, so
    it is data-bus bound; its learned-index error forces it to scan extra
    IP-BWT entries per lookup, which is the traffic that caps it well below
    the multi-symbol ideal.
    """
    scan_bytes = scan_entries_per_lookup * IPBWT_ENTRY_BYTES
    return AcceleratorModel(
        name="GPU",
        algorithm="LISA-21",
        symbols_per_iteration=21,
        useful_bytes_per_lookup=64.0,
        scan_bytes_per_lookup=scan_bytes,
        outstanding_lookups=2048,
        commands_per_lookup=2.0,
        row_cycle_cycles=52,
        device_power_w=182.0,
        fetched_bytes_per_lookup=scan_bytes + 64.0,
    )


def fpga_model() -> AcceleratorModel:
    """Stratix-V FPGA running conventional 2-step FM-Index.

    A handful of pipelined search engines; latency-bound on dependent
    close-page accesses.
    """
    return AcceleratorModel(
        name="FPGA",
        algorithm="FM-2",
        symbols_per_iteration=2,
        useful_bytes_per_lookup=64.0,
        outstanding_lookups=4,
        commands_per_lookup=3.0,
        row_cycle_cycles=52,
        device_power_w=11.0,
    )


def asic_model() -> AcceleratorModel:
    """28 nm ASIC running conventional 1-step FM-Index.

    Few search engines and pointer-chasing FM-1 accesses leave it
    latency-bound with the lowest bandwidth utilisation of the line-up.
    """
    return AcceleratorModel(
        name="ASIC",
        algorithm="FM-1",
        symbols_per_iteration=1,
        useful_bytes_per_lookup=64.0,
        outstanding_lookups=3,
        commands_per_lookup=3.0,
        row_cycle_cycles=52,
        device_power_w=9.4,
    )


def medal_model() -> AcceleratorModel:
    """MEDAL DIMM PIM: chip-level parallelism, shared address bus.

    Each chip independently activates a 1/16 partial row, so MEDAL has
    plenty of concurrency and small per-lookup payloads; what limits it is
    the shared 17-bit address bus, modelled with a bus-conflict factor that
    inflates the command slots each lookup effectively occupies (Fig. 7).
    The fetched bytes count the partial row each chip opens and reads
    near-data.
    """
    return AcceleratorModel(
        name="MEDAL",
        algorithm="FM-1",
        symbols_per_iteration=1,
        useful_bytes_per_lookup=8.0,
        outstanding_lookups=512,
        commands_per_lookup=3.0,
        bus_conflict_factor=7.85,
        row_cycle_cycles=52,
        chip_level_parallelism=True,
        device_power_w=0.011,
        fetched_bytes_per_lookup=128.0,
    )


def finder_model() -> AcceleratorModel:
    """FindeR ReRAM PIM: FM-1 compute in 2.6 GB internal arrays.

    Buckets that do not fit the internal ReRAM arrays are fetched from
    external DRAM, which roughly doubles the external traffic per lookup
    on the large conifer genomes.
    """
    return AcceleratorModel(
        name="FindeR",
        algorithm="FM-1",
        symbols_per_iteration=1,
        useful_bytes_per_lookup=64.0,
        outstanding_lookups=16,
        commands_per_lookup=3.0,
        row_cycle_cycles=52,
        device_power_w=0.28,
        internal_memory_gb=2.6,
    )


def exma_analytic_model(
    mean_error_entries: float = 182.0, symbols_per_iteration: int = 15
) -> AcceleratorModel:
    """EXMA as an analytic model, for Table II / Fig. 21 comparisons.

    The detailed trace-driven model lives in
    :class:`repro.accel.exma_accelerator.ExmaAccelerator`; this analytic
    twin exists so the cross-accelerator table can be produced with one
    consistent methodology.  Each lookup streams the predicted increment
    line plus the MTL-error linear-search traffic out of open rows, which
    makes EXMA data-bus bound at high utilisation — pass the *measured*
    MTL error to couple the table to the scaled experiments.
    """
    scan_bytes = mean_error_entries * INCREMENT_ENTRY_BYTES
    return AcceleratorModel(
        name="EXMA",
        algorithm=f"EXMA-{symbols_per_iteration}",
        symbols_per_iteration=symbols_per_iteration,
        useful_bytes_per_lookup=192.0,
        scan_bytes_per_lookup=scan_bytes,
        outstanding_lookups=512,
        commands_per_lookup=2.0,
        row_cycle_cycles=24,
        device_power_w=0.89,
        fetched_bytes_per_lookup=scan_bytes + 192.0,
    )


def standard_accelerator_suite(mean_exma_error: float = 182.0) -> list[AcceleratorModel]:
    """The Table II line-up: GPU, FPGA, ASIC, MEDAL, FindeR and EXMA."""
    return [
        gpu_model(),
        fpga_model(),
        asic_model(),
        medal_model(),
        finder_model(),
        exma_analytic_model(mean_error_entries=mean_exma_error),
    ]
