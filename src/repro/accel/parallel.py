"""Epoch-parallel accelerator replay over a persistent worker pool.

PR 4 made every flush of a windowed stream an *independent scheduling
epoch* — fresh queue/cache/DRAM state per flush — and PR 5 made each
epoch columnar.  That leaves flushes embarrassingly parallel: replaying
flush *i* reads only the accelerator's immutable configuration (table,
index, layout), never state left behind by flush *i-1*.  This module
exploits that by fanning flush epochs across the same persistent
:class:`~repro.engine.sharded.BackendWorkerPool` the sharded search
engine uses, with the accelerator itself as the pool's backend — so the
process executor ships the table/index/config **once** per worker via
the pool initializer, and each submitted call carries only its flush.

Results are gathered in flush order and reassembled into the same
:class:`~repro.accel.exma_accelerator.WindowedRunResult` the serial path
builds, **field-for-field identical** (the PR 4/5 exact-equivalence
contract extends unchanged: identical integer/float arithmetic runs per
epoch regardless of which worker runs it).

Scaling notes: with the *process* executor the epochs escape the GIL
outright.  With the *thread* executor the replay scales only as far as
the per-epoch code releases the GIL — mostly numpy kernels, plus the
DRAM/cache scalar recurrences when the optional numba fast paths
(:mod:`repro.hw.jit`) are compiled (``nogil=True``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..engine.sharded import (
    EXECUTORS,
    BackendWorkerPool,
    default_executor,
    default_replay_workers,
)
from ..engine.window import WindowedBatch
from ..exma.search import OccRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .exma_accelerator import (
        AcceleratorRunResult,
        ExmaAccelerator,
        WindowedRunResult,
    )

__all__ = ["ParallelReplay", "replay_epoch"]


def replay_epoch(
    accelerator: "ExmaAccelerator",
    name: str,
    flushed: "WindowedBatch | Sequence[OccRequest]",
) -> "AcceleratorRunResult":
    """Replay one flush epoch on *accelerator* (the pool dispatch target).

    Module-level so it is picklable by reference for the process
    executor.  Mirrors exactly what the serial ``run_stream`` loop does
    with each item: a :class:`~repro.engine.window.WindowedBatch` goes
    through :meth:`~repro.accel.exma_accelerator.ExmaAccelerator
    .replay_flush` (issued-count base accounting), a plain request
    sequence through :meth:`~repro.accel.exma_accelerator
    .ExmaAccelerator.run`.
    """
    if isinstance(flushed, WindowedBatch):
        return accelerator.replay_flush(flushed, name=name)
    return accelerator.run(flushed, name=name)


class ParallelReplay:
    """A persistent flush-replay pool bound to one accelerator.

    Owns a :class:`~repro.engine.sharded.BackendWorkerPool` whose backend
    is the accelerator (created lazily on the first parallel call, reused
    across every stream), and offers the two replay shapes its consumers
    need: :meth:`run_stream` fans a whole window stream across the pool
    and reassembles the serial-identical
    :class:`~repro.accel.exma_accelerator.WindowedRunResult`;
    :meth:`replay_flush` offloads a single epoch — the serving layer's
    batcher threads each block on their own flush, so concurrent flushes
    from different batchers overlap in the pool.  Usable as a context
    manager; :meth:`close` is idempotent.

    Args:
        accelerator: the accelerator every worker replays on (picklable
            for the process executor).
        workers: pool size; defaults to the
            ``REPRO_DEFAULT_REPLAY_WORKERS`` environment toggle.
        executor: ``"thread"`` or ``"process"``; defaults to the
            ``REPRO_DEFAULT_EXECUTOR`` environment toggle.
    """

    def __init__(
        self,
        accelerator: "ExmaAccelerator",
        workers: int | None = None,
        executor: str | None = None,
    ) -> None:
        workers = default_replay_workers() if workers is None else int(workers)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        executor = default_executor() if executor is None else executor
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; available: {', '.join(EXECUTORS)}"
            )
        self._accelerator = accelerator
        self._workers = workers
        self._executor = executor
        self._pool: BackendWorkerPool | None = None

    @property
    def accelerator(self) -> "ExmaAccelerator":
        """The accelerator the replay workers are bound to."""
        return self._accelerator

    @property
    def workers(self) -> int:
        """Configured replay-worker count."""
        return self._workers

    @property
    def executor(self) -> str:
        """Executor kind (``"thread"`` or ``"process"``)."""
        return self._executor

    @property
    def active(self) -> bool:
        """Whether the underlying pool has been created (and not closed)."""
        return self._pool is not None and self._pool.active

    def _ensure_pool(self) -> BackendWorkerPool:
        self._pool = BackendWorkerPool.ensure(
            self._pool, self._accelerator, self._executor, self._workers
        )
        return self._pool

    def replay_flush(
        self,
        flushed: "WindowedBatch | Sequence[OccRequest]",
        name: str = "EXMA",
    ) -> "AcceleratorRunResult":
        """Replay one flush epoch, offloaded to the pool when parallel.

        With ``workers == 1`` the epoch runs inline (no pool exists).
        Otherwise it always crosses to a pool worker — even though a lone
        flush gains nothing by itself, concurrent callers (the serving
        batcher threads) overlap in the pool, and with the process
        executor the replay leaves the GIL of the submitting process.
        """
        if self._workers == 1:
            return replay_epoch(self._accelerator, name, flushed)
        return self._ensure_pool().submit(replay_epoch, flushed, name).result()

    def run_stream(
        self,
        windows: "Iterable[WindowedBatch | Sequence[OccRequest]]",
        name: str = "EXMA",
    ) -> "WindowedRunResult":
        """Fan a window stream's flush epochs across the pool, in order.

        Materializes the stream (the epochs must all be known to overlap
        them), dispatches each flush, and gathers results in flush order
        — the returned :class:`~repro.accel.exma_accelerator
        .WindowedRunResult` is field-for-field identical to serial
        :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.run_stream`
        over the same stream.  Zero or one flush runs inline.
        """
        from .exma_accelerator import WindowedRunResult

        epochs: list[WindowedBatch | Sequence[OccRequest]] = []
        batches = 0
        issued = 0
        for flushed in windows:
            if isinstance(flushed, WindowedBatch):
                batches += flushed.batches
                issued += flushed.issued
            else:
                batches += 1
                issued += len(flushed)
            epochs.append(flushed)
        if self._workers == 1 or len(epochs) <= 1:
            flushes = [replay_epoch(self._accelerator, name, epoch) for epoch in epochs]
        else:
            flushes = self._ensure_pool().map_shards(replay_epoch, epochs, name)
        return WindowedRunResult(
            name=name, flushes=flushes, capacity=None, batches=batches, issued=issued
        )

    def close(self) -> None:
        """Shut the worker pool down (idempotent; recreated if used again)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def __enter__(self) -> "ParallelReplay":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
