"""Epoch-parallel accelerator replay over a persistent worker pool.

PR 4 made every flush of a windowed stream an *independent scheduling
epoch* — fresh queue/cache/DRAM state per flush — and PR 5 made each
epoch columnar.  That leaves flushes embarrassingly parallel: replaying
flush *i* reads only the accelerator's immutable configuration (table,
index, layout), never state left behind by flush *i-1*.  This module
exploits that by fanning flush epochs across the same persistent
:class:`~repro.engine.sharded.BackendWorkerPool` the sharded search
engine uses, with the accelerator itself as the pool's backend — so the
process executor ships the table/index/config **once** per worker via
the pool initializer, and each submitted call carries only its flush.

Results are gathered in flush order and reassembled into the same
:class:`~repro.accel.exma_accelerator.WindowedRunResult` the serial path
builds, **field-for-field identical** (the PR 4/5 exact-equivalence
contract extends unchanged: identical integer/float arithmetic runs per
epoch regardless of which worker runs it).

Scaling notes: with the *process* executor the epochs escape the GIL
outright.  With the *thread* executor the replay scales only as far as
the per-epoch code releases the GIL — mostly numpy kernels, plus the
DRAM/cache scalar recurrences when the optional numba fast paths
(:mod:`repro.hw.jit`) are compiled (``nogil=True``).
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING, Iterable, Sequence

from ..engine.sharded import (
    EXECUTORS,
    BackendWorkerPool,
    default_executor,
    default_replay_workers,
)
from ..engine.window import WindowedBatch
from ..exma.search import OccRequest
from ..faults import SITE_SUBMIT, FaultInjector, InjectedFault

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .exma_accelerator import (
        AcceleratorRunResult,
        ExmaAccelerator,
        WindowedRunResult,
    )

__all__ = ["ParallelReplay", "replay_epoch"]


def replay_epoch(
    accelerator: "ExmaAccelerator",
    name: str,
    flushed: "WindowedBatch | Sequence[OccRequest]",
) -> "AcceleratorRunResult":
    """Replay one flush epoch on *accelerator* (the pool dispatch target).

    Module-level so it is picklable by reference for the process
    executor.  Mirrors exactly what the serial ``run_stream`` loop does
    with each item: a :class:`~repro.engine.window.WindowedBatch` goes
    through :meth:`~repro.accel.exma_accelerator.ExmaAccelerator
    .replay_flush` (issued-count base accounting), a plain request
    sequence through :meth:`~repro.accel.exma_accelerator
    .ExmaAccelerator.run`.
    """
    if isinstance(flushed, WindowedBatch):
        return accelerator.replay_flush(flushed, name=name)
    return accelerator.run(flushed, name=name)


def _exit_worker(*_args) -> None:  # pragma: no cover - runs in a pool worker
    """Pool dispatch target of an injected *kill* fault: take this
    process-pool worker down hard, breaking the executor."""
    os._exit(17)


class ParallelReplay:
    """A persistent flush-replay pool bound to one accelerator.

    Owns a :class:`~repro.engine.sharded.BackendWorkerPool` whose backend
    is the accelerator (created lazily on the first parallel call, reused
    across every stream), and offers the two replay shapes its consumers
    need: :meth:`run_stream` fans a whole window stream across the pool
    and reassembles the serial-identical
    :class:`~repro.accel.exma_accelerator.WindowedRunResult`;
    :meth:`replay_flush` offloads a single epoch — the serving layer's
    batcher threads each block on their own flush, so concurrent flushes
    from different batchers overlap in the pool.  Usable as a context
    manager; :meth:`close` is idempotent.

    Args:
        accelerator: the accelerator every worker replays on (picklable
            for the process executor).
        workers: pool size; defaults to the
            ``REPRO_DEFAULT_REPLAY_WORKERS`` environment toggle.
        executor: ``"thread"`` or ``"process"``; defaults to the
            ``REPRO_DEFAULT_EXECUTOR`` environment toggle.
        faults: optional :class:`~repro.faults.FaultInjector` probed at
            ``pool.submit`` before each pool crossing (chaos testing of
            the degradation ladder; ``None`` — the default — costs the
            fault-free path nothing).
        timeout: default gather timeout (seconds) for pool submissions;
            ``None`` waits indefinitely.  A timed-out or broken pool
            walks :class:`~repro.engine.sharded.BackendWorkerPool`'s
            ladder: rebuilt once, then serial replay with a warn-once —
            the replayed results are identical either way.
    """

    def __init__(
        self,
        accelerator: "ExmaAccelerator",
        workers: int | None = None,
        executor: str | None = None,
        faults: FaultInjector | None = None,
        timeout: float | None = None,
    ) -> None:
        workers = default_replay_workers() if workers is None else int(workers)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        executor = default_executor() if executor is None else executor
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; available: {', '.join(EXECUTORS)}"
            )
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be > 0 (or None)")
        self._accelerator = accelerator
        self._workers = workers
        self._executor = executor
        self._faults = faults
        self._timeout = timeout
        self._pool: BackendWorkerPool | None = None

    @property
    def accelerator(self) -> "ExmaAccelerator":
        """The accelerator the replay workers are bound to."""
        return self._accelerator

    @property
    def workers(self) -> int:
        """Configured replay-worker count."""
        return self._workers

    @property
    def executor(self) -> str:
        """Executor kind (``"thread"`` or ``"process"``)."""
        return self._executor

    @property
    def active(self) -> bool:
        """Whether the underlying pool has been created (and not closed)."""
        return self._pool is not None and self._pool.active

    @property
    def degraded(self) -> bool:
        """Whether the pool has fallen back to serial in-process replay."""
        return self._pool is not None and self._pool.degraded

    def _ensure_pool(self) -> BackendWorkerPool:
        self._pool = BackendWorkerPool.ensure(
            self._pool, self._accelerator, self._executor, self._workers
        )
        return self._pool

    def _inject_submit_fault(self) -> None:
        """Probe the ``pool.submit`` injection site before a pool crossing.

        A *kill* fault takes down a live process-pool worker with
        ``os._exit`` (breaking the executor so the caller's degradation
        ladder engages); on a thread pool — where a worker cannot be
        killed — it degrades to a ``raise`` on the submitting side.
        """
        if self._faults is None:
            return
        spec = self._faults.decide(SITE_SUBMIT)
        if spec is None:
            return
        if spec.kind == "delay":
            time.sleep(spec.delay_s)
            return
        if spec.kind == "kill" and self._workers > 1 and self._executor == "process":
            pool = self._ensure_pool()
            if not pool.degraded:
                try:
                    pool.submit(_exit_worker, None)
                except Exception:  # noqa: BLE001 - pool already broken
                    # A previous kill already broke the executor and no
                    # call observed it yet: the submit that follows this
                    # probe will, and walks the degradation ladder.
                    pass
            return
        raise InjectedFault(SITE_SUBMIT, self._faults.probes[SITE_SUBMIT] - 1)

    def replay_flush(
        self,
        flushed: "WindowedBatch | Sequence[OccRequest]",
        name: str = "EXMA",
    ) -> "AcceleratorRunResult":
        """Replay one flush epoch, offloaded to the pool when parallel.

        With ``workers == 1`` the epoch runs inline (no pool exists).
        Otherwise it always crosses to a pool worker — even though a lone
        flush gains nothing by itself, concurrent callers (the serving
        batcher threads) overlap in the pool, and with the process
        executor the replay leaves the GIL of the submitting process.
        A broken or wedged pool is absorbed by the rebuild-once /
        serial-fallback ladder (:meth:`~repro.engine.sharded
        .BackendWorkerPool.run_one`), so the caller always gets the
        field-for-field identical epoch result.
        """
        self._inject_submit_fault()
        if self._workers == 1:
            return replay_epoch(self._accelerator, name, flushed)
        return self._ensure_pool().run_one(
            replay_epoch, flushed, name, timeout=self._timeout
        )

    def run_stream(
        self,
        windows: "Iterable[WindowedBatch | Sequence[OccRequest]]",
        name: str = "EXMA",
    ) -> "WindowedRunResult":
        """Fan a window stream's flush epochs across the pool, in order.

        Materializes the stream (the epochs must all be known to overlap
        them), dispatches each flush, and gathers results in flush order
        — the returned :class:`~repro.accel.exma_accelerator
        .WindowedRunResult` is field-for-field identical to serial
        :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.run_stream`
        over the same stream.  Zero or one flush runs inline.
        """
        from .exma_accelerator import WindowedRunResult

        epochs: list[WindowedBatch | Sequence[OccRequest]] = []
        batches = 0
        issued = 0
        for flushed in windows:
            if isinstance(flushed, WindowedBatch):
                batches += flushed.batches
                issued += flushed.issued
            else:
                batches += 1
                issued += len(flushed)
            epochs.append(flushed)
        if self._workers == 1 or len(epochs) <= 1:
            flushes = [replay_epoch(self._accelerator, name, epoch) for epoch in epochs]
        else:
            flushes = self._ensure_pool().map_shards(
                replay_epoch, epochs, name, timeout=self._timeout
            )
        return WindowedRunResult(
            name=name, flushes=flushes, capacity=None, batches=batches, issued=issued
        )

    def close(self) -> None:
        """Shut the worker pool down (idempotent; recreated if used again)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def __enter__(self) -> "ParallelReplay":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
