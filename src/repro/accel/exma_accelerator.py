"""The EXMA accelerator model: pipeline ❶–❼ of Fig. 14.

The accelerator receives FM-Index requests — (k-mer, pos) pairs — from the
host, buffers them in its scheduling queue, schedules them (FR-FCFS or
2-stage), looks bases up in the base cache, index nodes up in the index
cache, runs MTL inference on the PE arrays, fetches the predicted increment
(plus the linear-search overshoot when the prediction is wrong) from DRAM,
and finally reports the Occ result back to the host.  The DMA controller
routes every DRAM access and asks the memory controller to keep rows open
when the dynamic page policy applies.

The model replays a request stream produced by
:meth:`repro.exma.search.ExmaSearch.request_stream` against the configured
cache/CAM/PE/DRAM models and returns throughput, bandwidth utilisation,
cache hit rates and energy — the quantities behind Figs. 18, 20, 21 and 22.

The replay itself is **columnar**: :meth:`ExmaAccelerator.run` consumes the
packed ``(k-mer, pos)`` arrays that the engine's
:class:`~repro.engine.coalesce.RequestStream` and the window's
:class:`~repro.engine.window.WindowedBatch` already carry, schedules them
with array sorts, simulates both caches set-grouped, expands the increment
fetches into a structured DRAM trace and replays each channel's columns —
no per-request Python objects anywhere on the hot path.
:meth:`ExmaAccelerator.run_reference` keeps the original request-at-a-time
object pipeline as the oracle the equivalence suite replays against; both
paths produce field-for-field identical :class:`AcceleratorRunResult`\\ s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..engine.coalesce import RequestStream
from ..engine.window import CoalescingWindow, WindowedBatch
from ..exma.chain import compression_ratio as chain_ratio
from ..exma.mtl_index import MTLIndex
from ..exma.search import OccRequest
from ..exma.table import ExmaTable
from ..hw.cache import CacheStats, SetAssociativeCache, simulate_lru_hits
from ..hw.dram import BURST_BYTES, DRAMModel, DRAMStats, MemoryRequest, MemoryTrace
from ..hw.energy import DRAM_SYSTEM_POWER_W, EnergyLedger
from ..hw.pe_array import InferenceEngine
from ..hw.scheduler import (
    FrFcfsScheduler,
    TwoStageScheduler,
    keep_open_flags,
    pair_requests_by_kmer,
    scheduled_orders,
)
from .config import ExmaAcceleratorConfig
from .metrics import SearchThroughput

#: Bytes per base-array entry (base pointer plus the k-mer's increment count).
BASE_ENTRY_BYTES = 8

#: Bytes per increment entry before compression.
INCREMENT_ENTRY_BYTES = 4

#: Bytes occupied by one shared MTL node (8-bit quantised parameters).
SHARED_NODE_BYTES = 64

#: Bytes occupied by one per-k-mer leaf model.
LEAF_NODE_BYTES = 8


@dataclass
class AcceleratorRunResult:
    """Everything measured while replaying one request stream."""

    name: str
    requests: int
    bases_processed: int
    total_cycles: int
    dram_cycles: int
    inference_cycles: int
    seconds: float
    base_cache: CacheStats
    index_cache: CacheStats
    dram: DRAMStats
    energy: EnergyLedger
    accelerator_energy_j: float
    dram_energy_j: float
    increment_entries_read: int = 0
    dram_requests: int = 0
    per_channel: list[DRAMStats] = field(default_factory=list)

    @property
    def throughput(self) -> SearchThroughput:
        """Convert to the common throughput/efficiency record."""
        seconds = max(self.seconds, 1e-12)
        accel_power = self.accelerator_energy_j / seconds
        return SearchThroughput(
            name=self.name,
            bases_processed=self.bases_processed,
            seconds=seconds,
            accelerator_power_w=accel_power,
            dram_power_w=DRAM_SYSTEM_POWER_W,
            bandwidth_utilization=self.dram.bandwidth_utilization,
            row_hit_rate=self.dram.row_hit_rate,
        )


@dataclass
class WindowedRunResult:
    """One streamed run: per-flush accelerator results plus the aggregate.

    Each flushed :class:`~repro.engine.window.WindowedBatch` is one
    scheduling epoch — the accelerator replays its merged request stream
    with fresh queue/cache state and accounts cycles and energy for that
    flush alone (``flushes``), so a window capacity of 1 is byte-identical
    to running :meth:`ExmaAccelerator.run` on each batch's coalesced
    stream.  The aggregate properties sum the epochs; the stream's wall
    time is the sum because consecutive windows are dependent (the next
    window's requests arrive as the previous one drains).
    """

    name: str
    flushes: list[AcceleratorRunResult]
    #: Window capacity W the stream was merged with (``None`` when the
    #: caller supplied pre-merged flushes of unknown capacity).
    capacity: int | None = None
    #: Query batches merged across all windows.
    batches: int = 0
    #: Requests entering the window stage (post per-batch coalescing).
    issued: int = 0

    @property
    def windows(self) -> int:
        """Number of flushed windows replayed."""
        return len(self.flushes)

    @property
    def requests(self) -> int:
        """Requests surviving the window merge (scheduled on the CAM)."""
        return sum(result.requests for result in self.flushes)

    @property
    def merged(self) -> int:
        """Requests eliminated by the cross-batch merge."""
        return self.issued - self.requests

    @property
    def merge_ratio(self) -> float:
        """Issued-to-scheduled request ratio (1.0 means nothing merged)."""
        if self.requests == 0:
            return 1.0
        return self.issued / self.requests

    @property
    def bases_processed(self) -> int:
        return sum(result.bases_processed for result in self.flushes)

    @property
    def total_cycles(self) -> int:
        return sum(result.total_cycles for result in self.flushes)

    @property
    def dram_cycles(self) -> int:
        return sum(result.dram_cycles for result in self.flushes)

    @property
    def inference_cycles(self) -> int:
        return sum(result.inference_cycles for result in self.flushes)

    @property
    def seconds(self) -> float:
        return sum(result.seconds for result in self.flushes)

    @property
    def accelerator_energy_j(self) -> float:
        return sum(result.accelerator_energy_j for result in self.flushes)

    @property
    def dram_energy_j(self) -> float:
        return sum(result.dram_energy_j for result in self.flushes)

    @property
    def increment_entries_read(self) -> int:
        return sum(result.increment_entries_read for result in self.flushes)

    @property
    def dram_requests(self) -> int:
        return sum(result.dram_requests for result in self.flushes)

    @property
    def bandwidth_utilization(self) -> float:
        """DRAM-cycle-weighted mean bandwidth utilisation across flushes."""
        weight = sum(result.dram_cycles for result in self.flushes)
        if weight == 0:
            return 0.0
        return (
            sum(
                result.dram.bandwidth_utilization * result.dram_cycles
                for result in self.flushes
            )
            / weight
        )

    @property
    def row_hit_rate(self) -> float:
        """DRAM-request-weighted mean row hit rate across flushes."""
        weight = sum(result.dram.requests for result in self.flushes)
        if weight == 0:
            return 0.0
        return (
            sum(result.dram.row_hit_rate * result.dram.requests for result in self.flushes)
            / weight
        )

    @property
    def throughput(self) -> SearchThroughput:
        """Aggregate throughput/efficiency record of the whole stream."""
        seconds = max(self.seconds, 1e-12)
        return SearchThroughput(
            name=self.name,
            bases_processed=self.bases_processed,
            seconds=seconds,
            accelerator_power_w=self.accelerator_energy_j / seconds,
            dram_power_w=DRAM_SYSTEM_POWER_W,
            bandwidth_utilization=self.bandwidth_utilization,
            row_hit_rate=self.row_hit_rate,
        )


class ExmaAccelerator:
    """Replay FM-Index request streams on the EXMA accelerator model.

    Args:
        table: the EXMA table resident in DRAM.
        index: the MTL index; ``None`` disables learned lookups (every Occ
            becomes an exact scan, as in the software-only EXMA-15 row).
        config: accelerator configuration (Table I defaults).
    """

    def __init__(
        self,
        table: ExmaTable,
        index: MTLIndex | None,
        config: ExmaAcceleratorConfig | None = None,
    ) -> None:
        self._table = table
        self._index = index
        self._config = config or ExmaAcceleratorConfig()
        self._engine = InferenceEngine(self._config.pe_config())
        self._chain_ratio = self._effective_chain_ratio()
        self._layout = self._compute_layout()
        if index is not None:
            self._modelled_lookup = index.modelled_lookup(table.kmer_count)
            self._bucket_lookup = index.bucket_lookup(table.kmer_count)
        else:
            self._modelled_lookup = np.zeros(table.kmer_count, dtype=bool)
            self._bucket_lookup = None
        #: Persistent epoch-replay driver (:class:`~repro.accel.parallel
        #: .ParallelReplay`), created lazily by the first parallel
        #: ``run_stream`` and swapped when the knobs change.
        self._replay = None

    # ------------------------------------------------------------------ #
    # Parallel replay pool lifecycle
    # ------------------------------------------------------------------ #

    @property
    def replay(self):
        """The persistent parallel-replay driver, or ``None`` (serial)."""
        return self._replay

    @property
    def table(self) -> ExmaTable:
        """The EXMA table this accelerator replays against."""
        return self._table

    @property
    def index(self) -> "MTLIndex | None":
        """The MTL index, or ``None`` (exact Occ resolution)."""
        return self._index

    @property
    def config(self) -> ExmaAcceleratorConfig:
        """The accelerator configuration (needed to clone design points)."""
        return self._config

    @staticmethod
    def _resolve_replay_workers(replay_workers: "int | None") -> int:
        """Explicit knob wins verbatim; the env default is hardware-clamped.

        Mirrors the search side's split between the forced
        :class:`~repro.engine.sharded.ShardedQueryEngine` (runs exactly
        the split it was asked for — what the equivalence suite relies
        on) and the adaptive default path (``REPRO_DEFAULT_REPLAY_WORKERS``
        clamped by :func:`~repro.engine.sharded.effective_shards`, so a
        blanket env toggle degrades to serial on a single-core host
        unless ``REPRO_SHARD_OVERSUBSCRIBE`` lifts the clamp).
        """
        if replay_workers is None:
            from ..engine.sharded import default_replay_workers, effective_shards

            return effective_shards(default_replay_workers())
        workers = int(replay_workers)
        if workers < 1:
            raise ValueError("replay_workers must be >= 1")
        return workers

    def _ensure_replay(self, workers: int, executor: "str | None"):
        """Reuse the owned replay driver, swapping it when knobs change."""
        from ..engine.sharded import default_executor
        from .parallel import ParallelReplay

        executor = default_executor() if executor is None else executor
        replay = self._replay
        if replay is not None and (
            replay.workers != workers or replay.executor != executor
        ):
            replay.close()
            replay = None
        if replay is None:
            replay = ParallelReplay(self, workers=workers, executor=executor)
            self._replay = replay
        return replay

    def close(self) -> None:
        """Release the parallel-replay pool (no-op when never created)."""
        replay, self._replay = self._replay, None
        if replay is not None:
            replay.close()

    def __enter__(self) -> "ExmaAccelerator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __getstate__(self) -> dict:
        # Worker pools never cross process boundaries: a process-pool
        # replay worker receives the accelerator via the pool initializer
        # and must not drag the parent's executor (unpicklable) with it.
        state = self.__dict__.copy()
        state["_replay"] = None
        return state

    # ------------------------------------------------------------------ #
    # Layout and compression
    # ------------------------------------------------------------------ #

    def _effective_chain_ratio(self) -> float:
        """Fraction of increment bytes that still move after CHAIN."""
        if not self._config.use_chain_compression:
            return 1.0
        increments = self._table.increments
        if increments.size == 0:
            return 1.0
        sample = increments[: min(increments.size, 65536)]
        return chain_ratio(sample)

    def _compute_layout(self) -> dict[str, int]:
        """Byte offsets of the base array, index nodes and increments."""
        base_region = self._table.kmer_count * BASE_ENTRY_BYTES
        if self._index is not None:
            index_region = (
                self._index.shared_node_count * SHARED_NODE_BYTES
                + len(self._index.modelled_kmers) * LEAF_NODE_BYTES
            )
        else:
            index_region = 0
        return {
            "base_offset": 0,
            "index_offset": base_region,
            "increment_offset": base_region + index_region,
        }

    def _base_address(self, packed_kmer: int) -> int:
        return self._layout["base_offset"] + packed_kmer * BASE_ENTRY_BYTES

    def _index_node_address(self, node_id: int) -> int:
        return self._layout["index_offset"] + node_id * SHARED_NODE_BYTES

    def _increment_address(self, packed_kmer: int, entry_index: int) -> int:
        base = self._table.base(packed_kmer)
        if base >= self._table.max_sentinel:
            base = 0
        entry_bytes = INCREMENT_ENTRY_BYTES * self._chain_ratio
        return self._layout["increment_offset"] + int((base + entry_index) * entry_bytes)

    # ------------------------------------------------------------------ #
    # Main replay loop
    # ------------------------------------------------------------------ #

    def run(
        self,
        requests: "Sequence[OccRequest]",
        name: str = "EXMA",
        bases_processed: int | None = None,
    ) -> AcceleratorRunResult:
        """Replay *requests* columnar and return the measured statistics.

        The whole replay stays array-shaped: scheduling orders come from
        :func:`~repro.hw.scheduler.scheduled_orders`, both caches are
        simulated over their full access sequences with
        :func:`~repro.hw.cache.simulate_lru_hits`, Occ resolution and MTL
        prediction run grouped by k-mer, the increment fetches expand into
        a :class:`~repro.hw.dram.MemoryTrace` with one row-span
        ``repeat``/``arange`` pass, and every DRAM channel consumes its
        column shard.  Field-for-field identical to
        :meth:`run_reference` (the request-at-a-time object model) by the
        oracle suite's contract.

        Args:
            requests: the Occ request stream to replay — the engine's
                columnar :class:`~repro.engine.coalesce.RequestStream`, a
                flushed :class:`~repro.engine.window.WindowedBatch` (both
                consumed without materialising request objects), or any
                :class:`~repro.exma.search.OccRequest` sequence.
            bases_processed: DNA bases the stream represents.  Defaults to
                the pre-coalescing estimate ``len(requests) * k / 2``; pass
                the issued-request count explicitly when replaying a
                coalesced stream, otherwise throughput is understated by
                the coalescing factor.
        """
        config = self._config
        kmers, positions = _request_columns(requests)
        count = int(kmers.size)
        ledger = EnergyLedger()
        row_bytes = config.dram_config().row_bytes
        cam_entries = config.cam_entries

        stage1, stage2 = scheduled_orders(
            kmers, positions, cam_entries, config.two_stage_scheduling
        )

        # Stage 1: base-cache accesses in per-batch k-mer order.  The
        # cache's behaviour depends only on its own access sequence, so
        # the whole run's stage-1 stream is simulated in one call even
        # though the trace interleaves stage-1 and stage-2 per CAM batch.
        base_addresses = (
            self._layout["base_offset"] + kmers[stage1] * BASE_ENTRY_BYTES
        )
        base_hits = simulate_lru_hits(
            base_addresses,
            config.base_cache_bytes,
            config.cache_line_bytes,
            config.base_cache_ways,
        )
        base_miss = ~base_hits

        # Stage 2 columns, in per-batch pos order.
        stage2_kmers = kmers[stage2]
        stage2_positions = positions[stage2]
        keep_open = keep_open_flags(stage2_kmers, cam_entries)
        slots = np.arange(count, dtype=np.int64)
        streams = slots % cam_entries
        modelled = self._modelled_lookup[stage2_kmers] if count else np.zeros(0, bool)
        modelled_slots = np.flatnonzero(modelled)

        true_index = self._table.occ_batch(stage2_kmers, stage2_positions)
        predicted = np.empty(count, dtype=np.int64)
        entries = np.empty(count, dtype=np.int64)
        if modelled_slots.size:
            assert self._index is not None
            predicted[modelled] = self._index.predict_many(
                stage2_kmers[modelled], stage2_positions[modelled]
            )
            entries[modelled] = 2 + np.abs(true_index[modelled] - predicted[modelled])
        exact = ~modelled
        if count and exact.any():
            frequency = self._table.frequency_batch(stage2_kmers[exact])
            exact_entries = np.maximum(
                1, np.minimum(frequency, true_index[exact] + 1)
            )
            entries[exact] = exact_entries
            predicted[exact] = np.maximum(0, true_index[exact] - exact_entries + 1)

        # Index-cache accesses: the shared bucket node then the leaf, per
        # modelled request, again simulated as one sequence.
        if modelled_slots.size:
            node_ids = np.empty(modelled_slots.size * 2, dtype=np.int64)
            node_ids[0::2] = self._bucket_lookup[stage2_kmers[modelled_slots]]
            node_ids[1::2] = (
                self._index.shared_node_count + stage2_kmers[modelled_slots]
            )
            index_addresses = (
                self._layout["index_offset"] + node_ids * SHARED_NODE_BYTES
            )
            index_hits = simulate_lru_hits(
                index_addresses,
                config.index_cache_bytes,
                config.cache_line_bytes,
                config.index_cache_ways,
            )
        else:
            index_addresses = np.empty(0, dtype=np.int64)
            index_hits = np.empty(0, dtype=bool)

        inference_lookups = int(modelled_slots.size)
        increment_entries = int(entries.sum()) if count else 0

        # Increment fetch: byte ranges -> row-span expansion into chunks.
        if count:
            base_pointers = self._table.bases[stage2_kmers]
            base_pointers = np.where(
                base_pointers >= self._table.max_sentinel, 0, base_pointers
            )
            entry_bytes = INCREMENT_ENTRY_BYTES * self._chain_ratio
            fetch_start = self._layout["increment_offset"] + (
                (base_pointers + predicted).astype(np.float64) * entry_bytes
            ).astype(np.int64)
            fetch_bytes = np.maximum(
                1,
                (
                    (entries * INCREMENT_ENTRY_BYTES).astype(np.float64)
                    * self._chain_ratio
                ).astype(np.int64),
            )
            (
                chunk_rows,
                chunk_bytes,
                chunks_per_slot,
            ) = _expand_row_spans(fetch_start, fetch_bytes, row_bytes, BURST_BYTES * 8)
        else:
            chunk_rows = chunk_bytes = np.empty(0, dtype=np.int64)
            chunks_per_slot = np.zeros(0, dtype=np.int64)

        trace = self._assemble_trace(
            count,
            cam_entries,
            row_bytes,
            base_addresses,
            base_miss,
            modelled_slots,
            index_addresses,
            index_hits,
            chunk_rows,
            chunk_bytes,
            chunks_per_slot,
            keep_open,
            streams,
        )

        if count:
            ledger.record("scheduling_queue", count)
            ledger.record("base_cache", count)
            ledger.record("sched_and_row", count)
        index_misses = int(index_hits.size - index_hits.sum())
        dma_operations = int(base_miss.sum()) + index_misses + int(chunks_per_slot.sum())
        if dma_operations:
            ledger.record("dma_ctrl", dma_operations)
        if index_hits.size:
            ledger.record("index_cache", int(index_hits.size))
        if inference_lookups:
            ledger.record("inference_engine", inference_lookups)
        if increment_entries:
            ledger.record("decompress", increment_entries)

        base_cache_stats = CacheStats(
            hits=int(base_hits.sum()), misses=int(base_miss.sum())
        )
        index_cache_stats = CacheStats(
            hits=int(index_hits.sum()), misses=index_misses
        )

        # Replay DRAM traffic, sharded over channels.
        dram_config = config.dram_config()
        per_channel = [
            DRAMModel(dram_config, page_policy=config.page_policy).process_columns(
                channel_trace
            )
            for channel_trace in trace.split_channels(config.channels)
        ]
        dram_cycles = max((stats.total_cycles for stats in per_channel), default=0)
        dram_stats = self._merge_dram(per_channel, dram_cycles)

        inference_cost = self._engine.batch_cost(inference_lookups)
        # Convert engine cycles (800 MHz) to DRAM-clock cycles (1200 MHz).
        dram_clock = dram_config.clock_mhz
        inference_cycles = int(
            inference_cost.cycles * dram_clock / self._engine.config.clock_mhz
        )
        total_cycles = max(dram_cycles, inference_cycles)
        seconds = max(total_cycles / (dram_clock * 1e6), 1e-12)

        bases = (
            bases_processed if bases_processed is not None else self._bases_processed(count)
        )
        accelerator_energy = ledger.total_energy_j(seconds) + inference_cost.energy_pj * 1e-12
        dram_energy = dram_stats.energy_nj * 1e-9

        return AcceleratorRunResult(
            name=name,
            requests=count,
            bases_processed=bases,
            total_cycles=total_cycles,
            dram_cycles=dram_cycles,
            inference_cycles=inference_cycles,
            seconds=seconds,
            base_cache=base_cache_stats,
            index_cache=index_cache_stats,
            dram=dram_stats,
            energy=ledger,
            accelerator_energy_j=accelerator_energy,
            dram_energy_j=dram_energy,
            increment_entries_read=increment_entries,
            dram_requests=len(trace),
            per_channel=per_channel,
        )

    @staticmethod
    def _assemble_trace(
        count: int,
        cam_entries: int,
        row_bytes: int,
        base_addresses: np.ndarray,
        base_miss: np.ndarray,
        modelled_slots: np.ndarray,
        index_addresses: np.ndarray,
        index_hits: np.ndarray,
        chunk_rows: np.ndarray,
        chunk_bytes: np.ndarray,
        chunks_per_slot: np.ndarray,
        keep_open: np.ndarray,
        streams: np.ndarray,
    ) -> MemoryTrace:
        """Scatter the per-stage access columns into one issue-order trace.

        The reference interleaving per CAM batch is: every stage-1 base
        miss (stage-1 order), then per stage-2 slot its index-node misses
        (bucket before leaf) followed by its increment chunks.  Every
        destination offset is computed with cumulative sums, so the trace
        materialises with a handful of scatters regardless of length.
        """
        if count == 0:
            return MemoryTrace()
        batch_starts = np.arange(0, count, cam_entries, dtype=np.int64)
        batch_sizes = np.minimum(cam_entries, count - batch_starts)
        slots = np.arange(count, dtype=np.int64)
        batch_of = slots // cam_entries

        index_misses_per_slot = np.zeros(count, dtype=np.int64)
        if modelled_slots.size:
            miss_pairs = (~index_hits).reshape(-1, 2)
            index_misses_per_slot[modelled_slots] = miss_pairs.sum(axis=1)
        per_slot = index_misses_per_slot + chunks_per_slot

        miss_counts = base_miss.astype(np.int64)
        stage1_per_batch = np.add.reduceat(miss_counts, batch_starts)
        stage2_per_batch = np.add.reduceat(per_slot, batch_starts)
        batch_offsets = np.cumsum(stage1_per_batch + stage2_per_batch)
        batch_offsets = np.concatenate(([0], batch_offsets[:-1]))

        total = int(base_miss.sum() + per_slot.sum())
        rows = np.empty(total, dtype=np.int64)
        nbytes = np.empty(total, dtype=np.int64)
        keep = np.zeros(total, dtype=bool)
        request_streams = np.zeros(total, dtype=np.int64)

        # Stage-1 misses land first in their batch's span.
        rank = np.cumsum(miss_counts) - miss_counts
        rank -= np.repeat(rank[batch_starts], batch_sizes)
        stage1_dest = (batch_offsets[batch_of] + rank)[base_miss]
        rows[stage1_dest] = base_addresses[base_miss] // row_bytes
        nbytes[stage1_dest] = BURST_BYTES

        # Each stage-2 slot owns the span after its batch's stage-1
        # misses and its predecessors' spans.
        span_before = np.cumsum(per_slot) - per_slot
        span_before -= np.repeat(span_before[batch_starts], batch_sizes)
        slot_offsets = (
            batch_offsets[batch_of] + stage1_per_batch[batch_of] + span_before
        )

        if modelled_slots.size:
            index_rows = index_addresses // row_bytes
            modelled_offsets = slot_offsets[modelled_slots]
            modelled_streams = streams[modelled_slots]
            bucket_missed = miss_pairs[:, 0]
            leaf_missed = miss_pairs[:, 1]
            bucket_dest = modelled_offsets[bucket_missed]
            rows[bucket_dest] = index_rows[0::2][bucket_missed]
            nbytes[bucket_dest] = BURST_BYTES
            request_streams[bucket_dest] = modelled_streams[bucket_missed]
            leaf_dest = (modelled_offsets + bucket_missed)[leaf_missed]
            rows[leaf_dest] = index_rows[1::2][leaf_missed]
            nbytes[leaf_dest] = BURST_BYTES
            request_streams[leaf_dest] = modelled_streams[leaf_missed]

        chunk_dest = np.repeat(
            slot_offsets + index_misses_per_slot, chunks_per_slot
        ) + _segment_arange(chunks_per_slot)
        rows[chunk_dest] = chunk_rows
        nbytes[chunk_dest] = chunk_bytes
        keep[chunk_dest] = np.repeat(keep_open, chunks_per_slot)
        request_streams[chunk_dest] = np.repeat(streams, chunks_per_slot)
        return MemoryTrace(
            rows=rows, nbytes=nbytes, keep_open=keep, streams=request_streams
        )

    def run_reference(
        self,
        requests: "Sequence[OccRequest]",
        name: str = "EXMA",
        bases_processed: int | None = None,
    ) -> AcceleratorRunResult:
        """Replay *requests* one at a time through the object pipeline.

        The original request-at-a-time model — CAM scheduling via
        :class:`~repro.hw.cam.SchedulingQueue`, per-access
        :meth:`~repro.hw.cache.SetAssociativeCache.access` calls,
        :class:`~repro.hw.dram.MemoryRequest` objects — kept as the
        executable specification the oracle suite holds :meth:`run` to.
        Orders of magnitude slower than the columnar replay; use it for
        equivalence checks, not experiments.
        """
        config = self._config
        base_cache = SetAssociativeCache(
            config.base_cache_bytes, config.cache_line_bytes, config.base_cache_ways
        )
        index_cache = SetAssociativeCache(
            config.index_cache_bytes, config.cache_line_bytes, config.index_cache_ways
        )
        ledger = EnergyLedger()
        scheduler = (
            TwoStageScheduler(config.cam_config())
            if config.two_stage_scheduling
            else FrFcfsScheduler(config.cam_config())
        )

        dram_trace: list[MemoryRequest] = []
        inference_lookups = 0
        increment_entries = 0
        row_bytes = config.dram_config().row_bytes

        for batch in scheduler.schedule(requests):
            # Stage 1: base-cache accesses in k-mer order.
            for request in batch.stage1:
                ledger.record("scheduling_queue")
                ledger.record("base_cache")
                address = self._base_address(request.packed_kmer)
                hit = base_cache.access(address)
                if not hit:
                    dram_trace.append(
                        MemoryRequest(row=address // row_bytes, nbytes=BURST_BYTES, stream=0)
                    )
                    ledger.record("dma_ctrl")

            # Stage 2: index-cache accesses, inference and increment fetch
            # in pos order, with keep-open hints for the dynamic policy.
            annotated = pair_requests_by_kmer(batch.stage2)
            for stream_id, (request, keep_open) in enumerate(annotated):
                ledger.record("sched_and_row")
                packed = request.packed_kmer
                modelled = self._index is not None and self._index.has_model(packed)
                if modelled:
                    assert self._index is not None
                    for node_id in self._index.node_ids_for(packed):
                        ledger.record("index_cache")
                        address = self._index_node_address(node_id)
                        hit = index_cache.access(address)
                        if not hit:
                            dram_trace.append(
                                MemoryRequest(
                                    row=address // row_bytes, nbytes=BURST_BYTES, stream=stream_id
                                )
                            )
                            ledger.record("dma_ctrl")
                    inference_lookups += 1
                    ledger.record("inference_engine")
                    predicted = self._index.predict(packed, request.pos)
                    true_index = self._table.occ(packed, request.pos)
                    entries = 2 + abs(true_index - predicted)
                else:
                    true_index = self._table.occ(packed, request.pos)
                    count = self._table.frequency(packed)
                    entries = max(1, min(count, true_index + 1))
                    predicted = max(0, true_index - entries + 1)

                increment_entries += entries
                nbytes = max(
                    1, int(entries * INCREMENT_ENTRY_BYTES * self._chain_ratio)
                )
                ledger.record("decompress", entries)
                address = self._increment_address(packed, predicted)
                cursor = address
                remaining = nbytes
                while remaining > 0:
                    row = cursor // row_bytes
                    room_in_row = row_bytes - (cursor % row_bytes)
                    chunk = min(remaining, room_in_row, BURST_BYTES * 8)
                    dram_trace.append(
                        MemoryRequest(
                            row=row,
                            nbytes=chunk,
                            keep_open_hint=keep_open,
                            stream=stream_id,
                        )
                    )
                    ledger.record("dma_ctrl")
                    cursor += chunk
                    remaining -= chunk

        # Replay DRAM traffic, sharded over channels.
        per_channel = self._run_dram(dram_trace)
        dram_cycles = max((stats.total_cycles for stats in per_channel), default=0)
        dram_stats = self._merge_dram(per_channel, dram_cycles)

        inference_cost = self._engine.batch_cost(inference_lookups)
        # Convert engine cycles (800 MHz) to DRAM-clock cycles (1200 MHz).
        dram_clock = self._config.dram_config().clock_mhz
        inference_cycles = int(
            inference_cost.cycles * dram_clock / self._engine.config.clock_mhz
        )
        total_cycles = max(dram_cycles, inference_cycles)
        seconds = max(total_cycles / (dram_clock * 1e6), 1e-12)

        bases = (
            bases_processed if bases_processed is not None else self._bases_processed(len(requests))
        )
        accelerator_energy = ledger.total_energy_j(seconds) + inference_cost.energy_pj * 1e-12
        dram_energy = dram_stats.energy_nj * 1e-9

        return AcceleratorRunResult(
            name=name,
            requests=len(requests),
            bases_processed=bases,
            total_cycles=total_cycles,
            dram_cycles=dram_cycles,
            inference_cycles=inference_cycles,
            seconds=seconds,
            base_cache=base_cache.stats,
            index_cache=index_cache.stats,
            dram=dram_stats,
            energy=ledger,
            accelerator_energy_j=accelerator_energy,
            dram_energy_j=dram_energy,
            increment_entries_read=increment_entries,
            dram_requests=len(dram_trace),
            per_channel=per_channel,
        )

    def run_stream(
        self,
        windows: "Iterable[WindowedBatch | Sequence[OccRequest]]",
        name: str = "EXMA",
        replay_workers: "int | None" = None,
        executor: "str | None" = None,
    ) -> WindowedRunResult:
        """Replay a stream of flushed windows, accounting each flush alone.

        *windows* is an iterator of :class:`~repro.engine.window
        .WindowedBatch` flushes (what :meth:`~repro.engine.window
        .CoalescingWindow.stream` yields) or plain request sequences.
        Each flush is one scheduling epoch: it is replayed with fresh
        queue/cache/DRAM state exactly as :meth:`run` would replay the
        same requests, so a W=1 stream is byte-identical per flush to the
        per-batch path.  A :class:`WindowedBatch` is consumed columnar
        end-to-end — its packed key array feeds the array schedulers
        directly and no request objects exist anywhere in the replay —
        and its bases default to the *issued* (pre-window-merge) count, so
        throughput stays comparable across window capacities while the
        replayed stream shrinks with W.

        Because epochs are independent, ``replay_workers > 1`` fans them
        across a persistent worker pool (:class:`~repro.accel.parallel
        .ParallelReplay`, reusing :class:`~repro.engine.sharded
        .BackendWorkerPool` with this accelerator as the backend) and
        reassembles the per-flush results in flush order — the result is
        **field-for-field identical** to the serial replay.  An explicit
        count is honoured verbatim; the default consults
        ``REPRO_DEFAULT_REPLAY_WORKERS`` clamped to the hardware.
        *executor* picks the pool kind (``REPRO_DEFAULT_EXECUTOR`` when
        ``None``); the process executor ships the accelerator once per
        worker via the pool initializer.
        """
        workers = self._resolve_replay_workers(replay_workers)
        if workers > 1:
            return self._ensure_replay(workers, executor).run_stream(windows, name=name)
        flushes: list[AcceleratorRunResult] = []
        batches = 0
        issued = 0
        for flushed in windows:
            if isinstance(flushed, WindowedBatch):
                batches += flushed.batches
                issued += flushed.issued
                flushes.append(self.replay_flush(flushed, name=name))
            else:
                batches += 1
                issued += len(flushed)
                flushes.append(self.run(flushed, name=name))
        return WindowedRunResult(
            name=name, flushes=flushes, capacity=None, batches=batches, issued=issued
        )

    def replay_flush(
        self, flushed: "WindowedBatch", name: str = "EXMA"
    ) -> AcceleratorRunResult:
        """Replay one flushed window as an independent scheduling epoch.

        The single unit of work shared by :meth:`run_stream` and the
        always-on serving layer (:mod:`repro.serving`): the flush's merged
        key array feeds :meth:`run` columnar with fresh queue/cache/DRAM
        state, and bases are accounted from the flush's *issued*
        (pre-window-merge) request count so throughput stays comparable
        across window capacities.  Because both consumers call exactly
        this, a served stream's per-flush results are field-for-field
        identical to the offline :meth:`run_windowed` path over the same
        batch streams.
        """
        return self.run(
            flushed, name=name, bases_processed=self._bases_processed(flushed.issued)
        )

    def run_windowed(
        self,
        batch_streams: "Iterable[Sequence[OccRequest]]",
        window: "int | CoalescingWindow" = 1,
        name: str = "EXMA",
        replay_workers: "int | None" = None,
        executor: "str | None" = None,
    ) -> WindowedRunResult:
        """Merge consecutive batch streams through a coalescing window and
        replay the flushes.

        The end-to-end windowed pipeline in one call: per-batch request
        streams (typically each batch's columnar
        :class:`~repro.engine.coalesce.RequestStream`) pass through a
        :class:`~repro.engine.window.CoalescingWindow` of capacity W and
        every flush is replayed as one scheduling epoch.  ``window=1``
        reproduces the per-batch path exactly.  *replay_workers* and
        *executor* pass straight to :meth:`run_stream` — windowing
        happens up front, so the flush epochs still fan across the pool.
        """
        if isinstance(window, int):
            window = CoalescingWindow(window)
        result = self.run_stream(
            window.stream(batch_streams),
            name=name,
            replay_workers=replay_workers,
            executor=executor,
        )
        result.capacity = window.capacity
        return result

    def _run_dram(self, trace: list[MemoryRequest]) -> list[DRAMStats]:
        """Shard the trace across channels and replay each channel."""
        config = self._config
        dram_config = config.dram_config()
        channels: list[list[MemoryRequest]] = [[] for _ in range(config.channels)]
        for request in trace:
            channels[request.row % config.channels].append(request)
        results = []
        for channel_trace in channels:
            model = DRAMModel(dram_config, page_policy=config.page_policy)
            results.append(model.process(channel_trace))
        return results

    @staticmethod
    def _merge_dram(per_channel: list[DRAMStats], total_cycles: int) -> DRAMStats:
        """Aggregate per-channel statistics into one record."""
        merged = DRAMStats()
        for stats in per_channel:
            merged.requests += stats.requests
            merged.row_hits += stats.row_hits
            merged.row_misses += stats.row_misses
            merged.row_conflicts += stats.row_conflicts
            merged.activations += stats.activations
            merged.precharges += stats.precharges
            merged.bytes_transferred += stats.bytes_transferred
            merged.data_bus_busy_cycles += stats.data_bus_busy_cycles
            merged.address_bus_busy_cycles += stats.address_bus_busy_cycles
            merged.energy_nj += stats.energy_nj
        merged.total_cycles = total_cycles
        # Utilisation across channels: busy cycles relative to what all
        # channels could have moved in the same window.
        if total_cycles > 0 and per_channel:
            merged.data_bus_busy_cycles = int(
                merged.data_bus_busy_cycles / len(per_channel)
            )
        return merged

    def _bases_processed(self, request_count: int) -> int:
        """DNA bases consumed by *request_count* Occ lookups.

        Each backward-search iteration issues two Occ lookups (low and
        high) and consumes k symbols.
        """
        return max(1, request_count * self._table.k // 2)


def _request_columns(
    requests: "Sequence[OccRequest]",
) -> tuple[np.ndarray, np.ndarray]:
    """Packed k-mer and position columns of any request container.

    The engine's :class:`~repro.engine.coalesce.RequestStream` and the
    window's :class:`~repro.engine.window.WindowedBatch` hand their arrays
    over directly (no object materialisation); plain sequences are packed
    once.
    """
    if isinstance(requests, (WindowedBatch, RequestStream)):
        return requests.kmers, requests.positions
    count = len(requests)
    kmers = np.fromiter((request.packed_kmer for request in requests), np.int64, count)
    positions = np.fromiter((request.pos for request in requests), np.int64, count)
    return kmers, positions


def _segment_arange(counts: np.ndarray) -> np.ndarray:
    """``[0..counts[0]), [0..counts[1]), ...`` concatenated (repeat ranks)."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def _expand_row_spans(
    starts: np.ndarray, nbytes: np.ndarray, row_bytes: int, chunk_cap: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand byte ranges into per-row DMA chunks, vectorized.

    The array form of the reference replay's cursor loop: each range
    ``[start, start + nbytes)`` is cut at DRAM row boundaries, and every
    row segment is fetched in bursts of at most *chunk_cap* bytes with the
    remainder last — exactly the greedy ``min(remaining, room_in_row,
    cap)`` sequence, produced by two ``repeat``/``arange`` expansions.

    Returns ``(chunk_rows, chunk_sizes, chunks_per_range)`` with chunks in
    range-major, ascending-row order (the issue order).
    """
    ends = starts + nbytes
    first_rows = starts // row_bytes
    rows_per_range = (ends - 1) // row_bytes - first_rows + 1
    range_of_row = np.repeat(np.arange(starts.size, dtype=np.int64), rows_per_range)
    row_ids = np.repeat(first_rows, rows_per_range) + _segment_arange(rows_per_range)
    segment_start = np.maximum(starts[range_of_row], row_ids * row_bytes)
    segment_end = np.minimum(ends[range_of_row], (row_ids + 1) * row_bytes)
    segment_len = segment_end - segment_start
    chunks_per_row = -(-segment_len // chunk_cap)
    row_of_chunk = np.repeat(np.arange(row_ids.size, dtype=np.int64), chunks_per_row)
    within_row = _segment_arange(chunks_per_row)
    chunk_sizes = np.minimum(
        chunk_cap, segment_len[row_of_chunk] - within_row * chunk_cap
    )
    chunk_rows = row_ids[row_of_chunk]
    row_starts = np.cumsum(rows_per_range) - rows_per_range
    chunks_per_range = np.add.reduceat(chunks_per_row, row_starts)
    return chunk_rows, chunk_sizes, chunks_per_range
