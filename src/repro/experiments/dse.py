"""dse — design-space exploration over the accelerator's own knobs.

The lumos-style sweep the ROADMAP names: the columnar replay (PR 5) plus
the persistent worker pools (PR 8) make whole-configuration sweeps
affordable, and the order-deterministic :class:`~repro.hw.energy
.EnergyLedger` makes every point reproducible bit-for-bit.  The harness
enumerates :class:`~repro.accel.configspace.ConfigPoint` grids over CAM
width, both cache geometries, the DRAM page policy, the MTL index shape
and the coalescing window W, prices each point for throughput (Mbase/s),
energy-per-base and a first-order area proxy, and reduces the sweep to a
Pareto frontier (``BENCH_dse.json``).

The sweep is a job queue over PR 8's :class:`~repro.engine.sharded
.BackendWorkerPool`: the workload context (table, MTL indexes, the
per-batch request streams) ships to the pool **once** as the bound
backend — process pools install it via the pool initializer — and each
job submits only its :class:`ConfigPoint` coordinate.  A job builds a
fresh accelerator at its point, windows the shared batch streams with
its own W and replays the flush epochs serially (the parallelism is
*across* configurations, not within one).

Correctness contract, recorded in the JSON and gated in CI
(``scripts/ci_gates.py --gate dse``):

* the baseline point (Table-I defaults, W=1) reproduces today's
  :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.run` field for
  field, flush by flush (``baseline_matches_run``);
* every metric is modelled (cycles, joules), so re-running any frontier
  point yields the bit-identical row (``rederived_equal`` — checked by
  actually re-running each one after the sweep);
* Pareto membership is recomputable from the recorded rows alone.

Reproduce the committed record with::

    repro-exma experiment dse --genome-length 20000 \
        --grid "cam=64,128;base_ways=4,8;page=close,dynamic;window=1,2;mtl=16,64" \
        --json BENCH_dse.json
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from ..accel.configspace import (
    ConfigPoint,
    baseline_point,
    enumerate_grid,
    pareto_frontier,
    parse_grid,
    point_to_dict,
)
from ..accel.exma_accelerator import ExmaAccelerator
from ..engine.backends import ExmaBackend
from ..engine.coalesce import RequestStream
from ..engine.engine import QueryEngine
from ..engine.sharded import BackendWorkerPool, available_parallelism
from ..engine.window import CoalescingWindow
from ..exma.mtl_index import MTLIndex
from ..exma.table import ExmaTable
from ..genome.datasets import build_dataset
from .common import DEFAULT_STEP, sample_queries

__all__ = [
    "DEFAULT_GRID",
    "DseResult",
    "DseRow",
    "DseWorkload",
    "FrontierPoint",
    "dse_frontier_report",
    "format_dse",
    "parse_grid",
    "run_dse",
    "run_dse_job",
    "write_dse_json",
]

#: MTL split threshold of the workload's default index (``mtl=default``),
#: matching the accel-replay harness so the baseline workload is the same.
DEFAULT_MTL_THRESHOLD = 16

#: The default sweep: CAM width × base-cache ways × page policy × window,
#: crossed over the reproduction-scale anchor point (16 grid points).
DEFAULT_GRID: dict[str, tuple] = {
    "cam": (64, 128),
    "base_ways": (4, 8),
    "page": ("close", "dynamic"),
    "window": (1, 2),
}


@dataclass(frozen=True)
class DseWorkload:
    """The per-sweep context shipped to the worker pool exactly once.

    Plays the pool's *backend* role: thread workers share it in-process,
    process workers receive it through the pool initializer, and every
    job afterwards only carries its :class:`ConfigPoint` across the
    pipe.  All members are picklable (the PR 8 contract).
    """

    table: ExmaTable
    #: MTL indexes keyed by split threshold; ``None`` is the workload's
    #: default index (every threshold a sweep point needs is pre-built).
    indexes: dict
    #: Per-batch request streams (post per-batch coalescing) every
    #: configuration windows with its own W.
    streams: list[RequestStream]


@dataclass(frozen=True)
class DseRow:
    """One priced design point (all metrics modelled, hence re-derivable)."""

    label: str
    point: ConfigPoint
    baseline: bool
    flushes: int
    #: Requests entering the window stage (post per-batch coalescing).
    issued: int
    #: Requests surviving the cross-batch merge (scheduled on the CAM).
    requests: int
    bases_processed: int
    total_cycles: int
    dram_cycles: int
    dram_requests: int
    #: Modelled run time (cycles over the DRAM clock), not wall-clock.
    seconds: float
    mbase_per_second: float
    accelerator_energy_j: float
    dram_energy_j: float
    energy_per_base_nj: float
    area_mm2: float
    base_cache_hit_rate: float
    index_cache_hit_rate: float
    row_hit_rate: float
    bandwidth_utilization: float

    def objectives(self) -> tuple[float, float, float]:
        """The maximised objective vector Pareto extraction runs on."""
        return (self.mbase_per_second, -self.energy_per_base_nj, -self.area_mm2)


@dataclass(frozen=True)
class FrontierPoint:
    """One Pareto-optimal design with its re-derivation verdict."""

    label: str
    mbase_per_second: float
    energy_per_base_nj: float
    area_mm2: float
    #: Whether re-running the point reproduced the row bit-for-bit.
    rederived_equal: bool


@dataclass(frozen=True)
class DseResult:
    """The priced sweep, its frontier and the workload that produced it."""

    rows: list[DseRow]
    frontier: list[FrontierPoint]
    grid: dict
    baseline_matches_run: bool
    workers: int
    executor: str
    genome_length: int
    seed: int
    queries: int
    query_length: int
    k: int
    batches: int
    mtl_epochs: int
    #: Wall-clock of the whole sweep (the only non-modelled number here).
    elapsed_seconds: float = 0.0
    frontier_labels: list = field(default_factory=list)


def _cache_hit_rate(flushes, attribute: str) -> float:
    hits = sum(getattr(flush, attribute).hits for flush in flushes)
    misses = sum(getattr(flush, attribute).misses for flush in flushes)
    return hits / max(hits + misses, 1)


def run_dse_job(workload: DseWorkload, point: ConfigPoint) -> DseRow:
    """Price one design point on the shared workload (a pool job).

    Module-level so process pools pick it up by reference; the workload
    arrives as the pool's bound backend.  The replay inside a job is
    serial (``replay_workers=1``) — the DSE's parallelism is across
    configurations, one job per :class:`ConfigPoint`.
    """
    index = workload.indexes[point.mtl_threshold]
    accelerator = point.build_accelerator(workload.table, index)
    flushes = list(CoalescingWindow(point.window).stream(iter(workload.streams)))
    result = accelerator.run_stream(iter(flushes), replay_workers=1)
    bases = result.bases_processed
    energy_j = result.accelerator_energy_j + result.dram_energy_j
    seconds = max(result.seconds, 1e-12)
    return DseRow(
        label=point.label,
        point=point,
        baseline=point == baseline_point(),
        flushes=result.windows,
        issued=result.issued,
        requests=result.requests,
        bases_processed=bases,
        total_cycles=result.total_cycles,
        dram_cycles=result.dram_cycles,
        dram_requests=result.dram_requests,
        seconds=result.seconds,
        mbase_per_second=bases / seconds / 1e6,
        accelerator_energy_j=result.accelerator_energy_j,
        dram_energy_j=result.dram_energy_j,
        energy_per_base_nj=energy_j * 1e9 / max(bases, 1),
        area_mm2=point.area_proxy_mm2(),
        base_cache_hit_rate=_cache_hit_rate(result.flushes, "base_cache"),
        index_cache_hit_rate=_cache_hit_rate(result.flushes, "index_cache"),
        row_hit_rate=result.row_hit_rate,
        bandwidth_utilization=result.bandwidth_utilization,
    )


def _check_baseline(
    workload: DseWorkload, pooled_row: DseRow
) -> bool:
    """Field-for-field: the baseline job against today's ``run`` paths.

    Replays the workload's W=1 flush epochs through a *plain*,
    default-constructed Table-I :class:`ExmaAccelerator` — both the
    columnar :meth:`~ExmaAccelerator.run` unit every existing consumer
    calls (via ``replay_flush``) and the request-at-a-time
    :meth:`~ExmaAccelerator.run_reference` object path (the
    fig18-window anchor convention, so columnar-vs-object divergence
    cannot hide) — and compares each flush with dataclass equality
    (every field) against the ConfigPoint clone's replay.  The pooled
    baseline row's aggregates must agree exactly too, which closes the
    loop over the pool shipping itself.
    """
    base = baseline_point()
    index = workload.indexes[None]
    flushes = list(CoalescingWindow(1).stream(iter(workload.streams)))
    direct = ExmaAccelerator(workload.table, index)
    direct_runs = [direct.replay_flush(flushed) for flushed in flushes]
    reference_runs = [
        direct.run_reference(
            list(flushed.requests),
            bases_processed=direct._bases_processed(flushed.issued),
        )
        for flushed in flushes
    ]
    clone = base.build_accelerator(workload.table, index)
    windowed = clone.run_stream(iter(flushes), replay_workers=1)
    if len(windowed.flushes) != len(flushes):
        return False
    if any(a != b for a, b in zip(windowed.flushes, direct_runs)):
        return False
    if any(a != b for a, b in zip(windowed.flushes, reference_runs)):
        return False
    return (
        pooled_row.requests == windowed.requests
        and pooled_row.total_cycles == windowed.total_cycles
        and pooled_row.accelerator_energy_j == windowed.accelerator_energy_j
        and pooled_row.dram_energy_j == windowed.dram_energy_j
    )


def run_dse(
    genome_length: int = 20_000,
    seed: int = 0,
    query_count: int = 800,
    query_length: int = 48,
    k: int = DEFAULT_STEP,
    batches: int = 8,
    mtl_epochs: int = 40,
    grid: "dict | str | None" = None,
    anchor: ConfigPoint | None = None,
    workers: int = 1,
    executor: str = "thread",
) -> DseResult:
    """Sweep the configuration grid over one shared workload.

    *grid* is an axes mapping (``{"cam": (64, 128), ...}``), a CLI-style
    spec string, or ``None`` for :data:`DEFAULT_GRID`; the axes cross
    over *anchor* (the reproduction-scale point by default) and the
    Table-I baseline point is always prepended as job zero.  With
    *workers* > 1 the jobs fan across a :class:`BackendWorkerPool` of
    the given *executor* kind, the workload shipping once as the pool's
    backend; results are collected in submission order, so the record
    is identical at every worker count.
    """
    if batches < 1:
        raise ValueError("batches must be >= 1")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    started = time.perf_counter()
    if isinstance(grid, str):
        grid = parse_grid(grid)
    grid = dict(DEFAULT_GRID) if grid is None else dict(grid)
    base = baseline_point()
    points = [p for p in enumerate_grid(grid, anchor) if p != base]
    jobs = [base, *points]

    reference = build_dataset("human", simulated_length=genome_length, seed=seed)
    table = ExmaTable(reference.sequence, k=k)
    indexes: dict = {
        None: MTLIndex(
            table,
            model_threshold=DEFAULT_MTL_THRESHOLD,
            samples_per_kmer=64,
            epochs=mtl_epochs,
            seed=seed,
        )
    }
    for threshold in sorted({p.mtl_threshold for p in jobs} - {None}):
        indexes[threshold] = (
            indexes[None]
            if threshold == DEFAULT_MTL_THRESHOLD
            else MTLIndex(
                table,
                model_threshold=threshold,
                samples_per_kmer=64,
                epochs=mtl_epochs,
                seed=seed,
            )
        )

    engine = QueryEngine(ExmaBackend(table=table, index=indexes[None]))
    queries = sample_queries(
        reference.sequence, count=query_count, length=query_length, seed=seed
    )
    chunk = max(1, -(-len(queries) // batches))
    batch_lists = [queries[i : i + chunk] for i in range(0, len(queries), chunk)]
    streams = [engine.request_stream(batch)[0] for batch in batch_lists]
    workload = DseWorkload(table=table, indexes=indexes, streams=streams)

    if workers > 1:
        with BackendWorkerPool(workload, executor, max_workers=workers) as pool:
            futures = [pool.submit(run_dse_job, point) for point in jobs]
            rows = [future.result() for future in futures]
    else:
        rows = [run_dse_job(workload, point) for point in jobs]

    baseline_matches_run = _check_baseline(workload, rows[0])

    frontier_indices = pareto_frontier([row.objectives() for row in rows])
    frontier: list[FrontierPoint] = []
    for i in frontier_indices:
        row = rows[i]
        rerun = run_dse_job(workload, row.point)
        frontier.append(
            FrontierPoint(
                label=row.label,
                mbase_per_second=row.mbase_per_second,
                energy_per_base_nj=row.energy_per_base_nj,
                area_mm2=row.area_mm2,
                rederived_equal=rerun == row,
            )
        )

    return DseResult(
        rows=rows,
        frontier=frontier,
        grid=grid,
        baseline_matches_run=baseline_matches_run,
        workers=workers,
        executor=executor,
        genome_length=genome_length,
        seed=seed,
        queries=len(queries),
        query_length=query_length,
        k=k,
        batches=len(batch_lists),
        mtl_epochs=mtl_epochs,
        elapsed_seconds=time.perf_counter() - started,
        frontier_labels=[point.label for point in frontier],
    )


def format_dse(result: DseResult) -> str:
    """Render the sweep table and the frontier summary."""
    on_frontier = set(result.frontier_labels)
    lines = [
        f"dse - {len(result.rows)} design points over "
        f"{result.queries} queries x {result.batches} batches "
        f"(genome {result.genome_length:,} bp, k={result.k}, "
        f"workers={result.workers} {result.executor}, "
        f"{result.elapsed_seconds:.1f} s)"
    ]
    lines.append(
        f"{'point':>34s} {'W':>2s} {'Mbase/s':>9s} {'nJ/base':>9s} "
        f"{'area mm2':>9s} {'rowhit':>7s} {'frontier':>8s}"
    )
    for row in result.rows:
        marker = "*" if row.label in on_frontier else ""
        base = " (baseline)" if row.baseline else ""
        lines.append(
            f"{row.label:>34s} {row.point.window:2d} {row.mbase_per_second:9.2f} "
            f"{row.energy_per_base_nj:9.3f} {row.area_mm2:9.3f} "
            f"{row.row_hit_rate:6.1%} {marker:>8s}{base}"
        )
    lines.append("")
    lines.append(
        f"pareto frontier: {len(result.frontier)} of {len(result.rows)} points; "
        f"baseline matches run: {'yes' if result.baseline_matches_run else 'NO'}"
    )
    for point in result.frontier:
        lines.append(
            f"  * {point.label:32s} {point.mbase_per_second:9.2f} Mbase/s  "
            f"{point.energy_per_base_nj:8.3f} nJ/base  {point.area_mm2:7.3f} mm2  "
            f"rederived {'ok' if point.rederived_equal else 'DIVERGED'}"
        )
    return "\n".join(lines)


def _grid_json(grid: dict) -> dict:
    """Grid axes with JSON-safe values (policies as strings)."""
    encoded: dict = {}
    for axis, values in grid.items():
        encoded[axis] = [
            value.value
            if hasattr(value, "value")
            else ("default" if value is None else value)
            for value in values
        ]
    return encoded


def dse_frontier_report(result: DseResult, **workload) -> dict:
    """The sweep as a JSON-ready record (``BENCH_dse.json``).

    The figure harness for the trade-off surface: every row carries its
    full config coordinate plus the three objectives (so the frontier is
    recomputable from the record alone), the frontier section carries
    the re-derivation verdicts, and the host shape follows the honesty
    convention of the other benchmark records.  Objective floats are
    recorded at full precision — the CI gate recomputes Pareto
    dominance from the JSON and must see the exact values.
    """
    return {
        "benchmark": "dse",
        "host_cpus": os.cpu_count(),
        "available_cpus": available_parallelism(),
        "workload": {
            "genome_length": result.genome_length,
            "seed": result.seed,
            "queries": result.queries,
            "query_length": result.query_length,
            "k": result.k,
            "batches": result.batches,
            "mtl_epochs": result.mtl_epochs,
            **dict(workload),
        },
        "grid": _grid_json(result.grid),
        "workers": result.workers,
        "executor": result.executor,
        "elapsed_seconds": round(result.elapsed_seconds, 3),
        "baseline": {
            "label": baseline_point().label,
            "matches_run": result.baseline_matches_run,
        },
        "rows": [
            {
                "label": row.label,
                "config": point_to_dict(row.point),
                "baseline": row.baseline,
                "on_frontier": row.label in set(result.frontier_labels),
                "flushes": row.flushes,
                "issued": row.issued,
                "requests": row.requests,
                "bases_processed": row.bases_processed,
                "total_cycles": row.total_cycles,
                "dram_cycles": row.dram_cycles,
                "dram_requests": row.dram_requests,
                "seconds": row.seconds,
                "mbase_per_second": row.mbase_per_second,
                "accelerator_energy_j": row.accelerator_energy_j,
                "dram_energy_j": row.dram_energy_j,
                "energy_per_base_nj": row.energy_per_base_nj,
                "area_mm2": row.area_mm2,
                "base_cache_hit_rate": round(row.base_cache_hit_rate, 6),
                "index_cache_hit_rate": round(row.index_cache_hit_rate, 6),
                "row_hit_rate": round(row.row_hit_rate, 6),
                "bandwidth_utilization": round(row.bandwidth_utilization, 6),
            }
            for row in result.rows
        ],
        "frontier": [
            {
                "label": point.label,
                "mbase_per_second": point.mbase_per_second,
                "energy_per_base_nj": point.energy_per_base_nj,
                "area_mm2": point.area_mm2,
                "rederived_equal": point.rederived_equal,
            }
            for point in result.frontier
        ],
    }


def write_dse_json(path: str, result: DseResult, **workload) -> dict:
    """Write :func:`dse_frontier_report` to *path*; returns the record."""
    report = dse_frontier_report(result, **workload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report
