"""Fig. 18 (windowed) — accelerator throughput per window capacity W.

Fig. 18 measures the accelerator variants on one batch's post-coalescing
request stream; the paper's throughput story, however, hinges on the
*scheduling window* — duplicate requests coalesced across consecutive
batches change what the accelerator actually executes.  This harness
closes that loop: a stream of consecutive query batches runs through the
batched engine, the per-batch columnar request streams pass through a
:class:`~repro.engine.window.CoalescingWindow` at each sweep capacity
W ∈ {1, 2, 4, 8, 16}, and :meth:`repro.accel.exma_accelerator
.ExmaAccelerator.run_windowed` replays every flush end-to-end — cycles
and energy accounted per flush, throughput aggregated over the stream.

Two invariants anchor the sweep (asserted by the test suite and the CI
bench-smoke job via the recorded ``BENCH_window_capacity.json``):

* the **W=1 row matches the unwindowed path exactly** — every flush's
  :class:`~repro.accel.exma_accelerator.AcceleratorRunResult` is
  byte-identical to :meth:`~repro.accel.exma_accelerator.ExmaAccelerator
  .run_reference` on that batch's per-batch-coalesced request list (the
  request-at-a-time object pipeline), so the columnar replay cannot
  drift;
* the **scheduled request count is monotone non-increasing in W** over
  the aligned power-of-two capacities, because every 2W-window merges at
  least as many duplicates as its two aligned W-windows — and cycles
  follow that trend (strictly fewer at the widest window; local steps
  may wobble within a small model-noise band as scheduling-epoch
  boundaries shift).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..accel.config import exma_full_config
from ..accel.exma_accelerator import (
    AcceleratorRunResult,
    ExmaAccelerator,
    WindowedRunResult,
)
from ..engine.backends import ExmaBackend
from ..engine.engine import QueryEngine
from ..engine.window import CoalescingWindow
from ..exma.table import ExmaTable
from ..genome.datasets import build_dataset
from .common import DEFAULT_STEP, sample_queries
from .fig18_throughput import _scaled_config

__all__ = [
    "Fig18WindowResult",
    "Fig18WindowRow",
    "format_fig18_window",
    "run_fig18_window",
    "window_capacity_report",
    "write_window_capacity_json",
]


@dataclass(frozen=True)
class Fig18WindowRow:
    """One sweep point: the full accelerator run at window capacity W."""

    window: int
    windows_flushed: int
    #: Requests entering the window stage (post per-batch coalescing).
    pre_merge_requests: int
    #: Requests surviving the cross-batch merge (what the CAM schedules).
    post_merge_requests: int
    total_cycles: int
    dram_cycles: int
    inference_cycles: int
    dram_requests: int
    seconds: float
    accelerator_energy_j: float
    dram_energy_j: float
    mbase_per_second: float

    @property
    def merge_ratio(self) -> float:
        """Pre-to-post request ratio (1.0 means nothing merged)."""
        if self.post_merge_requests == 0:
            return 1.0
        return self.pre_merge_requests / self.post_merge_requests


@dataclass(frozen=True)
class Fig18WindowResult:
    """The full capacity sweep plus the unwindowed anchor."""

    rows: list[Fig18WindowRow]
    #: The per-batch path: each batch's coalesced requests replayed with
    #: :meth:`ExmaAccelerator.run`, no window stage involved.
    unwindowed: Fig18WindowRow
    #: Whether every W=1 flush was byte-identical to its unwindowed run.
    w1_matches_unwindowed: bool
    batch_count: int
    batch_size: int
    genome_length: int
    k: int
    #: Raw streamed runs per capacity, for downstream inspection.
    runs: dict[int, WindowedRunResult]


def _row(window: int, result: WindowedRunResult) -> Fig18WindowRow:
    """Flatten one streamed run into a sweep row."""
    return Fig18WindowRow(
        window=window,
        windows_flushed=result.windows,
        pre_merge_requests=result.issued,
        post_merge_requests=result.requests,
        total_cycles=result.total_cycles,
        dram_cycles=result.dram_cycles,
        inference_cycles=result.inference_cycles,
        dram_requests=result.dram_requests,
        seconds=result.seconds,
        accelerator_energy_j=result.accelerator_energy_j,
        dram_energy_j=result.dram_energy_j,
        mbase_per_second=result.throughput.mbase_per_second,
    )


def run_fig18_window(
    genome_length: int = 20_000,
    seed: int = 0,
    windows: tuple[int, ...] = (1, 2, 4, 8, 16),
    batch_count: int = 16,
    #: Defaults match the recorded ``BENCH_window_capacity.json`` workload.
    batch_size: int = 64,
    k: int = DEFAULT_STEP,
    query_length: int = 48,
    use_index: bool = True,
    mtl_epochs: int = 60,
    replay_workers: "int | None" = None,
    replay_executor: "str | None" = None,
) -> Fig18WindowResult:
    """Sweep the window capacity through the full accelerator pipeline.

    The request streams are produced once (one columnar
    :class:`~repro.engine.coalesce.RequestStream` per consecutive query
    batch) and replayed at every capacity, so the sweep isolates the
    window stage.  The unwindowed anchor replays each batch's per-batch
    coalesced request *list* through :meth:`ExmaAccelerator.run_reference`
    — the request-at-a-time object path — and the W=1 row is required to
    match it flush by flush, so the sweep doubles as an object-vs-columnar
    equivalence gate.

    *replay_workers*/*replay_executor* pass straight through to
    :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.run_windowed`:
    with workers > 1 every capacity's flush epochs fan across the
    persistent replay pool — and because the anchor comparison and the
    sweep rows still demand field-for-field equality, the experiment
    doubles as an end-to-end parallel-replay gate.
    """
    reference = build_dataset("human", simulated_length=genome_length, seed=seed)
    table = ExmaTable(reference.sequence, k=k)
    index = None
    if use_index:
        from ..exma.mtl_index import MTLIndex

        index = MTLIndex(
            table, model_threshold=16, samples_per_kmer=64, epochs=mtl_epochs, seed=seed
        )
    engine = QueryEngine(ExmaBackend(table=table, index=index))
    streams = []
    for batch_index in range(batch_count):
        queries = sample_queries(
            reference.sequence, count=batch_size, length=query_length, seed=seed + batch_index
        )
        requests, _stats = engine.request_stream(queries)
        streams.append(requests)

    accelerator = ExmaAccelerator(table, index, _scaled_config(exma_full_config()))

    # The per-batch anchor: W=1 flushes are per-batch coalescing exactly,
    # so running each flush's materialised request list through
    # ``run_reference`` IS the unwindowed path — computed through the
    # request-at-a-time object pipeline on purpose, so columnar-vs-object
    # divergence cannot hide.
    anchor_flushes = list(CoalescingWindow(1).stream(streams))
    anchor_runs: list[AcceleratorRunResult] = [
        accelerator.run_reference(
            list(flushed.requests),
            # The same issued-based accounting run_stream applies, so the
            # anchor can only diverge on the replay path — the thing the
            # comparison is meant to catch.
            bases_processed=accelerator._bases_processed(flushed.issued),
        )
        for flushed in anchor_flushes
    ]
    unwindowed = _row(
        1,
        WindowedRunResult(
            name="EXMA",
            flushes=anchor_runs,
            capacity=1,
            batches=len(streams),
            issued=sum(flushed.issued for flushed in anchor_flushes),
        ),
    )

    rows = []
    runs: dict[int, WindowedRunResult] = {}
    w1_matches = True
    for window in windows:
        result = accelerator.run_windowed(
            streams,
            window=window,
            replay_workers=replay_workers,
            executor=replay_executor,
        )
        runs[window] = result
        rows.append(_row(window, result))
        if window == 1:
            w1_matches = result.flushes == anchor_runs
    accelerator.close()

    return Fig18WindowResult(
        rows=rows,
        unwindowed=unwindowed,
        w1_matches_unwindowed=w1_matches,
        batch_count=batch_count,
        batch_size=batch_size,
        genome_length=genome_length,
        k=table.k,
        runs=runs,
    )


def format_fig18_window(result: Fig18WindowResult) -> str:
    """Render the window-capacity sweep table."""
    lines = [
        "Fig. 18 (windowed) - accelerator throughput per window capacity "
        f"({result.batch_count} batches x {result.batch_size} queries, "
        f"human {result.genome_length:,} bp, k={result.k})"
    ]
    lines.append(
        f"{'W':>3s} {'flushes':>8s} {'pre':>8s} {'post':>8s} {'merge':>7s} "
        f"{'cycles':>10s} {'DRAM reqs':>10s} {'Mbase/s':>9s}"
    )

    def render(label: str, row: Fig18WindowRow) -> str:
        return (
            f"{label:>3s} {row.windows_flushed:8d} {row.pre_merge_requests:8d} "
            f"{row.post_merge_requests:8d} {row.merge_ratio:6.2f}x "
            f"{row.total_cycles:10d} {row.dram_requests:10d} {row.mbase_per_second:9.2f}"
        )

    lines.append(render("-", result.unwindowed) + "  (unwindowed per-batch path)")
    for row in result.rows:
        lines.append(render(str(row.window), row))
    lines.append(
        "W=1 matches unwindowed: " + ("yes" if result.w1_matches_unwindowed else "NO")
    )
    return "\n".join(lines)


def window_capacity_report(result: Fig18WindowResult, **workload) -> dict:
    """The sweep as a JSON-ready record (``BENCH_window_capacity.json``).

    *workload* keyword arguments are recorded verbatim alongside the
    sweep's own shape, so re-recordings on other hosts stay comparable.
    """

    def row_record(row: Fig18WindowRow) -> dict:
        return {
            "window": row.window,
            "windows_flushed": row.windows_flushed,
            "pre_merge_requests": row.pre_merge_requests,
            "post_merge_requests": row.post_merge_requests,
            "merge_ratio": round(row.merge_ratio, 4),
            "total_cycles": row.total_cycles,
            "dram_cycles": row.dram_cycles,
            "inference_cycles": row.inference_cycles,
            "dram_requests": row.dram_requests,
            "seconds": row.seconds,
            "accelerator_energy_j": row.accelerator_energy_j,
            "dram_energy_j": row.dram_energy_j,
            "mbase_per_second": round(row.mbase_per_second, 4),
        }

    return {
        "benchmark": "window_capacity",
        "workload": {
            "genome_length": result.genome_length,
            "batch_count": result.batch_count,
            "batch_size": result.batch_size,
            "k": result.k,
            **dict(workload),
        },
        "w1_matches_unwindowed": result.w1_matches_unwindowed,
        "unwindowed": row_record(result.unwindowed),
        "rows": [row_record(row) for row in result.rows],
    }


def write_window_capacity_json(path: str, result: Fig18WindowResult, **workload) -> dict:
    """Write :func:`window_capacity_report` to *path*; returns the record."""
    report = window_capacity_report(result, **workload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report
