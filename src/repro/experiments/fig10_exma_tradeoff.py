"""Fig. 10 — the EXMA table step-number trade-off.

Panel (a): paper-scale size of the EXMA data structures (suffix array,
MTL index, increments, bases) as the step number grows from 8 to 17 — the
increments/SA/index components are constant while the base array grows as
``4^k``.

Panel (b): CPU search throughput of LISA-21, EXMA with a naive learned
index at steps 14-17, and EXMA-15 with the MTL index (EXMA-15M),
normalised to LISA-21.  At reproduction scale the scan overheads come from
the *measured* index errors on the scaled dataset; the step numbers are
mapped onto the scaled equivalent operating points.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accel.baselines import CpuThroughputModel, SoftwareAlgorithm
from ..exma.learned_index import NaiveLearnedIndex
from ..exma.mtl_index import MTLIndex
from ..exma.table import ExmaTable, exma_size_breakdown
from ..genome.datasets import HUMAN_PAPER_LENGTH, build_dataset
from ..lisa.ipbwt import lisa_size_bytes
from ..lisa.search import LisaIndex, LisaSearchStats
from .common import sample_queries

GB = 1024**3


@dataclass(frozen=True)
class ExmaSizeRow:
    """One bar of Fig. 10(a): size components at a given step number."""

    step: int
    suffix_array_gb: float
    index_gb: float
    increments_gb: float
    bases_gb: float

    @property
    def total_gb(self) -> float:
        """Total EXMA footprint."""
        return self.suffix_array_gb + self.index_gb + self.increments_gb + self.bases_gb


@dataclass(frozen=True)
class Fig10Result:
    """Both panels of Fig. 10."""

    sizes: list[ExmaSizeRow]
    throughput_normalised: dict[str, float]
    measured_errors: dict[str, float]
    parameter_counts: dict[str, int]


def exma_size_sweep(min_step: int = 8, max_step: int = 17) -> list[ExmaSizeRow]:
    """Panel (a): paper-scale EXMA size breakdown across step numbers."""
    rows = []
    for step in range(min_step, max_step + 1):
        breakdown = exma_size_breakdown(HUMAN_PAPER_LENGTH, step)
        rows.append(
            ExmaSizeRow(
                step=step,
                suffix_array_gb=breakdown.suffix_array / GB,
                index_gb=breakdown.index / GB,
                increments_gb=breakdown.increments / GB,
                bases_gb=breakdown.bases / GB,
            )
        )
    return rows


def throughput_comparison(
    genome_length: int = 30_000, seed: int = 0, mtl_epochs: int = 150
) -> tuple[dict[str, float], dict[str, float], dict[str, int]]:
    """Panel (b): normalised CPU throughput of LISA-21 vs EXMA variants.

    Returns ``(normalised throughput, measured index errors, parameter
    counts)``.  The scaled experiment uses k = 5/6/7 as the stand-ins for
    the paper's 14/15/16/17 sweep (same increments-per-k-mer operating
    range) and couples every scheme's scan overhead to its measured error.
    """
    reference = build_dataset("human", simulated_length=genome_length, seed=seed)

    # LISA-21 error measured on the scaled genome.
    lisa = LisaIndex(reference.sequence, k=6, use_learned_index=True)
    lisa_stats = LisaSearchStats()
    for query in sample_queries(reference.sequence, count=30, length=24, seed=seed):
        lisa.backward_search(query, lisa_stats)
    lisa_error = max(lisa_stats.mean_probe, 1.0)

    # EXMA tables at the scaled steps; the paper step labels map linearly.
    scaled_steps = {14: 5, 15: 6, 16: 7, 17: 8}
    errors: dict[str, float] = {"LISA-21": lisa_error}
    parameters: dict[str, int] = {}
    model = CpuThroughputModel()
    schemes: list[SoftwareAlgorithm] = [
        SoftwareAlgorithm(
            "LISA-21",
            21,
            index_node_accesses_per_lookup=2.0,
            scan_entries_per_lookup=lisa_error,
            structure_size_gb=lisa_size_bytes(HUMAN_PAPER_LENGTH, 21) / GB,
        )
    ]
    mtl_error_for_15 = None
    for paper_step, scaled_k in scaled_steps.items():
        table = ExmaTable(reference.sequence, k=scaled_k)
        naive = NaiveLearnedIndex(table, model_threshold=16, increments_per_leaf=256)
        naive_errors = naive.prediction_errors(samples_per_kmer=40, seed=seed)
        naive_error = float(naive_errors.mean()) if naive_errors.size else 0.0
        name = f"EXMA-{paper_step}"
        errors[name] = naive_error
        parameters[name] = naive.parameter_count
        size_gb = exma_size_breakdown(HUMAN_PAPER_LENGTH, paper_step).total / GB
        schemes.append(
            SoftwareAlgorithm(
                name,
                paper_step,
                index_node_accesses_per_lookup=1.0,
                scan_entries_per_lookup=naive_error,
                scan_entry_bytes=4,
                structure_size_gb=size_gb,
            )
        )
        if paper_step == 15:
            mtl = MTLIndex(
                table, model_threshold=16, samples_per_kmer=64, epochs=mtl_epochs, seed=seed
            )
            mtl_errors = mtl.prediction_errors(samples_per_kmer=40, seed=seed)
            mtl_error_for_15 = float(mtl_errors.mean()) if mtl_errors.size else 0.0
            errors["EXMA-15M"] = mtl_error_for_15
            parameters["EXMA-15M"] = mtl.parameter_count
    assert mtl_error_for_15 is not None
    schemes.append(
        SoftwareAlgorithm(
            "EXMA-15M",
            15,
            index_node_accesses_per_lookup=1.0,
            scan_entries_per_lookup=mtl_error_for_15,
            scan_entry_bytes=4,
            structure_size_gb=exma_size_breakdown(HUMAN_PAPER_LENGTH, 15).total / GB,
        )
    )
    throughputs = {scheme.name: model.bases_per_second(scheme) for scheme in schemes}
    baseline = throughputs["LISA-21"]
    normalised = {name: value / baseline for name, value in throughputs.items()}
    return normalised, errors, parameters


def run_fig10(genome_length: int = 30_000, seed: int = 0) -> Fig10Result:
    """Run both panels of Fig. 10."""
    sizes = exma_size_sweep()
    normalised, errors, parameters = throughput_comparison(genome_length=genome_length, seed=seed)
    return Fig10Result(
        sizes=sizes,
        throughput_normalised=normalised,
        measured_errors=errors,
        parameter_counts=parameters,
    )
