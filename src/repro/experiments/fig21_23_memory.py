"""Figs. 21, 22 and 23 — bandwidth utilisation, design space, compression.

* Fig. 21 compares DRAM bandwidth utilisation of the ASIC, GPU, MEDAL and
  EXMA under the shared DDR4 main memory.
* Fig. 22 sweeps the EXMA design space: DIMMs per channel, PE-array count,
  CAM entries and base-cache capacity, reporting throughput normalised to
  the default EXMA configuration.
* Fig. 23 compares CHAIN compression of the EXMA-15 table against BΔI
  compression of the LISA-21 data on the pinus dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..accel.baselines import asic_model, exma_analytic_model, gpu_model, medal_model
from ..accel.config import exma_full_config
from ..accel.exma_accelerator import ExmaAccelerator
from ..engine.coalesce import RequestStream
from ..exma import bdi, chain
from ..exma.table import ExmaTable, exma_size_breakdown
from ..genome.datasets import DATASETS, build_dataset
from ..lisa.ipbwt import IPBWT, lisa_size_bytes
from .common import build_workload
from .fig18_throughput import SCALED_BASE_CACHE_BYTES, SCALED_INDEX_CACHE_BYTES

GB = 1024**3


# --------------------------------------------------------------------------- #
# Fig. 21 — bandwidth utilisation
# --------------------------------------------------------------------------- #


def run_fig21(mean_exma_error: float = 182.0) -> dict[str, float]:
    """Bandwidth utilisation of ASIC, GPU, MEDAL and EXMA (Fig. 21)."""
    devices = [asic_model(), gpu_model(), medal_model(), exma_analytic_model(mean_exma_error)]
    return {device.name: device.throughput().bandwidth_utilization for device in devices}


# --------------------------------------------------------------------------- #
# Fig. 22 — design-space exploration
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class DsePoint:
    """One bar of Fig. 22: a configuration and its normalised throughput."""

    group: str
    label: str
    normalised_throughput: float


def run_fig22(genome_length: int = 60_000, seed: int = 0) -> list[DsePoint]:
    """Sweep DIMM count, PE arrays, CAM entries and base-cache capacity."""
    workload = build_workload("human", genome_length=genome_length, seed=seed)
    # Pack the workload's request tuple into columns once; every sweep
    # point replays the same stream, so the objects are never re-walked.
    requests = RequestStream()
    requests.extend(workload.requests)

    def run_with(**overrides) -> float:
        settings = {
            "base_cache_bytes": SCALED_BASE_CACHE_BYTES,
            "index_cache_bytes": SCALED_INDEX_CACHE_BYTES,
            "cam_entries": 128,
        }
        settings.update(overrides)
        config = exma_full_config().with_overrides(**settings)
        accelerator = ExmaAccelerator(workload.table, workload.mtl_index, config)
        return accelerator.run(requests, name="dse").throughput.bases_per_second

    baseline = run_with()
    points = []
    for dimms in (2, 3, 4):
        points.append(
            DsePoint("DIMMs", f"{dimms}D", run_with(dimms_per_channel=dimms) / baseline)
        )
    for arrays in (2, 4, 8):
        points.append(DsePoint("PE arrays", f"{arrays}A", run_with(pe_arrays=arrays) / baseline))
    for entries in (64, 128, 256):
        points.append(
            DsePoint("CAM entries", f"{entries}E", run_with(cam_entries=entries) / baseline)
        )
    for capacity in (SCALED_BASE_CACHE_BYTES // 2, SCALED_BASE_CACHE_BYTES, SCALED_BASE_CACHE_BYTES * 2):
        points.append(
            DsePoint(
                "base cache",
                f"{capacity // 1024}KB",
                run_with(base_cache_bytes=capacity) / baseline,
            )
        )
    return points


# --------------------------------------------------------------------------- #
# Fig. 23 — CHAIN vs BΔI compression
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class CompressionComparison:
    """Fig. 23: data sizes before/after compression for both schemes."""

    dataset: str
    lisa_original_gb: float
    lisa_bdi_gb: float
    exma_original_gb: float
    exma_chain_gb: float
    measured_bdi_ratio: float
    measured_chain_ratio: float

    @property
    def lisa_to_exma_original_ratio(self) -> float:
        """How much larger LISA-21 is than EXMA-15 before compression."""
        return self.lisa_original_gb / max(self.exma_original_gb, 1e-9)


def run_fig23(
    dataset: str = "pinus", genome_length: int = 40_000, k: int = 6, seed: int = 0
) -> CompressionComparison:
    """Measure CHAIN and BΔI ratios and report paper-scale sizes.

    The compression *ratios* are measured on the scaled dataset's real
    EXMA increments and IP-BWT entries; the absolute GB numbers apply those
    measured ratios to the paper-scale analytic sizes.
    """
    reference = build_dataset(dataset, simulated_length=genome_length, seed=seed)
    table = ExmaTable(reference.sequence, k=k)
    ipbwt = IPBWT(reference.sequence, k=k)

    chain_ratio = chain.compression_ratio(table.increments)
    ipbwt_rows = np.array([entry.paired_row for entry in [ipbwt[i] for i in range(len(ipbwt))]])
    # An IP-BWT entry is a 16-byte (k-mer, row) pair; BΔI compresses the
    # sorted row halves well and the k-mer halves barely at all, so the
    # whole-entry ratio blends the measured row ratio with 1.0.
    bdi_row_ratio = bdi.compression_ratio(ipbwt_rows)
    bdi_entry_ratio = (8 * bdi_row_ratio + 8) / 16

    paper_length = DATASETS[dataset].paper_length
    lisa_original = lisa_size_bytes(paper_length, 21) / GB
    exma_original = exma_size_breakdown(paper_length, 15).total / GB
    return CompressionComparison(
        dataset=dataset,
        lisa_original_gb=lisa_original,
        lisa_bdi_gb=lisa_original * bdi_entry_ratio,
        exma_original_gb=exma_original,
        exma_chain_gb=exma_original * chain_ratio,
        measured_bdi_ratio=bdi_entry_ratio,
        measured_chain_ratio=chain_ratio,
    )
