"""Serving benchmark — sustained throughput *and* tail latency under
open-loop load.

The batch-harness figures measure how fast the accelerator model chews
through a pre-materialised stream; a serving system is judged on what it
*sustains* while clients keep arriving: throughput, p50/p99 latency and
backpressure behaviour, reported together the way the SPEChpc benchmarking
papers record sustained rates next to their scaling trajectories.  This
harness drives a :class:`~repro.serving.service.QueryService` with the
open-loop generator (:mod:`repro.serving.loadgen`) under both a Poisson
and a bursty arrival process, Zipf-skewed queries from a shared pool,
multi-tenant round-robin offering — and records one row per arrival
process into ``BENCH_serving.json`` (gated at toy scale by
``scripts/check_serving.py`` in the CI bench-smoke leg):

* **sustained Mbase/s** — bases processed by the flush replays divided by
  the *wall-clock* span of the run (arrival of the first query to
  completion of the last), i.e. what a client population actually
  experienced, not what the model could have done in isolation;
* **p50/p95/p99/max latency** — arrival → flush-replay completion per
  query, nearest-rank percentiles;
* **admission accounting** — accepted/rejected counts and the mean
  ``retry_after`` hint handed to bounced clients.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..accel.config import exma_full_config
from ..accel.exma_accelerator import ExmaAccelerator
from ..engine.backends import ExmaBackend
from ..engine.engine import QueryEngine
from ..exma.table import ExmaTable
from ..genome.datasets import build_dataset
from ..serving import (
    QueryService,
    ServingConfig,
    bursty_schedule,
    make_schedule,
    poisson_schedule,
    run_open_loop,
    sample_query_pool,
)
from .common import DEFAULT_STEP
from .fig18_throughput import _scaled_config

__all__ = [
    "ServingBenchResult",
    "ServingBenchRow",
    "format_serving",
    "run_serving_bench",
    "serving_report",
    "write_serving_json",
]

#: Arrival processes the benchmark sweeps, in recording order.
ARRIVALS = ("poisson", "bursty")


@dataclass(frozen=True)
class ServingBenchRow:
    """One arrival process' sustained-load measurement."""

    arrival: str
    #: Offered load: arrivals/s × queries per arrival.
    offered_qps: float
    duration_s: float
    submitted: int
    accepted: int
    rejected: int
    completed: int
    batches: int
    flushes: int
    #: Issued-to-scheduled ratio across all flushes (window merge win).
    merge_ratio: float
    scheduled_requests: int
    bases_processed: int
    #: First submit → last completion, wall clock.
    wall_seconds: float
    #: Sustained throughput: bases processed / wall seconds.
    mbase_per_second: float
    #: The accelerator model's own throughput over the same stream.
    model_mbase_per_second: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    mean_retry_after_s: float


@dataclass(frozen=True)
class ServingBenchResult:
    """Both arrival-process rows plus the workload shape."""

    rows: list[ServingBenchRow]
    genome_length: int
    k: int
    rate: float
    duration: float
    tenants: int
    queries_per_arrival: int
    query_length: int
    pool_size: int
    zipf_s: float
    max_batch: int
    max_delay: float
    window: int
    queue_capacity: int


def run_serving_bench(
    genome_length: int = 20_000,
    seed: int = 0,
    rate: float = 500.0,
    duration: float = 1.0,
    tenants: int = 4,
    queries_per_arrival: int = 4,
    query_length: int = 28,
    pool_size: int = 512,
    zipf_s: float = 1.1,
    k: int = DEFAULT_STEP,
    max_batch: int = 64,
    max_delay: float = 0.005,
    window: int = 2,
    queue_capacity: int = 4096,
    arrivals: tuple[str, ...] = ARRIVALS,
) -> ServingBenchResult:
    """Measure the serving layer under open-loop Poisson and bursty load.

    One index, one accelerator model; a fresh :class:`~repro.serving
    .service.QueryService` per arrival process so the stats and latencies
    are per-row.  Rejected arrivals are counted, not retried — open loop.
    """
    reference = build_dataset("human", simulated_length=genome_length, seed=seed)
    table = ExmaTable(reference.sequence, k=k)
    backend = ExmaBackend(table=table)
    accelerator = ExmaAccelerator(table, None, _scaled_config(exma_full_config()))
    pool = sample_query_pool(
        reference.sequence, pool_size=pool_size, length=query_length, seed=seed
    )
    config = ServingConfig(
        max_batch=max_batch,
        max_delay=max_delay,
        queue_capacity=queue_capacity,
        window=window,
    )

    rows = []
    for index, arrival in enumerate(arrivals):
        if arrival == "poisson":
            offsets = poisson_schedule(rate, duration, seed=seed + index)
        elif arrival == "bursty":
            offsets = bursty_schedule(rate, duration, seed=seed + index)
        else:
            raise ValueError(f"unknown arrival process {arrival!r}; known: {ARRIVALS}")
        schedule = make_schedule(
            offsets,
            pool,
            tenants=tenants,
            queries_per_arrival=queries_per_arrival,
            zipf_s=zipf_s,
            seed=seed + index,
        )
        service = QueryService(QueryEngine(backend), accelerator, config)
        with service:
            loop = run_open_loop(service, schedule)
        stats = service.stats
        replay = service.result()
        latencies_ms = [latency * 1e3 for latency in stats.latencies]
        wall = max(loop.wall_seconds, 1e-12)
        retry_afters = loop.retry_afters
        rows.append(
            ServingBenchRow(
                arrival=arrival,
                offered_qps=rate * queries_per_arrival,
                duration_s=duration,
                submitted=loop.offered,
                accepted=loop.accepted,
                rejected=loop.rejected,
                completed=stats.completed,
                batches=stats.batches,
                flushes=stats.flushes,
                merge_ratio=replay.merge_ratio,
                scheduled_requests=replay.requests,
                bases_processed=replay.bases_processed,
                wall_seconds=loop.wall_seconds,
                mbase_per_second=replay.bases_processed / wall / 1e6,
                model_mbase_per_second=replay.throughput.mbase_per_second,
                p50_ms=_percentile(latencies_ms, 50.0),
                p95_ms=_percentile(latencies_ms, 95.0),
                p99_ms=_percentile(latencies_ms, 99.0),
                max_ms=max(latencies_ms) if latencies_ms else float("nan"),
                mean_retry_after_s=(
                    sum(retry_afters) / len(retry_afters) if retry_afters else 0.0
                ),
            )
        )

    return ServingBenchResult(
        rows=rows,
        genome_length=genome_length,
        k=table.k,
        rate=rate,
        duration=duration,
        tenants=tenants,
        queries_per_arrival=queries_per_arrival,
        query_length=query_length,
        pool_size=pool_size,
        zipf_s=zipf_s,
        max_batch=max_batch,
        max_delay=max_delay,
        window=window,
        queue_capacity=queue_capacity,
    )


def _percentile(values: list[float], q: float) -> float:
    from ..serving import percentile

    return percentile(values, q)


def format_serving(result: ServingBenchResult) -> str:
    """Render the serving benchmark table."""
    lines = [
        "Serving - sustained open-loop load through the always-on service "
        f"(human {result.genome_length:,} bp, k={result.k}, "
        f"{result.rate:.0f} arrivals/s x {result.queries_per_arrival} queries, "
        f"{result.tenants} tenants, W={result.window}, "
        f"batch<={result.max_batch} @ {result.max_delay * 1e3:.1f} ms)"
    ]
    lines.append(
        f"{'arrival':>8s} {'offered':>8s} {'accept':>7s} {'reject':>7s} "
        f"{'batches':>8s} {'flushes':>8s} {'merge':>6s} {'Mbase/s':>8s} "
        f"{'p50 ms':>7s} {'p99 ms':>7s} {'max ms':>7s}"
    )
    for row in result.rows:
        lines.append(
            f"{row.arrival:>8s} {row.submitted:8d} {row.accepted:7d} {row.rejected:7d} "
            f"{row.batches:8d} {row.flushes:8d} {row.merge_ratio:5.2f}x "
            f"{row.mbase_per_second:8.3f} {row.p50_ms:7.2f} {row.p99_ms:7.2f} "
            f"{row.max_ms:7.2f}"
        )
    return "\n".join(lines)


def serving_report(result: ServingBenchResult, **workload) -> dict:
    """The benchmark as a JSON-ready record (``BENCH_serving.json``)."""
    return {
        "benchmark": "serving",
        "workload": {
            "genome_length": result.genome_length,
            "k": result.k,
            "rate": result.rate,
            "duration_s": result.duration,
            "tenants": result.tenants,
            "queries_per_arrival": result.queries_per_arrival,
            "query_length": result.query_length,
            "pool_size": result.pool_size,
            "zipf_s": result.zipf_s,
            "max_batch": result.max_batch,
            "max_delay_s": result.max_delay,
            "window": result.window,
            "queue_capacity": result.queue_capacity,
            **dict(workload),
        },
        "rows": [
            {
                "arrival": row.arrival,
                "offered_qps": row.offered_qps,
                "duration_s": row.duration_s,
                "submitted": row.submitted,
                "accepted": row.accepted,
                "rejected": row.rejected,
                "completed": row.completed,
                "batches": row.batches,
                "flushes": row.flushes,
                "merge_ratio": round(row.merge_ratio, 4),
                "scheduled_requests": row.scheduled_requests,
                "bases_processed": row.bases_processed,
                "wall_seconds": round(row.wall_seconds, 6),
                "mbase_per_second": round(row.mbase_per_second, 6),
                "model_mbase_per_second": round(row.model_mbase_per_second, 4),
                "p50_ms": round(row.p50_ms, 4),
                "p95_ms": round(row.p95_ms, 4),
                "p99_ms": round(row.p99_ms, 4),
                "max_ms": round(row.max_ms, 4),
                "mean_retry_after_s": round(row.mean_retry_after_s, 6),
            }
            for row in result.rows
        ],
    }


def write_serving_json(path: str, result: ServingBenchResult, **workload) -> dict:
    """Write :func:`serving_report` to *path*; returns the record."""
    report = serving_report(result, **workload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report
