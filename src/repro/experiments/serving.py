"""Serving benchmark — sustained throughput *and* tail latency under
open-loop load, plus the offered-load saturation sweep.

The batch-harness figures measure how fast the accelerator model chews
through a pre-materialised stream; a serving system is judged on what it
*sustains* while clients keep arriving: throughput, p50/p99 latency and
backpressure behaviour, reported together the way the SPEChpc benchmarking
papers record sustained rates next to their scaling trajectories.  Two
harnesses share one stack (index, accelerator, Zipf query pool):

* :func:`run_serving_bench` — the headline rows: one
  :class:`~repro.serving.service.QueryService` per (workers, arrival
  process) cell driven by the open-loop generator
  (:mod:`repro.serving.loadgen`) at a fixed offered rate, recording
  sustained Mbase/s, p50/p95/p99/max latency and admission accounting;
* :func:`run_saturation_sweep` — the knee study: for each worker count
  and arrival process, walk a **multiplicative rate ladder**
  (:func:`~repro.serving.loadgen.rate_ladder`) and record the
  rejection-rate and latency-vs-load curve.  The **knee** is the last
  rung the service absorbs with its rejection rate under the threshold;
  the sweep only proves saturation was *reached* when the top rung
  actually rejects (``saturated``), which ``scripts/ci_gates.py --gate serving``
  gates on — a ladder that never overloads the service measures nothing.

Both land in ``BENCH_serving.json`` (rows + ``sweep``), gated at toy
scale by ``scripts/ci_gates.py --gate serving`` in the CI bench-smoke leg and at
multicore scale — where workers=2 must sustain strictly more than
workers=1 at the knee — in the tests-multicore leg.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Sequence

from ..accel.config import exma_full_config
from ..accel.exma_accelerator import ExmaAccelerator
from ..engine.backends import ExmaBackend
from ..engine.engine import QueryEngine
from ..exma.table import ExmaTable
from ..genome.datasets import build_dataset
from ..serving import (
    QueryService,
    ServingConfig,
    bursty_schedule,
    make_schedule,
    percentile,
    poisson_schedule,
    rate_ladder,
    run_open_loop,
    sample_query_pool,
)
from .common import DEFAULT_STEP
from .fig18_throughput import _scaled_config

__all__ = [
    "SaturationCurve",
    "SaturationRung",
    "SaturationStudy",
    "ServingBenchResult",
    "ServingBenchRow",
    "format_saturation",
    "format_serving",
    "run_saturation_sweep",
    "run_serving_bench",
    "serving_report",
    "write_serving_json",
]

#: Arrival processes the benchmark sweeps, in recording order.
ARRIVALS = ("poisson", "bursty")

#: Worker counts the saturation study sweeps by default.
DEFAULT_WORKERS = (1, 2, 4)

#: A rung whose rejection rate stays under this fraction counts as
#: absorbed; the knee is the last absorbed rung of the ladder.
KNEE_REJECTION_THRESHOLD = 0.01


@dataclass(frozen=True)
class ServingBenchRow:
    """One (workers, arrival process) sustained-load measurement."""

    arrival: str
    workers: int
    #: Offered load: arrivals/s × queries per arrival.
    offered_qps: float
    duration_s: float
    submitted: int
    accepted: int
    rejected: int
    completed: int
    batches: int
    flushes: int
    #: Issued-to-scheduled ratio across all flushes (window merge win).
    merge_ratio: float
    scheduled_requests: int
    bases_processed: int
    #: First submit → last completion, wall clock.
    wall_seconds: float
    #: Sustained throughput: bases processed / wall seconds.
    mbase_per_second: float
    #: The accelerator model's own throughput over the same stream.
    model_mbase_per_second: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    mean_retry_after_s: float


@dataclass(frozen=True)
class ServingBenchResult:
    """All (workers × arrival) rows plus the workload shape."""

    rows: list[ServingBenchRow]
    genome_length: int
    k: int
    rate: float
    duration: float
    tenants: int
    queries_per_arrival: int
    query_length: int
    pool_size: int
    zipf_s: float
    max_batch: int
    max_delay: float
    window: int
    queue_capacity: int
    workers: tuple[int, ...]


@dataclass(frozen=True)
class SaturationRung:
    """One rung of the offered-load ladder for one (workers, arrival)."""

    rate: float
    offered_qps: float
    submitted: int
    accepted: int
    rejected: int
    completed: int
    wall_seconds: float
    mbase_per_second: float
    p50_ms: float
    p99_ms: float
    mean_retry_after_s: float

    @property
    def rejection_rate(self) -> float:
        """Fraction of offered queries bounced by backpressure."""
        return self.rejected / self.submitted if self.submitted else 0.0


@dataclass(frozen=True)
class SaturationCurve:
    """One (workers, arrival) rejection/latency-vs-load curve."""

    arrival: str
    workers: int
    rungs: list[SaturationRung]
    #: Rung index of the knee: the last rung whose rejection rate stays
    #: under the threshold (0 when even the first rung rejects more).
    knee_index: int

    @property
    def knee(self) -> SaturationRung:
        """The knee rung — the highest absorbed offered load."""
        return self.rungs[self.knee_index]

    @property
    def saturated(self) -> bool:
        """Whether the ladder actually drove the service past the knee
        (the top rung rejected work); False means the sweep never reached
        saturation and the knee is a lower bound only."""
        return self.rungs[-1].rejected > 0


@dataclass(frozen=True)
class SaturationStudy:
    """The full sweep: curves for every (workers, arrival) pair."""

    curves: list[SaturationCurve]
    base_rate: float
    multipliers: tuple[float, ...]
    duration: float
    queue_capacity: int
    knee_rejection_threshold: float

    def curve(self, arrival: str, workers: int) -> SaturationCurve:
        """The curve of one (arrival, workers) pair."""
        for candidate in self.curves:
            if candidate.arrival == arrival and candidate.workers == workers:
                return candidate
        raise KeyError(f"no curve for arrival={arrival!r}, workers={workers}")


def _build_stack(genome_length, seed, k, query_length, pool_size):
    """One shared index/accelerator/pool for every service the harness runs."""
    reference = build_dataset("human", simulated_length=genome_length, seed=seed)
    table = ExmaTable(reference.sequence, k=k)
    backend = ExmaBackend(table=table)
    accelerator = ExmaAccelerator(table, None, _scaled_config(exma_full_config()))
    pool = sample_query_pool(
        reference.sequence, pool_size=pool_size, length=query_length, seed=seed
    )
    return table, backend, accelerator, pool


def _schedule(arrival, rate, duration, seed, pool, tenants, queries_per_arrival, zipf_s):
    if arrival == "poisson":
        offsets = poisson_schedule(rate, duration, seed=seed)
    elif arrival == "bursty":
        offsets = bursty_schedule(rate, duration, seed=seed)
    else:
        raise ValueError(f"unknown arrival process {arrival!r}; known: {ARRIVALS}")
    return make_schedule(
        offsets,
        pool,
        tenants=tenants,
        queries_per_arrival=queries_per_arrival,
        zipf_s=zipf_s,
        seed=seed,
    )


def run_serving_bench(
    genome_length: int = 20_000,
    seed: int = 0,
    rate: float = 500.0,
    duration: float = 1.0,
    tenants: int = 4,
    queries_per_arrival: int = 4,
    query_length: int = 28,
    pool_size: int = 512,
    zipf_s: float = 1.1,
    k: int = DEFAULT_STEP,
    max_batch: int = 64,
    max_delay: float = 0.005,
    window: int = 2,
    queue_capacity: int = 4096,
    arrivals: tuple[str, ...] = ARRIVALS,
    workers: Sequence[int] | int = (1,),
) -> ServingBenchResult:
    """Measure the serving layer under open-loop Poisson and bursty load.

    One index, one accelerator model; a fresh :class:`~repro.serving
    .service.QueryService` per (workers, arrival process) cell so the
    stats and latencies are per-row.  Rejected arrivals are counted, not
    retried — open loop.
    """
    if isinstance(workers, int):
        workers = (workers,)
    workers = tuple(int(count) for count in workers)
    _, backend, accelerator, pool = _build_stack(
        genome_length, seed, k, query_length, pool_size
    )

    rows = []
    for worker_count in workers:
        config = ServingConfig(
            max_batch=max_batch,
            max_delay=max_delay,
            queue_capacity=queue_capacity,
            window=window,
            workers=worker_count,
        )
        for index, arrival in enumerate(arrivals):
            schedule = _schedule(
                arrival, rate, duration, seed + index, pool,
                tenants, queries_per_arrival, zipf_s,
            )
            service = QueryService(QueryEngine(backend), accelerator, config)
            with service:
                loop = run_open_loop(service, schedule)
            stats = service.stats
            replay = service.result()
            latencies_ms = [latency * 1e3 for latency in stats.latencies]
            wall = max(loop.wall_seconds, 1e-12)
            retry_afters = loop.retry_afters
            rows.append(
                ServingBenchRow(
                    arrival=arrival,
                    workers=worker_count,
                    offered_qps=rate * queries_per_arrival,
                    duration_s=duration,
                    submitted=loop.offered,
                    accepted=loop.accepted,
                    rejected=loop.rejected,
                    completed=stats.completed,
                    batches=stats.batches,
                    flushes=stats.flushes,
                    merge_ratio=replay.merge_ratio,
                    scheduled_requests=replay.requests,
                    bases_processed=replay.bases_processed,
                    wall_seconds=loop.wall_seconds,
                    mbase_per_second=replay.bases_processed / wall / 1e6,
                    model_mbase_per_second=replay.throughput.mbase_per_second,
                    p50_ms=percentile(latencies_ms, 50.0),
                    p95_ms=percentile(latencies_ms, 95.0),
                    p99_ms=percentile(latencies_ms, 99.0),
                    max_ms=max(latencies_ms) if latencies_ms else float("nan"),
                    mean_retry_after_s=(
                        sum(retry_afters) / len(retry_afters) if retry_afters else 0.0
                    ),
                )
            )

    return ServingBenchResult(
        rows=rows,
        genome_length=genome_length,
        k=DEFAULT_STEP if k is None else k,
        rate=rate,
        duration=duration,
        tenants=tenants,
        queries_per_arrival=queries_per_arrival,
        query_length=query_length,
        pool_size=pool_size,
        zipf_s=zipf_s,
        max_batch=max_batch,
        max_delay=max_delay,
        window=window,
        queue_capacity=queue_capacity,
        workers=workers,
    )


def run_saturation_sweep(
    genome_length: int = 20_000,
    seed: int = 0,
    base_rate: float = 500.0,
    multipliers: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 16.0),
    duration: float = 0.5,
    tenants: int = 4,
    queries_per_arrival: int = 4,
    query_length: int = 28,
    pool_size: int = 512,
    zipf_s: float = 1.1,
    k: int = DEFAULT_STEP,
    max_batch: int = 64,
    max_delay: float = 0.005,
    window: int = 2,
    queue_capacity: int = 512,
    arrivals: tuple[str, ...] = ARRIVALS,
    workers: Sequence[int] = DEFAULT_WORKERS,
    knee_rejection_threshold: float = KNEE_REJECTION_THRESHOLD,
) -> SaturationStudy:
    """Walk the offered-load ladder to the knee for every worker count.

    Every (workers, arrival, rung) cell runs a fresh service against the
    same index/accelerator/pool, open-loop; the schedule of a given
    (arrival, rung) is identical across worker counts, so the curves are
    directly comparable.  The default ``queue_capacity`` is deliberately
    tighter than the headline bench — the sweep must drive the queue past
    its bound at the top rung (``SaturationCurve.saturated``) or the knee
    was never reached and the sweep is reported as inconclusive.
    """
    workers = tuple(int(count) for count in workers)
    rates = rate_ladder(base_rate, multipliers)
    _, backend, accelerator, pool = _build_stack(
        genome_length, seed, k, query_length, pool_size
    )

    curves = []
    for worker_count in workers:
        config = ServingConfig(
            max_batch=max_batch,
            max_delay=max_delay,
            queue_capacity=queue_capacity,
            window=window,
            workers=worker_count,
        )
        for index, arrival in enumerate(arrivals):
            rungs = []
            for rung_index, rate in enumerate(rates):
                schedule = _schedule(
                    arrival, rate, duration, seed + index + 101 * rung_index,
                    pool, tenants, queries_per_arrival, zipf_s,
                )
                service = QueryService(QueryEngine(backend), accelerator, config)
                with service:
                    loop = run_open_loop(service, schedule)
                stats = service.stats
                replay = service.result()
                latencies_ms = [latency * 1e3 for latency in stats.latencies]
                wall = max(loop.wall_seconds, 1e-12)
                retry_afters = loop.retry_afters
                rungs.append(
                    SaturationRung(
                        rate=rate,
                        offered_qps=rate * queries_per_arrival,
                        submitted=loop.offered,
                        accepted=loop.accepted,
                        rejected=loop.rejected,
                        completed=stats.completed,
                        wall_seconds=loop.wall_seconds,
                        mbase_per_second=replay.bases_processed / wall / 1e6,
                        p50_ms=percentile(latencies_ms, 50.0),
                        p99_ms=percentile(latencies_ms, 99.0),
                        mean_retry_after_s=(
                            sum(retry_afters) / len(retry_afters)
                            if retry_afters
                            else 0.0
                        ),
                    )
                )
            knee_index = 0
            for rung_index, rung in enumerate(rungs):
                if rung.rejection_rate <= knee_rejection_threshold:
                    knee_index = rung_index
            curves.append(
                SaturationCurve(
                    arrival=arrival,
                    workers=worker_count,
                    rungs=rungs,
                    knee_index=knee_index,
                )
            )

    return SaturationStudy(
        curves=curves,
        base_rate=base_rate,
        multipliers=tuple(float(multiplier) for multiplier in multipliers),
        duration=duration,
        queue_capacity=queue_capacity,
        knee_rejection_threshold=knee_rejection_threshold,
    )


def format_serving(result: ServingBenchResult) -> str:
    """Render the serving benchmark table."""
    lines = [
        "Serving - sustained open-loop load through the always-on service "
        f"(human {result.genome_length:,} bp, k={result.k}, "
        f"{result.rate:.0f} arrivals/s x {result.queries_per_arrival} queries, "
        f"{result.tenants} tenants, W={result.window}, "
        f"batch<={result.max_batch} @ {result.max_delay * 1e3:.1f} ms, "
        f"workers {list(result.workers)})"
    ]
    lines.append(
        f"{'arrival':>8s} {'wrk':>4s} {'offered':>8s} {'accept':>7s} {'reject':>7s} "
        f"{'batches':>8s} {'flushes':>8s} {'merge':>6s} {'Mbase/s':>8s} "
        f"{'p50 ms':>7s} {'p99 ms':>7s} {'max ms':>7s}"
    )
    for row in result.rows:
        lines.append(
            f"{row.arrival:>8s} {row.workers:4d} {row.submitted:8d} {row.accepted:7d} "
            f"{row.rejected:7d} {row.batches:8d} {row.flushes:8d} {row.merge_ratio:5.2f}x "
            f"{row.mbase_per_second:8.3f} {row.p50_ms:7.2f} {row.p99_ms:7.2f} "
            f"{row.max_ms:7.2f}"
        )
    return "\n".join(lines)


def format_saturation(study: SaturationStudy) -> str:
    """Render the saturation sweep: one block per (arrival, workers)."""
    lines = [
        "Saturation - offered-load ladder to the knee "
        f"(base {study.base_rate:.0f} arrivals/s x {list(study.multipliers)}, "
        f"{study.duration:.2f}s per rung, queue<={study.queue_capacity}, "
        f"knee at <={study.knee_rejection_threshold:.0%} rejected)"
    ]
    for curve in study.curves:
        knee = curve.knee
        lines.append(
            f"  {curve.arrival} x {curve.workers} worker(s): knee "
            f"{knee.offered_qps:.0f} qps @ {knee.mbase_per_second:.3f} Mbase/s"
            + ("" if curve.saturated else "  [top rung never rejected]")
        )
        lines.append(
            f"    {'offered':>8s} {'accept':>7s} {'reject':>7s} {'rej%':>6s} "
            f"{'Mbase/s':>8s} {'p50 ms':>7s} {'p99 ms':>7s} {'retry s':>8s}"
        )
        for rung_index, rung in enumerate(curve.rungs):
            marker = " <- knee" if rung_index == curve.knee_index else ""
            lines.append(
                f"    {rung.offered_qps:8.0f} {rung.accepted:7d} {rung.rejected:7d} "
                f"{rung.rejection_rate:6.1%} {rung.mbase_per_second:8.3f} "
                f"{rung.p50_ms:7.2f} {rung.p99_ms:7.2f} "
                f"{rung.mean_retry_after_s:8.4f}{marker}"
            )
    return "\n".join(lines)


def serving_report(
    result: ServingBenchResult,
    saturation: SaturationStudy | None = None,
    **workload,
) -> dict:
    """The benchmark as a JSON-ready record (``BENCH_serving.json``)."""
    report = {
        "benchmark": "serving",
        "workload": {
            "genome_length": result.genome_length,
            "k": result.k,
            "rate": result.rate,
            "duration_s": result.duration,
            "tenants": result.tenants,
            "queries_per_arrival": result.queries_per_arrival,
            "query_length": result.query_length,
            "pool_size": result.pool_size,
            "zipf_s": result.zipf_s,
            "max_batch": result.max_batch,
            "max_delay_s": result.max_delay,
            "window": result.window,
            "queue_capacity": result.queue_capacity,
            "workers": list(result.workers),
            "host_cpus": os.cpu_count(),
            **dict(workload),
        },
        "rows": [
            {
                "arrival": row.arrival,
                "workers": row.workers,
                "offered_qps": row.offered_qps,
                "duration_s": row.duration_s,
                "submitted": row.submitted,
                "accepted": row.accepted,
                "rejected": row.rejected,
                "completed": row.completed,
                "batches": row.batches,
                "flushes": row.flushes,
                "merge_ratio": round(row.merge_ratio, 4),
                "scheduled_requests": row.scheduled_requests,
                "bases_processed": row.bases_processed,
                "wall_seconds": round(row.wall_seconds, 6),
                "mbase_per_second": round(row.mbase_per_second, 6),
                "model_mbase_per_second": round(row.model_mbase_per_second, 4),
                "p50_ms": round(row.p50_ms, 4),
                "p95_ms": round(row.p95_ms, 4),
                "p99_ms": round(row.p99_ms, 4),
                "max_ms": round(row.max_ms, 4),
                "mean_retry_after_s": round(row.mean_retry_after_s, 6),
            }
            for row in result.rows
        ],
    }
    if saturation is not None:
        report["sweep"] = {
            "base_rate": saturation.base_rate,
            "multipliers": list(saturation.multipliers),
            "duration_s": saturation.duration,
            "queue_capacity": saturation.queue_capacity,
            "knee_rejection_threshold": saturation.knee_rejection_threshold,
            "curves": [
                {
                    "arrival": curve.arrival,
                    "workers": curve.workers,
                    "knee_index": curve.knee_index,
                    "knee_offered_qps": curve.knee.offered_qps,
                    "knee_mbase_per_second": round(curve.knee.mbase_per_second, 6),
                    "saturated": curve.saturated,
                    "rungs": [
                        {
                            "rate": rung.rate,
                            "offered_qps": rung.offered_qps,
                            "submitted": rung.submitted,
                            "accepted": rung.accepted,
                            "rejected": rung.rejected,
                            "rejection_rate": round(rung.rejection_rate, 6),
                            "completed": rung.completed,
                            "wall_seconds": round(rung.wall_seconds, 6),
                            "mbase_per_second": round(rung.mbase_per_second, 6),
                            "p50_ms": round(rung.p50_ms, 4),
                            "p99_ms": round(rung.p99_ms, 4),
                            "mean_retry_after_s": round(rung.mean_retry_after_s, 6),
                        }
                        for rung in curve.rungs
                    ],
                }
                for curve in saturation.curves
            ],
        }
    return report


def write_serving_json(
    path: str,
    result: ServingBenchResult,
    saturation: SaturationStudy | None = None,
    **workload,
) -> dict:
    """Write :func:`serving_report` to *path*; returns the record."""
    report = serving_report(result, saturation=saturation, **workload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report
