"""Figs. 19 and 20 — application speedup and energy with EXMA.

Fig. 19 reports whole-application speedup (normalised to the CPU) when the
FM-Index searches run on EXMA: the speedup follows Amdahl's law from the
application's FM-Index time fraction (measured in the Fig. 1 experiment)
and the search speedup (measured in the Fig. 18 experiment).

Fig. 20 reports the corresponding energy, broken into DRAM chip, DRAM I/O,
accelerator dynamic, accelerator leakage and CPU energy; the CPU baseline
burns its full power for the whole run while the EXMA system idles the CPU
during searches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accel.metrics import ApplicationRun, geometric_mean
from ..apps.pipeline import application_energy, default_breakdown_model, run_application
from ..genome.datasets import build_dataset
from ..genome.reads import ILLUMINA, ONT_2D, PACBIO, ErrorProfile
from ..hw.energy import SystemEnergyBreakdown

#: Workload columns shared by Figs. 19 and 20.
WORKLOADS: tuple[tuple[str, ErrorProfile], ...] = (
    ("alignment", ILLUMINA),
    ("assembly", ILLUMINA),
    ("alignment", ONT_2D),
    ("assembly", ONT_2D),
    ("alignment", PACBIO),
    ("assembly", PACBIO),
    ("annotate", ILLUMINA),
    ("compress", ILLUMINA),
)


@dataclass(frozen=True)
class ApplicationOutcome:
    """Speedup and energy of one workload on one dataset."""

    workload: str
    dataset: str
    run: ApplicationRun
    speedup: float
    baseline_energy: SystemEnergyBreakdown
    exma_energy: SystemEnergyBreakdown

    @property
    def normalised_energy(self) -> float:
        """EXMA system energy relative to the CPU baseline."""
        return self.exma_energy.total_j / max(self.baseline_energy.total_j, 1e-12)


@dataclass(frozen=True)
class Fig19_20Result:
    """All workload/dataset outcomes plus geometric means."""

    outcomes: list[ApplicationOutcome]
    search_speedup: float

    def gmean_speedup(self, dataset: str | None = None) -> float:
        """Geometric-mean application speedup (Fig. 19's gmean column)."""
        values = [
            o.speedup for o in self.outcomes if dataset is None or o.dataset == dataset
        ]
        return geometric_mean(values)

    def gmean_energy(self, dataset: str | None = None) -> float:
        """Geometric-mean normalised energy (Fig. 20's gmean column)."""
        values = [
            o.normalised_energy
            for o in self.outcomes
            if dataset is None or o.dataset == dataset
        ]
        return geometric_mean(values)


def run_fig19_20(
    search_speedup: float = 23.6,
    datasets: tuple[str, ...] = ("human", "picea", "pinus"),
    genome_length: int = 20_000,
    read_count: int = 8,
    seed: int = 0,
) -> Fig19_20Result:
    """Run the application workloads and derive speedup and energy.

    ``search_speedup`` is the FM-Index search speedup of EXMA over the CPU
    (pass the measured Fig. 18 value to couple the experiments; the default
    is the paper's 23.6x).
    """
    model = default_breakdown_model()
    outcomes = []
    for dataset_index, dataset in enumerate(datasets):
        reference = build_dataset(dataset, simulated_length=genome_length, seed=seed + dataset_index)
        for application, profile in WORKLOADS:
            read_length = 101 if profile is ILLUMINA else 300
            work = run_application(
                application,
                reference,
                profile,
                read_count=read_count,
                read_length=read_length,
                seed=seed,
            )
            run = model.breakdown(application, dataset, work)
            speedup = run.speedup_with_search_speedup(search_speedup)
            baseline, exma = application_energy(run, search_speedup)
            outcomes.append(
                ApplicationOutcome(
                    workload=f"{application}-{profile.name}",
                    dataset=dataset,
                    run=run,
                    speedup=speedup,
                    baseline_energy=baseline,
                    exma_energy=exma,
                )
            )
    return Fig19_20Result(outcomes=outcomes, search_speedup=search_speedup)


def format_fig19(result: Fig19_20Result) -> str:
    """Render the speedup table."""
    lines = ["Fig. 19 - application speedup over CPU"]
    for outcome in result.outcomes:
        lines.append(f"{outcome.dataset:7s} {outcome.workload:22s} {outcome.speedup:6.2f}x")
    lines.append(f"gmean {result.gmean_speedup():.2f}x")
    return "\n".join(lines)


def format_fig20(result: Fig19_20Result) -> str:
    """Render the normalised-energy table."""
    lines = ["Fig. 20 - energy normalised to CPU baseline"]
    for outcome in result.outcomes:
        lines.append(
            f"{outcome.dataset:7s} {outcome.workload:22s} {outcome.normalised_energy:6.2f}"
        )
    lines.append(f"gmean {result.gmean_energy():.2f}")
    return "\n".join(lines)
