"""Figs. 11 and 12 — increment distributions and the EXMA-15 profile.

Fig. 11 shows that the increments of different k-mers follow similar
distributions (the Stein's-paradox argument for multi-task learning).
Fig. 12 profiles EXMA-15 with the naive learned index: (a) how many k-mers
fall into each increment-count bucket, and (b) how much of the total search
time the heavy k-mers consume because their predictions are bad.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exma.learned_index import NaiveLearnedIndex
from ..exma.table import ExmaTable
from ..genome.datasets import build_dataset

#: Increment-count bucket edges of Fig. 12 (scaled: the paper uses 2-256
#: up to >1M on a 3 Gbp genome; the same relative buckets are used here).
def bucket_edges(reference_length: int) -> list[int]:
    """Bucket edges proportional to the reference length."""
    fractions = [8.5e-8, 3.4e-7, 1.4e-6, 5.5e-6, 2.2e-5, 8.7e-5, 3.5e-4]
    edges = sorted({max(2, int(reference_length * f)) for f in fractions})
    return edges


@dataclass(frozen=True)
class DistributionSimilarity:
    """Fig. 11: how similar the increment CDFs of different k-mers are."""

    kmer_count: int
    mean_pairwise_ks_distance: float
    max_pairwise_ks_distance: float


@dataclass(frozen=True)
class ProfileBucket:
    """One bucket of Fig. 12: k-mer share and search-time share."""

    lower: int
    upper: int | None
    kmer_fraction: float
    search_time_fraction: float
    mean_prediction_error: float


@dataclass(frozen=True)
class Fig11_12Result:
    """Both figures' data."""

    similarity: DistributionSimilarity
    buckets: list[ProfileBucket]


def _normalised_cdf(increments: np.ndarray, reference_length: int, points: int = 50) -> np.ndarray:
    """Sample a k-mer's increment CDF at evenly spaced positions."""
    grid = np.linspace(0, reference_length, points)
    return np.searchsorted(increments, grid) / max(1, increments.size)


def increment_similarity(table: ExmaTable, top_kmers: int = 12) -> DistributionSimilarity:
    """Fig. 11: pairwise Kolmogorov-Smirnov distance of increment CDFs.

    Small distances mean the distributions look alike, which is what makes
    the shared MTL model effective.
    """
    frequencies = table.frequencies()
    order = np.argsort(frequencies)[::-1]
    chosen = [int(p) for p in order[:top_kmers] if frequencies[p] > 1]
    cdfs = [
        _normalised_cdf(table.increments_of(p), table.reference_length) for p in chosen
    ]
    distances = []
    for i in range(len(cdfs)):
        for j in range(i + 1, len(cdfs)):
            distances.append(float(np.max(np.abs(cdfs[i] - cdfs[j]))))
    if not distances:
        distances = [0.0]
    return DistributionSimilarity(
        kmer_count=len(chosen),
        mean_pairwise_ks_distance=float(np.mean(distances)),
        max_pairwise_ks_distance=float(np.max(distances)),
    )


def exma_profile(
    table: ExmaTable, index: NaiveLearnedIndex, samples_per_kmer: int = 30, seed: int = 0
) -> list[ProfileBucket]:
    """Fig. 12: per-bucket k-mer share, time share and prediction error.

    Search time per k-mer is modelled as (2 + error) increment entries per
    lookup, which is exactly the verify-and-linear-search cost the hardware
    pays; the bucket's time share is its k-mers' share of that cost
    weighted by how often they are looked up (proportional to frequency).
    """
    rng = np.random.default_rng(seed)
    frequencies = table.frequencies()
    present = table.present_kmers()
    edges = bucket_edges(table.reference_length)
    boundaries = [0, *edges, None]

    per_kmer_error: dict[int, float] = {}
    for packed in present:
        if not index.has_model(packed):
            per_kmer_error[packed] = 0.0
            continue
        positions = rng.integers(0, table.reference_length + 1, size=samples_per_kmer)
        errors = [index.lookup(packed, int(pos))[1] for pos in positions]
        per_kmer_error[packed] = float(np.mean(errors))

    total_time = 0.0
    bucket_time = [0.0] * (len(boundaries) - 1)
    bucket_kmers = [0] * (len(boundaries) - 1)
    for packed in present:
        count = int(frequencies[packed])
        error = per_kmer_error[packed]
        time = count * (2.0 + error)
        total_time += time
        for b in range(len(boundaries) - 1):
            lower = boundaries[b]
            upper = boundaries[b + 1]
            if count > lower and (upper is None or count <= upper):
                bucket_time[b] += time
                bucket_kmers[b] += 1
                break

    total_kmers = max(1, len(present))
    buckets = []
    for b in range(len(boundaries) - 1):
        lower = boundaries[b]
        upper = boundaries[b + 1]
        members = [
            per_kmer_error[p]
            for p in present
            if frequencies[p] > lower and (upper is None or frequencies[p] <= upper)
        ]
        buckets.append(
            ProfileBucket(
                lower=lower,
                upper=upper,
                kmer_fraction=bucket_kmers[b] / total_kmers,
                search_time_fraction=bucket_time[b] / total_time if total_time else 0.0,
                mean_prediction_error=float(np.mean(members)) if members else 0.0,
            )
        )
    return buckets


def run_fig11_12(
    genome_length: int = 30_000, k: int = 6, seed: int = 0
) -> Fig11_12Result:
    """Run both figures on the scaled human dataset."""
    reference = build_dataset("human", simulated_length=genome_length, seed=seed)
    table = ExmaTable(reference.sequence, k=k)
    index = NaiveLearnedIndex(table, model_threshold=16, increments_per_leaf=256)
    similarity = increment_similarity(table)
    buckets = exma_profile(table, index, seed=seed)
    return Fig11_12Result(similarity=similarity, buckets=buckets)
