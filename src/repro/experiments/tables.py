"""Tables I and II — hardware configuration and accelerator comparison.

Table I is the EXMA accelerator's component inventory (areas, per-op
energies, totals) plus the CPU and DRAM configuration; the experiment
simply exposes it programmatically and checks the totals.  Table II
compares all accelerators (GPU, FPGA, ASIC, MEDAL, FindeR, EXMA) on the
pinus dataset in Mbase/s and Mbase/s/W.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accel.baselines import standard_accelerator_suite
from ..accel.config import DEFAULT_CPU_CONFIG
from ..accel.metrics import SearchThroughput
from ..hw.dram import DDR4Config
from ..hw.energy import (
    EXMA_ACCELERATOR_AREA_MM2,
    EXMA_ACCELERATOR_LEAKAGE_W,
    EXMA_COMPONENTS,
    ComponentSpec,
)


@dataclass(frozen=True)
class Table1Result:
    """Programmatic view of Table I."""

    components: tuple[ComponentSpec, ...]
    total_area_mm2: float
    reported_area_mm2: float
    leakage_w: float
    cpu_cores: int
    cpu_llc_mb: int
    dram_channels: int
    dram_capacity_gb: int
    dram_timings: tuple[int, int, int]

    @property
    def area_matches_reported(self) -> bool:
        """Whether summed component area is within 5 % of the reported total."""
        return abs(self.total_area_mm2 - self.reported_area_mm2) / self.reported_area_mm2 < 0.05


def run_table1() -> Table1Result:
    """Collect the Table I configuration."""
    dram = DDR4Config()
    total_area = sum(component.area_mm2 for component in EXMA_COMPONENTS)
    return Table1Result(
        components=EXMA_COMPONENTS,
        total_area_mm2=total_area,
        reported_area_mm2=EXMA_ACCELERATOR_AREA_MM2,
        leakage_w=EXMA_ACCELERATOR_LEAKAGE_W,
        cpu_cores=DEFAULT_CPU_CONFIG.cores,
        cpu_llc_mb=DEFAULT_CPU_CONFIG.llc_mb,
        dram_channels=dram.channels,
        dram_capacity_gb=dram.total_capacity_gb,
        dram_timings=(dram.trcd, dram.tcas, dram.trp),
    )


@dataclass(frozen=True)
class Table2Row:
    """One column of Table II."""

    name: str
    algorithm: str
    mem_gb: int
    acc_power_w: float
    mem_power_w: float
    mbase_per_second: float
    mbase_per_second_per_watt: float


def run_table2(
    dataset_size_gb: float = 128.0, mean_exma_error: float = 182.0
) -> list[Table2Row]:
    """The Table II accelerator comparison on a pinus-scale dataset."""
    rows = []
    dram = DDR4Config()
    for device in standard_accelerator_suite(mean_exma_error=mean_exma_error):
        throughput = device.throughput(dram, dataset_size_gb=dataset_size_gb)
        rows.append(
            Table2Row(
                name=device.name,
                algorithm=device.algorithm,
                mem_gb=dram.total_capacity_gb,
                acc_power_w=device.device_power_w,
                mem_power_w=throughput.dram_power_w,
                mbase_per_second=throughput.mbase_per_second,
                mbase_per_second_per_watt=throughput.mbase_per_second_per_watt,
            )
        )
    return rows


def format_table2(rows: list[Table2Row]) -> str:
    """Render Table II."""
    lines = ["Table II - accelerator comparison (pinus-scale)"]
    lines.append(
        f"{'device':8s} {'algorithm':10s} {'Mem(GB)':>8s} {'AccP(W)':>8s} "
        f"{'MemP(W)':>8s} {'Mbase/s':>9s} {'Mb/s/W':>8s}"
    )
    for row in rows:
        lines.append(
            f"{row.name:8s} {row.algorithm:10s} {row.mem_gb:8d} {row.acc_power_w:8.2f} "
            f"{row.mem_power_w:8.1f} {row.mbase_per_second:9.1f} "
            f"{row.mbase_per_second_per_watt:8.2f}"
        )
    return "\n".join(lines)


def table2_throughputs(rows: list[Table2Row]) -> dict[str, SearchThroughput]:
    """Convert Table II rows back into throughput records (for tests)."""
    return {
        row.name: SearchThroughput(
            name=row.name,
            bases_processed=int(row.mbase_per_second * 1e6),
            seconds=1.0,
            accelerator_power_w=row.acc_power_w,
            dram_power_w=row.mem_power_w,
        )
        for row in rows
    }
