"""Fig. 15 — scheduling-window sweep: coalescing across consecutive batches.

The paper's Fig. 15 sweeps the size of the scheduling window within which
the accelerator may merge duplicate ``(k-mer, pos)`` requests: the wider
the window, the longer the replayed stream and the more duplicates fall
inside one merge.  At reproduction scale we generate a stream of
consecutive query batches (consecutive read batches off one reference),
run each through the batched engine — optionally sharded across a worker
pool — and replay the per-batch request streams through a
:class:`~repro.engine.window.CoalescingWindow` at each sweep point.

Window capacities are swept in powers of two because aligned
divide-each-other capacities make the post-merge request count provably
monotone non-increasing in W (every 2W-window is the union of two aligned
W-windows); the benchmark suite asserts exactly that.

A second harness, :func:`run_shard_scaling`, times the sharded engine
against the serial baseline on the same workload — the strong-scaling
companion the sweep rows are validated against.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

from ..engine.backends import ExmaBackend
from ..engine.engine import QueryEngine
from ..engine.window import CoalescingWindow
from ..exma.table import ExmaTable
from ..genome.datasets import build_dataset
from .common import DEFAULT_STEP, sample_queries

__all__ = [
    "Fig15Result",
    "Fig15Row",
    "ShardScalingRow",
    "format_fig15",
    "format_shard_scaling",
    "run_fig15_window",
    "run_shard_scaling",
    "shard_scaling_report",
    "write_shard_scaling_json",
]


@dataclass(frozen=True)
class Fig15Row:
    """One sweep point: the stream after a window of W batches."""

    window: int
    windows_flushed: int
    #: Requests entering the window stage (post per-batch coalescing).
    pre_merge_requests: int
    #: Requests surviving the cross-batch merge.
    post_merge_requests: int
    #: CAM batches the 2-stage scheduler cuts the merged stream into.
    scheduled_batches: int

    @property
    def merge_ratio(self) -> float:
        """Pre-to-post request ratio (1.0 means nothing merged)."""
        if self.post_merge_requests == 0:
            return 1.0
        return self.pre_merge_requests / self.post_merge_requests


@dataclass(frozen=True)
class Fig15Result:
    """The full sweep plus the workload shape it ran on."""

    rows: list[Fig15Row]
    batch_count: int
    batch_size: int
    shards: int
    executor: str


def _batch_streams(
    engine: QueryEngine,
    reference: str,
    seed: int,
    batch_count: int,
    batch_size: int,
    query_length: int,
) -> list[list]:
    """Per-batch coalesced request streams of consecutive read batches."""
    streams = []
    for batch_index in range(batch_count):
        queries = sample_queries(
            reference, count=batch_size, length=query_length, seed=seed + batch_index
        )
        requests, _stats = engine.request_stream(queries)
        streams.append(requests)
    return streams


def run_fig15_window(
    genome_length: int = 20_000,
    seed: int = 0,
    windows: tuple[int, ...] = (1, 2, 4, 8),
    batch_count: int = 8,
    batch_size: int = 32,
    k: int = DEFAULT_STEP,
    query_length: int = 48,
    shards: int | None = None,
    executor: str | None = None,
    cam_entries: int = 64,
) -> Fig15Result:
    """Sweep the coalescing window over a stream of consecutive batches.

    ``shards``/``executor`` follow the engine's semantics: ``None`` defers
    to the ``REPRO_DEFAULT_SHARDS``/``REPRO_DEFAULT_EXECUTOR`` toggles and
    invalid values are rejected at engine construction.
    """
    reference = build_dataset("human", simulated_length=genome_length, seed=seed)
    engine = QueryEngine(
        ExmaBackend(table=ExmaTable(reference.sequence, k=k)),
        shards=shards,
        executor=executor,
    )
    streams = _batch_streams(
        engine, reference.sequence, seed, batch_count, batch_size, query_length
    )
    pre_merge = sum(len(stream) for stream in streams)
    rows = []
    for window in windows:
        flushes = list(CoalescingWindow(window).stream(streams))
        post_merge = sum(flushed.unique for flushed in flushes)
        # Scheduling the merged stream through a cam_entries-deep CAM
        # issues consecutive full batches (the queue refills completely
        # between drains), so the batch count is a ceiling division — no
        # need to materialise request objects just to count batches.
        scheduled = -(-post_merge // cam_entries) if post_merge else 0
        rows.append(
            Fig15Row(
                window=window,
                windows_flushed=len(flushes),
                pre_merge_requests=pre_merge,
                post_merge_requests=post_merge,
                scheduled_batches=scheduled,
            )
        )
    return Fig15Result(
        rows=rows,
        batch_count=batch_count,
        batch_size=batch_size,
        shards=engine.shards,
        executor=engine.executor,
    )


def format_fig15(result: Fig15Result) -> str:
    """Render the window sweep table."""
    lines = [
        "Fig. 15 - coalescing-window sweep "
        f"({result.batch_count} batches x {result.batch_size} queries, "
        f"shards={result.shards}/{result.executor})"
    ]
    lines.append(
        f"{'W':>3s} {'windows':>8s} {'pre':>8s} {'post':>8s} {'merge':>7s} {'CAM batches':>12s}"
    )
    for row in result.rows:
        lines.append(
            f"{row.window:3d} {row.windows_flushed:8d} {row.pre_merge_requests:8d} "
            f"{row.post_merge_requests:8d} {row.merge_ratio:6.2f}x {row.scheduled_batches:12d}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Shard scaling (serial baseline vs worker pools)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ShardScalingRow:
    """Wall-clock of one shard count vs the serial baseline.

    ``shards`` is the *requested* count; ``effective_shards`` what the
    engine actually ran (the adaptive engine clamps to the hardware,
    degenerating to serial on a single-core host).  ``forced`` rows come
    from :class:`~repro.engine.sharded.ShardedQueryEngine`, which always
    runs the full split — they expose the split/merge overhead even when
    the hardware cannot parallelise it.
    """

    shards: int
    executor: str
    seconds: float
    serial_seconds: float
    effective_shards: int = 0
    forced: bool = False

    @property
    def speedup(self) -> float:
        """Serial-to-sharded wall-clock ratio (> 1 means sharding wins)."""
        return self.serial_seconds / max(self.seconds, 1e-12)


def run_shard_scaling(
    genome_length: int = 20_000,
    seed: int = 0,
    shard_counts: tuple[int, ...] = (1, 2, 4),
    executors: tuple[str, ...] = ("thread", "process"),
    batch_size: int = 256,
    k: int = DEFAULT_STEP,
    query_length: int = 48,
    repeats: int = 3,
    include_forced: bool = False,
) -> list[ShardScalingRow]:
    """Time sharded search against the serial engine on one batch.

    Results are identical by construction (the equivalence suite enforces
    it); this harness only measures wall-clock, best-of-*repeats*.  Each
    engine's persistent worker pool is warmed by an untimed first batch —
    the steady state the pools exist for — so the rows compare the
    replay-free contribution merge against the serial path, not pool
    spin-up.

    The default rows use the adaptive :class:`QueryEngine` applications
    use, which clamps the shard count to the available CPUs (never
    slower than serial by more than noise).  ``include_forced`` adds
    :class:`~repro.engine.sharded.ShardedQueryEngine` rows that run the
    full requested split regardless of hardware — on a single-core host
    (CI containers; :func:`shard_scaling_report` records ``host_cpus``)
    those measure the pure split/merge overhead, the quantity this
    harness exists to keep honest, as the SPEChpc single-rank sanity rows
    do.
    """
    from ..engine.sharded import ShardedQueryEngine

    reference = build_dataset("human", simulated_length=genome_length, seed=seed)
    backend = ExmaBackend(table=ExmaTable(reference.sequence, k=k))
    queries = sample_queries(
        reference.sequence, count=batch_size, length=query_length, seed=seed
    )

    # One engine per configuration, all warmed up front (index caches +
    # persistent pools), then timed round-robin with a rotating start:
    # every repeat visits every configuration once, and each
    # configuration is measured at every position in the round across
    # repeats, so clock-frequency / allocator drift and
    # previous-measurement side effects land on all rows equally instead
    # of biasing whichever config always ran first or last.
    configs: list[tuple[ShardScalingRow, QueryEngine]] = []
    serial_engine = QueryEngine(backend, shards=1)
    configs.append(
        (
            ShardScalingRow(
                shards=1, executor="serial", seconds=0.0, serial_seconds=0.0,
                effective_shards=1,
            ),
            serial_engine,
        )
    )
    engine_kinds = [(QueryEngine, False)]
    if include_forced:
        engine_kinds.append((ShardedQueryEngine, True))
    for engine_cls, forced in engine_kinds:
        for executor in executors:
            for shards in shard_counts:
                if shards <= 1:
                    continue
                engine = engine_cls(backend, shards=shards, executor=executor)
                configs.append(
                    (
                        ShardScalingRow(
                            shards=shards, executor=executor, seconds=0.0,
                            serial_seconds=0.0,
                            effective_shards=engine.effective_shards, forced=forced,
                        ),
                        engine,
                    )
                )
    try:
        for _, engine in configs:
            engine.search_batch(queries)  # warm caches and persistent pools
        best = [float("inf")] * len(configs)
        for round_index in range(repeats):
            for offset in range(len(configs)):
                index = (round_index + offset) % len(configs)
                engine = configs[index][1]
                best[index] = min(
                    best[index], _timed(lambda: engine.search_batch(queries))
                )
    finally:
        for _, engine in configs:
            engine.close()
    serial_seconds = best[0]
    return [
        ShardScalingRow(
            shards=row.shards,
            executor=row.executor,
            seconds=seconds,
            serial_seconds=serial_seconds,
            effective_shards=row.effective_shards,
            forced=row.forced,
        )
        for (row, _), seconds in zip(configs, best)
    ]


def _timed(thunk) -> float:
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


def format_shard_scaling(rows: list[ShardScalingRow]) -> str:
    """Render the shard-scaling table."""
    lines = ["Shard scaling - sharded vs serial engine (identical results)"]
    lines.append(
        f"{'shards':>7s} {'effective':>10s} {'executor':>9s} {'ms':>9s} {'speedup':>8s}"
    )
    for row in rows:
        executor = f"{row.executor}!" if row.forced else row.executor
        effective = row.effective_shards or row.shards
        lines.append(
            f"{row.shards:7d} {effective:10d} {executor:>9s} "
            f"{row.seconds * 1e3:9.2f} {row.speedup:7.2f}x"
        )
    lines.append("(! = forced full split via ShardedQueryEngine)")
    return "\n".join(lines)


def shard_scaling_report(rows: list[ShardScalingRow], **workload) -> dict:
    """The shard-scaling rows as a JSON-ready record.

    *workload* keyword arguments (genome length, batch size, ...) are
    recorded verbatim; ``host_cpus`` / ``available_cpus`` capture how
    much hardware parallelism the rows could possibly have seen
    (``available_cpus`` is affinity/cgroup-aware — the number the
    adaptive clamp actually used), so a 1-CPU CI container's numbers are
    not mistaken for a scaling ceiling.
    """
    from ..engine.sharded import available_parallelism

    return {
        "benchmark": "shard_scaling",
        "workload": dict(workload),
        "host_cpus": os.cpu_count(),
        "available_cpus": available_parallelism(),
        "rows": [
            {
                "shards": row.shards,
                "effective_shards": row.effective_shards or row.shards,
                "executor": row.executor,
                "forced": row.forced,
                "ms": round(row.seconds * 1e3, 3),
                "serial_ms": round(row.serial_seconds * 1e3, 3),
                "speedup": round(row.speedup, 3),
            }
            for row in rows
        ],
    }


def write_shard_scaling_json(path: str, rows: list[ShardScalingRow], **workload) -> dict:
    """Write :func:`shard_scaling_report` to *path*; returns the record."""
    report = shard_scaling_report(rows, **workload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report
