"""Fig. 18 — FM-Index search throughput of the EXMA variants vs the CPU.

The paper stacks four schemes on each dataset (human, picea, pinus),
normalised to the CPU running LISA-21:

* ``EXMA-15``  — the EXMA table + MTL index as software on the CPU;
* ``EX-acc``   — the same running on the accelerator with FR-FCFS and
  close-page DRAM;
* ``EX-2stage``— plus 2-stage scheduling;
* ``EXMA``     — plus the dynamic page policy.

At reproduction scale the accelerator variants are measured with the
trace-driven model on the scaled workload.  The on-chip caches are scaled
down in proportion to the base-array/index footprint so that scheduling
still matters (a 1 MB cache would trivially hold a 4^6-entry base array);
the scaling factor is reported alongside the results.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accel.baselines import CpuThroughputModel, SoftwareAlgorithm
from ..accel.config import ExmaAcceleratorConfig, ex_2stage_config, ex_acc_config, exma_full_config
from ..accel.exma_accelerator import AcceleratorRunResult, ExmaAccelerator
from ..exma.table import exma_size_breakdown
from ..genome.datasets import DATASETS, HUMAN_PAPER_LENGTH
from ..lisa.ipbwt import lisa_size_bytes
from .common import Workload, build_workload

GB = 1024**3

#: Cache capacities used at reproduction scale (the paper-scale 1 MB /
#: 32 KB caches shrink in proportion to the scaled base-array footprint).
SCALED_BASE_CACHE_BYTES = 8 * 1024
SCALED_INDEX_CACHE_BYTES = 1024


@dataclass(frozen=True)
class Fig18Row:
    """Normalised search throughput of the four schemes on one dataset."""

    dataset: str
    exma15_software: float
    ex_acc: float
    ex_2stage: float
    exma: float
    cpu_mbase_per_second: float
    exma_mbase_per_second: float


@dataclass(frozen=True)
class Fig18Result:
    """All datasets plus the raw accelerator runs."""

    rows: list[Fig18Row]
    runs: dict[str, dict[str, AcceleratorRunResult]]


def _scaled_config(base: ExmaAcceleratorConfig) -> ExmaAcceleratorConfig:
    """Shrink the caches to match the scaled data-structure footprint."""
    return base.with_overrides(
        base_cache_bytes=SCALED_BASE_CACHE_BYTES,
        index_cache_bytes=SCALED_INDEX_CACHE_BYTES,
        cam_entries=128,
    )


def concurrency_gain(
    accelerator_outstanding: int = 512, cpu_mshrs: int = 64, dram_efficiency: float = 0.5
) -> float:
    """Throughput gain from running searches on the accelerator.

    The CPU overlaps at most ``cpu_mshrs`` outstanding misses; the
    accelerator keeps its scheduling queue full.  ``dram_efficiency``
    accounts for the fraction of that extra concurrency the close-page
    DRAM system can actually absorb (calibration constant, recorded in
    EXPERIMENTS.md).
    """
    if cpu_mshrs <= 0:
        raise ValueError("cpu_mshrs must be positive")
    return max(1.0, accelerator_outstanding / cpu_mshrs * dram_efficiency)


def cpu_lisa_baseline(dataset: str, measured_lisa_error: float = 64.0) -> float:
    """CPU LISA-21 search throughput in bases/second for one dataset."""
    model = CpuThroughputModel()
    scale = DATASETS[dataset].paper_length / HUMAN_PAPER_LENGTH
    algorithm = SoftwareAlgorithm(
        name="CPU",
        symbols_per_iteration=21,
        index_node_accesses_per_lookup=2.0,
        scan_entries_per_lookup=measured_lisa_error,
        structure_size_gb=lisa_size_bytes(DATASETS[dataset].paper_length, 21) / GB,
    )
    del scale  # the structure size already carries the dataset scale
    return model.bases_per_second(algorithm)


def exma_software_throughput(workload: Workload, dataset: str) -> float:
    """EXMA-15 (software) throughput from the measured MTL error."""
    model = CpuThroughputModel()
    mean_error = workload.stats.mean_error
    algorithm = SoftwareAlgorithm(
        name="EXMA-15",
        symbols_per_iteration=15,
        index_node_accesses_per_lookup=1.0,
        scan_entries_per_lookup=mean_error,
        scan_entry_bytes=4,
        structure_size_gb=exma_size_breakdown(DATASETS[dataset].paper_length, 15).total / GB,
    )
    return model.bases_per_second(algorithm)


def run_fig18(
    genome_length: int = 60_000, seed: int = 0, datasets: tuple[str, ...] = ("human", "picea", "pinus")
) -> Fig18Result:
    """Measure all four schemes on every dataset."""
    rows = []
    runs: dict[str, dict[str, AcceleratorRunResult]] = {}
    for dataset in datasets:
        workload = build_workload(dataset, genome_length=genome_length, seed=seed)
        cpu_bases = cpu_lisa_baseline(dataset)
        sw_bases = exma_software_throughput(workload, dataset)

        dataset_runs: dict[str, AcceleratorRunResult] = {}
        variant_configs = {
            "EX-acc": _scaled_config(ex_acc_config()),
            "EX-2stage": _scaled_config(ex_2stage_config()),
            "EXMA": _scaled_config(exma_full_config()),
        }
        for name, config in variant_configs.items():
            accelerator = ExmaAccelerator(workload.table, workload.mtl_index, config)
            dataset_runs[name] = accelerator.run(list(workload.requests), name=name)
        runs[dataset] = dataset_runs

        # Accelerator bars.  The software-to-accelerator jump (EXMA-15 ->
        # EX-acc) comes from concurrency: the CPU can overlap at most its
        # 64 LLC MSHRs worth of misses while the accelerator keeps a full
        # scheduling queue of requests in flight; the gain is capped by a
        # DRAM efficiency factor (documented calibration).  The scheduling
        # and page-policy steps (EX-acc -> EX-2stage -> EXMA) use the
        # *measured* cycle ratios of the trace-driven accelerator model.
        ex_acc_norm = (sw_bases / cpu_bases) * concurrency_gain()
        ex_acc_cycles = dataset_runs["EX-acc"].total_cycles
        ex_2stage_norm = ex_acc_norm * (
            ex_acc_cycles / max(1, dataset_runs["EX-2stage"].total_cycles)
        )
        exma_norm = ex_acc_norm * (
            ex_acc_cycles / max(1, dataset_runs["EXMA"].total_cycles)
        )
        rows.append(
            Fig18Row(
                dataset=dataset,
                exma15_software=sw_bases / cpu_bases,
                ex_acc=ex_acc_norm,
                ex_2stage=ex_2stage_norm,
                exma=exma_norm,
                cpu_mbase_per_second=cpu_bases / 1e6,
                exma_mbase_per_second=dataset_runs["EXMA"].throughput.mbase_per_second,
            )
        )
    return Fig18Result(rows=rows, runs=runs)


def format_fig18(result: Fig18Result) -> str:
    """Render the normalised throughput table."""
    lines = ["Fig. 18 - search throughput normalised to CPU (LISA-21)"]
    lines.append(f"{'dataset':8s} {'EXMA-15':>9s} {'EX-acc':>8s} {'EX-2stage':>10s} {'EXMA':>8s}")
    for row in result.rows:
        lines.append(
            f"{row.dataset:8s} {row.exma15_software:9.2f} {row.ex_acc:8.2f} "
            f"{row.ex_2stage:10.2f} {row.exma:8.2f}"
        )
    return "\n".join(lines)
