"""Fig. 18 — FM-Index search throughput of the EXMA variants vs the CPU.

The paper stacks four schemes on each dataset (human, picea, pinus),
normalised to the CPU running LISA-21:

* ``EXMA-15``  — the EXMA table + MTL index as software on the CPU;
* ``EX-acc``   — the same running on the accelerator with FR-FCFS and
  close-page DRAM;
* ``EX-2stage``— plus 2-stage scheduling;
* ``EXMA``     — plus the dynamic page policy.

At reproduction scale the accelerator variants are measured with the
trace-driven model on the scaled workload.  The on-chip caches are scaled
down in proportion to the base-array/index footprint so that scheduling
still matters (a 1 MB cache would trivially hold a 4^6-entry base array);
the scaling factor is reported alongside the results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..accel.baselines import CpuThroughputModel, SoftwareAlgorithm
from ..accel.config import ExmaAcceleratorConfig, ex_2stage_config, ex_acc_config, exma_full_config
from ..accel.exma_accelerator import AcceleratorRunResult, ExmaAccelerator
from ..engine.backends import ExmaBackend
from ..engine.engine import QueryEngine
from ..exma.search import ExmaSearch
from ..exma.table import ExmaTable, exma_size_breakdown
from ..genome.datasets import DATASETS, HUMAN_PAPER_LENGTH, build_dataset
from ..lisa.ipbwt import lisa_size_bytes
from .common import Workload, build_workload, sample_queries

GB = 1024**3

#: Cache capacities used at reproduction scale (the paper-scale 1 MB /
#: 32 KB caches shrink in proportion to the scaled base-array footprint).
SCALED_BASE_CACHE_BYTES = 8 * 1024
SCALED_INDEX_CACHE_BYTES = 1024


@dataclass(frozen=True)
class Fig18Row:
    """Normalised search throughput of the four schemes on one dataset."""

    dataset: str
    exma15_software: float
    ex_acc: float
    ex_2stage: float
    exma: float
    cpu_mbase_per_second: float
    exma_mbase_per_second: float
    #: Issued-to-unique Occ request ratio of the engine's coalescing stage
    #: (the accelerator variants replay the post-merge stream).
    coalescing_factor: float = 1.0


@dataclass(frozen=True)
class Fig18Result:
    """All datasets plus the raw accelerator runs."""

    rows: list[Fig18Row]
    runs: dict[str, dict[str, AcceleratorRunResult]]


def _scaled_config(base: ExmaAcceleratorConfig) -> ExmaAcceleratorConfig:
    """Shrink the caches to match the scaled data-structure footprint."""
    return base.with_overrides(
        base_cache_bytes=SCALED_BASE_CACHE_BYTES,
        index_cache_bytes=SCALED_INDEX_CACHE_BYTES,
        cam_entries=128,
    )


def concurrency_gain(
    accelerator_outstanding: int = 512, cpu_mshrs: int = 64, dram_efficiency: float = 0.5
) -> float:
    """Throughput gain from running searches on the accelerator.

    The CPU overlaps at most ``cpu_mshrs`` outstanding misses; the
    accelerator keeps its scheduling queue full.  ``dram_efficiency``
    accounts for the fraction of that extra concurrency the close-page
    DRAM system can actually absorb (calibration constant, recorded in
    EXPERIMENTS.md).
    """
    if cpu_mshrs <= 0:
        raise ValueError("cpu_mshrs must be positive")
    return max(1.0, accelerator_outstanding / cpu_mshrs * dram_efficiency)


def cpu_lisa_baseline(dataset: str, measured_lisa_error: float = 64.0) -> float:
    """CPU LISA-21 search throughput in bases/second for one dataset."""
    model = CpuThroughputModel()
    scale = DATASETS[dataset].paper_length / HUMAN_PAPER_LENGTH
    algorithm = SoftwareAlgorithm(
        name="CPU",
        symbols_per_iteration=21,
        index_node_accesses_per_lookup=2.0,
        scan_entries_per_lookup=measured_lisa_error,
        structure_size_gb=lisa_size_bytes(DATASETS[dataset].paper_length, 21) / GB,
    )
    del scale  # the structure size already carries the dataset scale
    return model.bases_per_second(algorithm)


def exma_software_throughput(workload: Workload, dataset: str) -> float:
    """EXMA-15 (software) throughput from the measured MTL error."""
    model = CpuThroughputModel()
    mean_error = workload.stats.mean_error
    algorithm = SoftwareAlgorithm(
        name="EXMA-15",
        symbols_per_iteration=15,
        index_node_accesses_per_lookup=1.0,
        scan_entries_per_lookup=mean_error,
        scan_entry_bytes=4,
        structure_size_gb=exma_size_breakdown(DATASETS[dataset].paper_length, 15).total / GB,
    )
    return model.bases_per_second(algorithm)


def run_fig18(
    genome_length: int = 60_000, seed: int = 0, datasets: tuple[str, ...] = ("human", "picea", "pinus")
) -> Fig18Result:
    """Measure all four schemes on every dataset."""
    rows = []
    runs: dict[str, dict[str, AcceleratorRunResult]] = {}
    for dataset in datasets:
        workload = build_workload(dataset, genome_length=genome_length, seed=seed)
        cpu_bases = cpu_lisa_baseline(dataset)
        sw_bases = exma_software_throughput(workload, dataset)

        # The accelerator variants replay the request stream the batched
        # engine produces: the whole query batch advances in lockstep and
        # duplicate (k-mer, pos) requests are merged before they reach the
        # scheduling queue, mirroring the paper's DRAM-side coalescing.
        engine = QueryEngine(ExmaBackend(table=workload.table, index=workload.mtl_index))
        requests, batch_stats = engine.request_stream(list(workload.queries))
        # The batch searched every issued request's worth of bases; the
        # replayed stream is shorter by the coalescing factor, so the
        # base count is passed explicitly to keep throughput comparable
        # with the pre-merge accounting.
        searched_bases = batch_stats.occ_requests_issued * workload.table.k // 2

        dataset_runs: dict[str, AcceleratorRunResult] = {}
        variant_configs = {
            "EX-acc": _scaled_config(ex_acc_config()),
            "EX-2stage": _scaled_config(ex_2stage_config()),
            "EXMA": _scaled_config(exma_full_config()),
        }
        for name, config in variant_configs.items():
            accelerator = ExmaAccelerator(workload.table, workload.mtl_index, config)
            # The engine's RequestStream replays columnar — its packed
            # arrays feed the array schedulers directly.
            dataset_runs[name] = accelerator.run(
                requests, name=name, bases_processed=searched_bases
            )
        runs[dataset] = dataset_runs

        # Accelerator bars.  The software-to-accelerator jump (EXMA-15 ->
        # EX-acc) comes from concurrency: the CPU can overlap at most its
        # 64 LLC MSHRs worth of misses while the accelerator keeps a full
        # scheduling queue of requests in flight; the gain is capped by a
        # DRAM efficiency factor (documented calibration).  The scheduling
        # and page-policy steps (EX-acc -> EX-2stage -> EXMA) use the
        # *measured* cycle ratios of the trace-driven accelerator model.
        ex_acc_norm = (sw_bases / cpu_bases) * concurrency_gain()
        ex_acc_cycles = dataset_runs["EX-acc"].total_cycles
        ex_2stage_norm = ex_acc_norm * (
            ex_acc_cycles / max(1, dataset_runs["EX-2stage"].total_cycles)
        )
        exma_norm = ex_acc_norm * (
            ex_acc_cycles / max(1, dataset_runs["EXMA"].total_cycles)
        )
        rows.append(
            Fig18Row(
                dataset=dataset,
                exma15_software=sw_bases / cpu_bases,
                ex_acc=ex_acc_norm,
                ex_2stage=ex_2stage_norm,
                exma=exma_norm,
                cpu_mbase_per_second=cpu_bases / 1e6,
                exma_mbase_per_second=dataset_runs["EXMA"].throughput.mbase_per_second,
                coalescing_factor=batch_stats.coalescing_factor,
            )
        )
    return Fig18Result(rows=rows, runs=runs)


def format_fig18(result: Fig18Result) -> str:
    """Render the normalised throughput table."""
    lines = ["Fig. 18 - search throughput normalised to CPU (LISA-21)"]
    lines.append(
        f"{'dataset':8s} {'EXMA-15':>9s} {'EX-acc':>8s} {'EX-2stage':>10s} {'EXMA':>8s}"
        f" {'coalesce':>9s}"
    )
    for row in result.rows:
        lines.append(
            f"{row.dataset:8s} {row.exma15_software:9.2f} {row.ex_acc:8.2f} "
            f"{row.ex_2stage:10.2f} {row.exma:8.2f} {row.coalescing_factor:8.2f}x"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Batched vs sequential software search
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class BatchingRow:
    """Wall-clock comparison of batched vs per-query software search."""

    batch_size: int
    sequential_seconds: float
    batched_seconds: float
    coalescing_factor: float

    @property
    def speedup(self) -> float:
        """Sequential-to-batched wall-clock ratio (> 1 means batching wins)."""
        return self.sequential_seconds / max(self.batched_seconds, 1e-12)


def run_fig18_batching(
    genome_length: int = 20_000,
    seed: int = 0,
    batch_sizes: tuple[int, ...] = (16, 64, 256),
    k: int = 6,
    query_length: int = 48,
    repeats: int = 3,
) -> list[BatchingRow]:
    """Time the engine's lockstep batch path against the per-query loop.

    Both paths resolve Occ exactly over the same EXMA table, so results
    are identical; only the execution strategy differs — one Python-level
    backward search per query versus one vectorized lockstep pass with
    request coalescing per batch.  Each measurement takes the best of
    *repeats* runs to damp scheduler noise.
    """
    reference = build_dataset("human", simulated_length=genome_length, seed=seed)
    table = ExmaTable(reference.sequence, k=k)
    sequential = ExmaSearch(table)
    engine = QueryEngine(ExmaBackend(table=table))

    rows = []
    for batch_size in batch_sizes:
        queries = sample_queries(
            reference.sequence, count=batch_size, length=query_length, seed=seed
        )
        sequential_seconds = min(
            _timed(lambda: [sequential.backward_search(q) for q in queries])
            for _ in range(repeats)
        )
        batched_seconds = min(
            _timed(lambda: engine.backend.search_batch(queries)) for _ in range(repeats)
        )
        stats = engine.search_batch(queries).stats
        rows.append(
            BatchingRow(
                batch_size=batch_size,
                sequential_seconds=sequential_seconds,
                batched_seconds=batched_seconds,
                coalescing_factor=stats.coalescing_factor,
            )
        )
    return rows


def _timed(thunk) -> float:
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


def format_fig18_batching(rows: list[BatchingRow]) -> str:
    """Render the batched-vs-sequential comparison table."""
    lines = ["Fig. 18 (engine) - batched vs sequential software search"]
    lines.append(f"{'batch':>6s} {'seq ms':>9s} {'batch ms':>9s} {'speedup':>8s} {'coalesce':>9s}")
    for row in rows:
        lines.append(
            f"{row.batch_size:6d} {row.sequential_seconds * 1e3:9.2f} "
            f"{row.batched_seconds * 1e3:9.2f} {row.speedup:7.2f}x "
            f"{row.coalescing_factor:8.2f}x"
        )
    return "\n".join(lines)
