"""accel-replay — object vs columnar accelerator replay wall-clock.

PR 5's perf claim, measured: the columnar replay
(:meth:`repro.accel.exma_accelerator.ExmaAccelerator.run` on the engine's
packed request stream) against the request-at-a-time object reference
(:meth:`~repro.accel.exma_accelerator.ExmaAccelerator.run_reference`), on

* the **Fig. 18 workload** — scaled caches/CAM, the same config every
  Fig. 18/20/22 experiment replays through — where the recorded
  ``BENCH_accel_replay.json`` targets a ≥10× replay speedup, and
* a **megabase-scale row** — Table-I config over a 1 Mbp reference —
  the workload size the per-request Python loop kept out of reach for
  routine sweeps.

Every timed pair is also checked for field-for-field equality, so the
record doubles as an end-to-end divergence gate
(``scripts/check_accel_replay.py``, wired into the CI bench-smoke leg).
Reproduce the committed record with::

    repro-exma experiment accel-replay --genome-length 60000 \
        --batch-size 2000 --megabase-length 1000000 \
        --json BENCH_accel_replay.json
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

from ..accel.config import ExmaAcceleratorConfig, exma_full_config
from ..accel.exma_accelerator import ExmaAccelerator
from ..engine.backends import ExmaBackend
from ..engine.engine import QueryEngine
from ..exma.mtl_index import MTLIndex
from ..exma.table import ExmaTable
from ..genome.datasets import build_dataset
from .common import DEFAULT_STEP, sample_queries
from .fig18_throughput import _scaled_config

__all__ = [
    "AccelReplayResult",
    "AccelReplayRow",
    "accel_replay_report",
    "format_accel_replay",
    "run_accel_replay",
    "write_accel_replay_json",
]


@dataclass(frozen=True)
class AccelReplayRow:
    """One workload: both replay paths timed over the same stream."""

    label: str
    genome_length: int
    queries: int
    requests: int
    dram_requests: int
    total_cycles: int
    #: Best-of-``repeats`` wall-clock of the columnar replay.
    columnar_seconds: float
    #: Best-of-``repeats`` wall-clock of the object reference replay.
    object_seconds: float
    #: Whether both paths returned field-for-field equal results.
    results_equal: bool

    @property
    def speedup(self) -> float:
        """Object-to-columnar wall-clock ratio (> 1 means columnar wins)."""
        return self.object_seconds / max(self.columnar_seconds, 1e-12)


@dataclass(frozen=True)
class AccelReplayResult:
    """The measured rows plus the workload shape that produced them."""

    rows: list[AccelReplayRow]
    k: int
    query_length: int
    seed: int
    repeats: int


def _measure(
    label: str,
    genome_length: int,
    query_count: int,
    query_length: int,
    k: int,
    seed: int,
    repeats: int,
    config: ExmaAcceleratorConfig,
    mtl_epochs: int,
) -> AccelReplayRow:
    """Build one workload's request stream and time both replay paths."""
    reference = build_dataset("human", simulated_length=genome_length, seed=seed)
    table = ExmaTable(reference.sequence, k=k)
    index = MTLIndex(
        table, model_threshold=16, samples_per_kmer=64, epochs=mtl_epochs, seed=seed
    )
    engine = QueryEngine(ExmaBackend(table=table, index=index))
    queries = sample_queries(
        reference.sequence, count=query_count, length=query_length, seed=seed
    )
    stream, _stats = engine.request_stream(queries)
    accelerator = ExmaAccelerator(table, index, config)

    materialised = list(stream)
    columnar_seconds = object_seconds = float("inf")
    columnar_result = object_result = None
    for _ in range(repeats):
        start = time.perf_counter()
        columnar_result = accelerator.run(stream)
        columnar_seconds = min(columnar_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        object_result = accelerator.run_reference(materialised)
        object_seconds = min(object_seconds, time.perf_counter() - start)

    return AccelReplayRow(
        label=label,
        genome_length=genome_length,
        queries=query_count,
        requests=len(stream),
        dram_requests=columnar_result.dram_requests,
        total_cycles=columnar_result.total_cycles,
        columnar_seconds=columnar_seconds,
        object_seconds=object_seconds,
        results_equal=columnar_result == object_result,
    )


def run_accel_replay(
    genome_length: int = 60_000,
    seed: int = 0,
    query_count: int = 2000,
    query_length: int = 48,
    k: int = DEFAULT_STEP,
    repeats: int = 3,
    #: 0 disables the megabase row (the CI smoke runs at toy scale).
    megabase_length: int = 0,
    megabase_query_count: int = 20_000,
    mtl_epochs: int = 60,
) -> AccelReplayResult:
    """Time object vs columnar replay on the benchmark workloads.

    The ``fig18`` row replays the scaled-cache configuration every
    Fig. 18/20/22 experiment uses; the optional ``megabase`` row replays
    the Table-I configuration over a *megabase_length* reference.  Both
    rows verify exact result equality while they time.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    rows = [
        _measure(
            "fig18",
            genome_length,
            query_count,
            query_length,
            k,
            seed,
            repeats,
            _scaled_config(exma_full_config()),
            mtl_epochs,
        )
    ]
    if megabase_length:
        rows.append(
            _measure(
                "megabase",
                megabase_length,
                megabase_query_count,
                query_length,
                k,
                seed,
                repeats,
                exma_full_config(),
                mtl_epochs,
            )
        )
    return AccelReplayResult(
        rows=rows, k=k, query_length=query_length, seed=seed, repeats=repeats
    )


def format_accel_replay(result: AccelReplayResult) -> str:
    """Render the replay comparison table."""
    lines = [
        f"accel-replay - object vs columnar accelerator replay (k={result.k}, "
        f"best of {result.repeats})"
    ]
    lines.append(
        f"{'row':>9s} {'genome':>10s} {'queries':>8s} {'requests':>9s} "
        f"{'object s':>9s} {'columnar s':>11s} {'speedup':>8s} {'equal':>6s}"
    )
    for row in result.rows:
        lines.append(
            f"{row.label:>9s} {row.genome_length:10,d} {row.queries:8d} "
            f"{row.requests:9d} {row.object_seconds:9.3f} "
            f"{row.columnar_seconds:11.4f} {row.speedup:7.1f}x "
            f"{'yes' if row.results_equal else 'NO':>6s}"
        )
    return "\n".join(lines)


def accel_replay_report(result: AccelReplayResult, **workload) -> dict:
    """The comparison as a JSON-ready record (``BENCH_accel_replay.json``)."""
    return {
        "benchmark": "accel_replay",
        "workload": {
            "k": result.k,
            "query_length": result.query_length,
            "seed": result.seed,
            "repeats": result.repeats,
            **dict(workload),
        },
        "rows": [
            {
                "label": row.label,
                "genome_length": row.genome_length,
                "queries": row.queries,
                "requests": row.requests,
                "dram_requests": row.dram_requests,
                "total_cycles": row.total_cycles,
                "object_seconds": row.object_seconds,
                "columnar_seconds": row.columnar_seconds,
                "speedup": round(row.speedup, 2),
                "results_equal": row.results_equal,
            }
            for row in result.rows
        ],
    }


def write_accel_replay_json(path: str, result: AccelReplayResult, **workload) -> dict:
    """Write :func:`accel_replay_report` to *path*; returns the record."""
    report = accel_replay_report(result, **workload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report
