"""accel-replay — object vs columnar accelerator replay wall-clock.

PR 5's perf claim, measured: the columnar replay
(:meth:`repro.accel.exma_accelerator.ExmaAccelerator.run` on the engine's
packed request stream) against the request-at-a-time object reference
(:meth:`~repro.accel.exma_accelerator.ExmaAccelerator.run_reference`), on

* the **Fig. 18 workload** — scaled caches/CAM, the same config every
  Fig. 18/20/22 experiment replays through — where the recorded
  ``BENCH_accel_replay.json`` targets a ≥10× replay speedup, and
* a **megabase-scale row** — Table-I config over a 1 Mbp reference —
  the workload size the per-request Python loop kept out of reach for
  routine sweeps.

Every timed pair is also checked for field-for-field equality, so the
record doubles as an end-to-end divergence gate
(``scripts/ci_gates.py --gate accel-replay``, wired into the CI bench-smoke leg).

PR 8 grows the record an **epoch-parallel replay sweep**: each
workload's queries split into batches whose W=1 flush epochs fan across
``run_stream(replay_workers ∈ {1, 2, 4})``, every point verified
field-for-field against the serial baseline and timed alongside the
search that produced the streams (the whole-pipeline wall-clock).  The
record carries ``host_cpus``/``available_cpus`` so a 1-CPU container
records a truthful tie and the multicore CI leg gates real speedup
(``scripts/ci_gates.py --gate replay-scaling``).
Reproduce the committed record with::

    repro-exma experiment accel-replay --genome-length 60000 \
        --batch-size 2000 --megabase-length 1000000 \
        --json BENCH_accel_replay.json
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from ..accel.config import ExmaAcceleratorConfig, exma_full_config
from ..accel.exma_accelerator import ExmaAccelerator
from ..engine.backends import ExmaBackend
from ..engine.engine import QueryEngine
from ..engine.sharded import available_parallelism
from ..engine.window import CoalescingWindow
from ..exma.mtl_index import MTLIndex
from ..exma.table import ExmaTable
from ..genome.datasets import build_dataset
from .common import DEFAULT_STEP, sample_queries
from .fig18_throughput import _scaled_config

__all__ = [
    "AccelReplayResult",
    "AccelReplayRow",
    "ReplayScalingRow",
    "accel_replay_report",
    "format_accel_replay",
    "run_accel_replay",
    "write_accel_replay_json",
]


@dataclass(frozen=True)
class AccelReplayRow:
    """One workload: both replay paths timed over the same stream."""

    label: str
    genome_length: int
    queries: int
    requests: int
    dram_requests: int
    total_cycles: int
    #: Best-of-``repeats`` wall-clock of the columnar replay.
    columnar_seconds: float
    #: Best-of-``repeats`` wall-clock of the object reference replay.
    object_seconds: float
    #: Whether both paths returned field-for-field equal results.
    results_equal: bool

    @property
    def speedup(self) -> float:
        """Object-to-columnar wall-clock ratio (> 1 means columnar wins)."""
        return self.object_seconds / max(self.columnar_seconds, 1e-12)


@dataclass(frozen=True)
class ReplayScalingRow:
    """One (workload, replay_workers) point of the epoch-parallel sweep.

    Every timing is best-of-``repeats``; the serial baseline
    (``serial_seconds``) is the same ``run_stream`` with
    ``replay_workers=1``, measured on the same flush list — and
    ``results_equal`` records whether this point's
    :class:`~repro.accel.exma_accelerator.WindowedRunResult` was
    field-for-field equal to the serial baseline's, so the sweep doubles
    as the exact-equivalence gate (``scripts/ci_gates.py --gate replay-scaling``).
    """

    label: str
    replay_workers: int
    executor: str
    flushes: int
    requests: int
    #: Best-of-repeats wall-clock of the parallel replay at this point.
    seconds: float
    #: Best-of-repeats wall-clock of the serial (workers=1) replay.
    serial_seconds: float
    #: Best-of-repeats wall-clock of the search producing the streams —
    #: the other half of the whole-pipeline number.
    search_seconds: float
    results_equal: bool

    @property
    def speedup(self) -> float:
        """Serial-to-parallel replay wall-clock ratio (> 1 = parallel wins)."""
        return self.serial_seconds / max(self.seconds, 1e-12)

    @property
    def pipeline_seconds(self) -> float:
        """Whole-pipeline (search + replay) wall-clock at this point."""
        return self.search_seconds + self.seconds

    @property
    def pipeline_speedup(self) -> float:
        """Whole-pipeline serial-to-parallel ratio (Amdahl-damped)."""
        return (self.search_seconds + self.serial_seconds) / max(
            self.pipeline_seconds, 1e-12
        )


@dataclass(frozen=True)
class AccelReplayResult:
    """The measured rows plus the workload shape that produced them."""

    rows: list[AccelReplayRow]
    k: int
    query_length: int
    seed: int
    repeats: int
    #: Epoch-parallel sweep points (one per workload × worker count).
    scaling_rows: list[ReplayScalingRow] = field(default_factory=list)
    #: Executor the sweep fanned flush epochs across.
    replay_executor: str = "thread"
    #: Query batches (= W=1 flush epochs) the sweep split each workload into.
    replay_batches: int = 0


def _measure(
    label: str,
    genome_length: int,
    query_count: int,
    query_length: int,
    k: int,
    seed: int,
    repeats: int,
    config: ExmaAcceleratorConfig,
    mtl_epochs: int,
    replay_workers: "tuple[int, ...]" = (),
    replay_executor: str = "thread",
    replay_batches: int = 8,
) -> "tuple[AccelReplayRow, list[ReplayScalingRow]]":
    """Build one workload's request stream and time both replay paths.

    With *replay_workers* non-empty the same workload also runs the
    epoch-parallel sweep: the queries split into *replay_batches* batches
    whose W=1 flush epochs replay via ``run_stream(replay_workers=...)``
    on *replay_executor* workers, each point verified field-for-field
    against the serial baseline (and the search that produced the
    streams timed alongside, for the whole-pipeline number).
    """
    reference = build_dataset("human", simulated_length=genome_length, seed=seed)
    table = ExmaTable(reference.sequence, k=k)
    index = MTLIndex(
        table, model_threshold=16, samples_per_kmer=64, epochs=mtl_epochs, seed=seed
    )
    engine = QueryEngine(ExmaBackend(table=table, index=index))
    queries = sample_queries(
        reference.sequence, count=query_count, length=query_length, seed=seed
    )
    stream, _stats = engine.request_stream(queries)
    accelerator = ExmaAccelerator(table, index, config)

    materialised = list(stream)
    columnar_seconds = object_seconds = float("inf")
    columnar_result = object_result = None
    for _ in range(repeats):
        start = time.perf_counter()
        columnar_result = accelerator.run(stream)
        columnar_seconds = min(columnar_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        object_result = accelerator.run_reference(materialised)
        object_seconds = min(object_seconds, time.perf_counter() - start)

    row = AccelReplayRow(
        label=label,
        genome_length=genome_length,
        queries=query_count,
        requests=len(stream),
        dram_requests=columnar_result.dram_requests,
        total_cycles=columnar_result.total_cycles,
        columnar_seconds=columnar_seconds,
        object_seconds=object_seconds,
        results_equal=columnar_result == object_result,
    )

    scaling: list[ReplayScalingRow] = []
    if replay_workers:
        chunk = max(1, -(-len(queries) // replay_batches))
        batches = [queries[i : i + chunk] for i in range(0, len(queries), chunk)]
        search_seconds = float("inf")
        streams = []
        for _ in range(repeats):
            start = time.perf_counter()
            streams = [engine.request_stream(batch)[0] for batch in batches]
            search_seconds = min(search_seconds, time.perf_counter() - start)
        flushes = list(CoalescingWindow(1).stream(iter(streams)))
        serial_seconds = float("inf")
        serial_result = None
        for _ in range(repeats):
            start = time.perf_counter()
            serial_result = accelerator.run_stream(iter(flushes), replay_workers=1)
            serial_seconds = min(serial_seconds, time.perf_counter() - start)
        total_requests = sum(flush.requests for flush in serial_result.flushes)
        for workers in replay_workers:
            seconds = float("inf")
            result = None
            for _ in range(repeats):
                start = time.perf_counter()
                result = accelerator.run_stream(
                    iter(flushes),
                    replay_workers=workers,
                    executor=replay_executor,
                )
                seconds = min(seconds, time.perf_counter() - start)
            scaling.append(
                ReplayScalingRow(
                    label=label,
                    replay_workers=workers,
                    executor=replay_executor,
                    flushes=len(flushes),
                    requests=total_requests,
                    seconds=seconds,
                    serial_seconds=serial_seconds,
                    search_seconds=search_seconds,
                    results_equal=result == serial_result,
                )
            )
        accelerator.close()

    return row, scaling


def run_accel_replay(
    genome_length: int = 60_000,
    seed: int = 0,
    query_count: int = 2000,
    query_length: int = 48,
    k: int = DEFAULT_STEP,
    repeats: int = 3,
    #: 0 disables the megabase row (the CI smoke runs at toy scale).
    megabase_length: int = 0,
    megabase_query_count: int = 20_000,
    mtl_epochs: int = 60,
    replay_workers: "tuple[int, ...]" = (1, 2, 4),
    replay_executor: str = "thread",
    replay_batches: int = 8,
) -> AccelReplayResult:
    """Time object vs columnar replay on the benchmark workloads.

    The ``fig18`` row replays the scaled-cache configuration every
    Fig. 18/20/22 experiment uses; the optional ``megabase`` row replays
    the Table-I configuration over a *megabase_length* reference.  Both
    rows verify exact result equality while they time.

    Each workload additionally runs the epoch-parallel replay sweep
    (``replay_workers``, empty tuple to disable): its queries split into
    *replay_batches* batches, and the resulting W=1 flush epochs replay
    through ``run_stream`` at every worker count on *replay_executor*
    workers — each point checked field-for-field against the serial
    baseline, with the producing search timed alongside so the record
    carries the whole-pipeline (search + replay) wall-clock too.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    replay_workers = tuple(replay_workers)
    if any(workers < 1 for workers in replay_workers):
        raise ValueError("replay_workers must all be >= 1")
    if replay_workers and replay_batches < 1:
        raise ValueError("replay_batches must be >= 1")
    rows = []
    scaling_rows: list[ReplayScalingRow] = []
    row, scaling = _measure(
        "fig18",
        genome_length,
        query_count,
        query_length,
        k,
        seed,
        repeats,
        _scaled_config(exma_full_config()),
        mtl_epochs,
        replay_workers=replay_workers,
        replay_executor=replay_executor,
        replay_batches=replay_batches,
    )
    rows.append(row)
    scaling_rows.extend(scaling)
    if megabase_length:
        row, scaling = _measure(
            "megabase",
            megabase_length,
            megabase_query_count,
            query_length,
            k,
            seed,
            repeats,
            exma_full_config(),
            mtl_epochs,
            replay_workers=replay_workers,
            replay_executor=replay_executor,
            replay_batches=replay_batches,
        )
        rows.append(row)
        scaling_rows.extend(scaling)
    return AccelReplayResult(
        rows=rows,
        k=k,
        query_length=query_length,
        seed=seed,
        repeats=repeats,
        scaling_rows=scaling_rows,
        replay_executor=replay_executor,
        replay_batches=replay_batches if replay_workers else 0,
    )


def format_accel_replay(result: AccelReplayResult) -> str:
    """Render the replay comparison table."""
    lines = [
        f"accel-replay - object vs columnar accelerator replay (k={result.k}, "
        f"best of {result.repeats})"
    ]
    lines.append(
        f"{'row':>9s} {'genome':>10s} {'queries':>8s} {'requests':>9s} "
        f"{'object s':>9s} {'columnar s':>11s} {'speedup':>8s} {'equal':>6s}"
    )
    for row in result.rows:
        lines.append(
            f"{row.label:>9s} {row.genome_length:10,d} {row.queries:8d} "
            f"{row.requests:9d} {row.object_seconds:9.3f} "
            f"{row.columnar_seconds:11.4f} {row.speedup:7.1f}x "
            f"{'yes' if row.results_equal else 'NO':>6s}"
        )
    if result.scaling_rows:
        lines.append("")
        lines.append(
            f"epoch-parallel replay sweep ({result.replay_executor} executor, "
            f"{result.replay_batches} flush epochs, best of {result.repeats}; "
            f"host cpus={os.cpu_count()}, available={available_parallelism()})"
        )
        lines.append(
            f"{'row':>9s} {'workers':>8s} {'serial s':>9s} {'parallel s':>11s} "
            f"{'speedup':>8s} {'pipeline s':>11s} {'pipe x':>7s} {'equal':>6s}"
        )
        for row in result.scaling_rows:
            lines.append(
                f"{row.label:>9s} {row.replay_workers:8d} {row.serial_seconds:9.4f} "
                f"{row.seconds:11.4f} {row.speedup:7.2f}x "
                f"{row.pipeline_seconds:11.4f} {row.pipeline_speedup:6.2f}x "
                f"{'yes' if row.results_equal else 'NO':>6s}"
            )
    return "\n".join(lines)


def accel_replay_report(result: AccelReplayResult, **workload) -> dict:
    """The comparison as a JSON-ready record (``BENCH_accel_replay.json``).

    Follows ``BENCH_shard_scaling.json``'s honesty convention: the
    record carries ``host_cpus``/``available_cpus`` and every timing is
    best-of-repeats, so a 1-CPU container records a truthful ~1× tie in
    the epoch-parallel sweep while the multicore CI leg gates real
    speedup (``scripts/ci_gates.py --gate replay-scaling``).
    """
    return {
        "benchmark": "accel_replay",
        "host_cpus": os.cpu_count(),
        "available_cpus": available_parallelism(),
        "workload": {
            "k": result.k,
            "query_length": result.query_length,
            "seed": result.seed,
            "repeats": result.repeats,
            **dict(workload),
        },
        "rows": [
            {
                "label": row.label,
                "genome_length": row.genome_length,
                "queries": row.queries,
                "requests": row.requests,
                "dram_requests": row.dram_requests,
                "total_cycles": row.total_cycles,
                "object_seconds": row.object_seconds,
                "columnar_seconds": row.columnar_seconds,
                "speedup": round(row.speedup, 2),
                "results_equal": row.results_equal,
            }
            for row in result.rows
        ],
        "replay_scaling": {
            "executor": result.replay_executor,
            "batches": result.replay_batches,
            "rows": [
                {
                    "label": row.label,
                    "replay_workers": row.replay_workers,
                    "executor": row.executor,
                    "flushes": row.flushes,
                    "requests": row.requests,
                    "serial_seconds": row.serial_seconds,
                    "seconds": row.seconds,
                    "speedup": round(row.speedup, 3),
                    "search_seconds": row.search_seconds,
                    "pipeline_seconds": row.pipeline_seconds,
                    "pipeline_speedup": round(row.pipeline_speedup, 3),
                    "results_equal": row.results_equal,
                }
                for row in result.scaling_rows
            ],
        },
    }


def write_accel_replay_json(path: str, result: AccelReplayResult, **workload) -> dict:
    """Write :func:`accel_replay_report` to *path*; returns the record."""
    report = accel_replay_report(result, **workload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report
