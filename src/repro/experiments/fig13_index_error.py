"""Fig. 13 — prediction errors: naive learned index vs the MTL index.

The paper compares the per-lookup prediction error of the naive per-k-mer
learned index and the MTL index, separately for the k-mers with 64K-256K
increments and those with more than 1M increments (on the 3 Gbp human
genome).  At reproduction scale the same experiment uses the heaviest
k-mers of the scaled table split into two frequency classes; the claim
being reproduced is that the MTL index cuts the mean error by an order of
magnitude while using fewer parameters.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..exma.learned_index import NaiveLearnedIndex
from ..exma.mtl_index import MTLIndex
from ..exma.table import ExmaTable
from ..genome.datasets import build_dataset
from ..lisa.learned_index import PredictionStats


@dataclass(frozen=True)
class ErrorComparison:
    """Error statistics of both indexes on one k-mer frequency class."""

    label: str
    kmer_count: int
    naive: PredictionStats
    mtl: PredictionStats

    @property
    def improvement(self) -> float:
        """Naive mean error divided by MTL mean error (>1 means MTL wins)."""
        if self.mtl.mean_error == 0:
            return float("inf") if self.naive.mean_error > 0 else 1.0
        return self.naive.mean_error / self.mtl.mean_error


@dataclass(frozen=True)
class Fig13Result:
    """Both frequency classes plus the parameter-count comparison."""

    heavy: ErrorComparison
    heaviest: ErrorComparison
    naive_parameters: int
    mtl_parameters: int

    @property
    def parameter_ratio(self) -> float:
        """MTL parameters over naive parameters (paper: about one half)."""
        if self.naive_parameters == 0:
            return 1.0
        return self.mtl_parameters / self.naive_parameters


def _frequency_classes(table: ExmaTable, classes: int = 2) -> list[list[int]]:
    """Split modelled-worthy k-mers into frequency classes (light/heavy)."""
    frequencies = table.frequencies()
    present = [p for p in table.present_kmers() if frequencies[p] > 16]
    if not present:
        return [[], []]
    ordered = sorted(present, key=lambda p: int(frequencies[p]))
    # Heaviest decile forms the ">1M"-analogue class; the next three
    # deciles form the "64K-256K" analogue.
    n = len(ordered)
    heaviest = ordered[max(0, n - max(1, n // 10)) :]
    heavy = ordered[max(0, n - max(2, 4 * n // 10)) : max(0, n - max(1, n // 10))]
    if not heavy:
        heavy = heaviest
    return [heavy, heaviest]


def run_fig13(
    genome_length: int = 30_000,
    k: int = 6,
    seed: int = 0,
    mtl_epochs: int = 150,
    samples_per_kmer: int = 60,
) -> Fig13Result:
    """Compare naive and MTL index errors on the heavy k-mer classes."""
    reference = build_dataset("human", simulated_length=genome_length, seed=seed)
    table = ExmaTable(reference.sequence, k=k)
    naive = NaiveLearnedIndex(table, model_threshold=16, increments_per_leaf=256)
    mtl = MTLIndex(table, model_threshold=16, samples_per_kmer=64, epochs=mtl_epochs, seed=seed)

    heavy_class, heaviest_class = _frequency_classes(table)
    comparisons = []
    for label, kmers in (("heavy", heavy_class), ("heaviest", heaviest_class)):
        naive_errors = naive.prediction_errors(kmers, samples_per_kmer=samples_per_kmer, seed=seed)
        mtl_errors = mtl.prediction_errors(kmers, samples_per_kmer=samples_per_kmer, seed=seed)
        comparisons.append(
            ErrorComparison(
                label=label,
                kmer_count=len(kmers),
                naive=PredictionStats.from_errors(naive_errors),
                mtl=PredictionStats.from_errors(mtl_errors),
            )
        )
    return Fig13Result(
        heavy=comparisons[0],
        heaviest=comparisons[1],
        naive_parameters=naive.parameter_count,
        mtl_parameters=mtl.parameter_count,
    )


def format_fig13(result: Fig13Result) -> str:
    """Render the comparison as a small table."""
    lines = ["Fig. 13 - learned vs MTL index prediction errors"]
    for comparison in (result.heavy, result.heaviest):
        lines.append(
            f"{comparison.label:9s} kmers={comparison.kmer_count:4d} "
            f"naive mean={comparison.naive.mean_error:8.2f} "
            f"MTL mean={comparison.mtl.mean_error:8.2f} "
            f"improvement={comparison.improvement:6.2f}x"
        )
    lines.append(
        f"parameters: naive={result.naive_parameters} mtl={result.mtl_parameters} "
        f"ratio={result.parameter_ratio:.2f}"
    )
    return "\n".join(lines)
