"""Fig. 1 — execution-time breakdown of genome-analysis applications.

The paper shows, for alignment and assembly under Illumina / Nanopore /
PacBio reads plus annotation and compression, the fraction of execution
time spent in FM-Index searches, dynamic programming, and everything else;
FM-Index costs 31 %-81 % of the time.  This harness runs each application
at reproduction scale, converts the measured work counters into CPU time
with the breakdown cost model, and reports the same stacked fractions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accel.metrics import ApplicationRun
from ..apps.pipeline import default_breakdown_model, run_application
from ..genome.datasets import build_dataset
from ..genome.reads import ILLUMINA, ONT_2D, PACBIO, ErrorProfile

#: The application/profile combinations of Fig. 1, in the paper's order.
FIG1_COLUMNS: tuple[tuple[str, ErrorProfile], ...] = (
    ("alignment", ILLUMINA),
    ("assembly", ILLUMINA),
    ("alignment", ONT_2D),
    ("assembly", ONT_2D),
    ("alignment", PACBIO),
    ("assembly", PACBIO),
    ("annotate", ILLUMINA),
    ("compress", ILLUMINA),
)


@dataclass(frozen=True)
class BreakdownRow:
    """One stacked bar of Fig. 1."""

    label: str
    fm_index_fraction: float
    dynamic_programming_fraction: float
    other_fraction: float
    run: ApplicationRun


def run_fig1(
    genome_length: int = 30_000, read_count: int = 12, seed: int = 0
) -> list[BreakdownRow]:
    """Produce the Fig. 1 execution-time breakdown rows."""
    reference = build_dataset("human", simulated_length=genome_length, seed=seed)
    model = default_breakdown_model()
    rows = []
    for application, profile in FIG1_COLUMNS:
        read_length = 101 if profile is ILLUMINA else 400
        work = run_application(
            application,
            reference,
            profile,
            read_count=read_count,
            read_length=read_length,
            seed=seed,
        )
        run = model.breakdown(application, reference.name, work)
        total = max(run.total_seconds, 1e-12)
        rows.append(
            BreakdownRow(
                label=f"{application}-{profile.name}",
                fm_index_fraction=run.fm_index_seconds / total,
                dynamic_programming_fraction=run.dynamic_programming_seconds / total,
                other_fraction=run.other_seconds / total,
                run=run,
            )
        )
    return rows


def format_fig1(rows: list[BreakdownRow]) -> str:
    """Render the rows as the paper-style table."""
    lines = ["Fig. 1 - execution time breakdown (fractions)"]
    lines.append(f"{'workload':26s} {'FM-Index':>9s} {'DynPro':>8s} {'Other':>8s}")
    for row in rows:
        lines.append(
            f"{row.label:26s} {row.fm_index_fraction:9.2f} "
            f"{row.dynamic_programming_fraction:8.2f} {row.other_fraction:8.2f}"
        )
    return "\n".join(lines)
