"""Shared experiment plumbing: scaled workloads, tables, indexes, queries.

Every figure/table harness needs the same ingredients: a scaled synthetic
reference for one of the paper's datasets, an EXMA table plus MTL index
over it, a batch of seeding queries sampled from simulated reads, and the
request stream those queries produce.  Building them is the expensive part
of an experiment, so :class:`Workload` bundles them and
:func:`build_workload` caches by configuration within a process.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..exma.mtl_index import MTLIndex
from ..exma.search import ExmaSearch, ExmaSearchStats, OccRequest
from ..exma.table import ExmaTable
from ..genome.datasets import build_dataset
from ..genome.reads import ILLUMINA, ReadSimulator
from ..genome.sequence import Reference
from ..index.fmindex import FMIndex

#: Default scaled reference length used by the benchmark harnesses.  Large
#: enough for meaningful k-mer statistics, small enough to keep the whole
#: benchmark suite in minutes.
DEFAULT_GENOME_LENGTH = 60_000

#: Default EXMA step number at reproduction scale.  The paper uses k = 15
#: on 3-31 Gbp genomes; on sub-Mbp stand-ins the equivalent operating
#: point (several increments per k-mer on average) is reached around k = 6.
DEFAULT_STEP = 6

#: Default number of seeding queries per workload.
DEFAULT_QUERY_COUNT = 60

#: Default seeding query length (one Illumina read worth of symbols).
DEFAULT_QUERY_LENGTH = 48


@dataclass(frozen=True)
class Workload:
    """A fully built experiment workload."""

    dataset: str
    reference: Reference
    table: ExmaTable
    mtl_index: MTLIndex
    fm_index: FMIndex
    queries: tuple[str, ...]
    requests: tuple[OccRequest, ...]
    stats: ExmaSearchStats

    @property
    def k(self) -> int:
        """The EXMA step number of this workload."""
        return self.table.k


def sample_queries(
    reference: str,
    count: int = DEFAULT_QUERY_COUNT,
    length: int = DEFAULT_QUERY_LENGTH,
    seed: int = 0,
) -> list[str]:
    """Sample exact-match queries from Illumina-profile simulated reads.

    Queries are read fragments (so most of them occur in the reference but
    sequencing errors make some of them miss), matching how seeding drives
    FM-Index searches in the real pipeline.
    """
    simulator = ReadSimulator(reference, ILLUMINA, seed=seed)
    reads = simulator.simulate(read_length=min(length, len(reference)), count=count)
    return [read.sequence[:length] for read in reads]


@lru_cache(maxsize=8)
def build_workload(
    dataset: str = "human",
    genome_length: int = DEFAULT_GENOME_LENGTH,
    k: int = DEFAULT_STEP,
    query_count: int = DEFAULT_QUERY_COUNT,
    query_length: int = DEFAULT_QUERY_LENGTH,
    seed: int = 0,
    mtl_epochs: int = 150,
) -> Workload:
    """Build (and cache) the standard workload for one dataset."""
    reference = build_dataset(dataset, simulated_length=genome_length, seed=seed)
    table = ExmaTable(reference.sequence, k=k)
    mtl = MTLIndex(table, model_threshold=16, samples_per_kmer=64, epochs=mtl_epochs, seed=seed)
    fm = FMIndex(reference.sequence)
    queries = sample_queries(
        reference.sequence, count=query_count, length=query_length, seed=seed
    )
    search = ExmaSearch(table, index=mtl)
    requests, stats = search.request_stream(queries)
    return Workload(
        dataset=dataset,
        reference=reference,
        table=table,
        mtl_index=mtl,
        fm_index=fm,
        queries=tuple(queries),
        requests=tuple(requests),
        stats=stats,
    )
