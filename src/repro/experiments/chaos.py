"""Chaos benchmark — availability and tail latency under injected faults.

The serving benchmark (:mod:`repro.experiments.serving`) records what the
always-on stack *sustains*; this harness records what it *survives*.
Each scenario drives the open-loop load generator against a fresh
:class:`~repro.serving.service.QueryService` carrying a seeded
:class:`~repro.faults.FaultPlan` — transient search faults, transient
replay faults, scheduled worker kills, and all of them at once — and
measures the availability ledger the fault-tolerance layer guarantees:

* **zero stranded tickets** — every accepted query resolves to exactly
  one of ``completed`` / ``failed`` / ``cancelled`` (the structured
  :class:`~repro.serving.service.QueryOutcome` states), no waiter ever
  left hanging into ``TimeoutError``;
* **availability** — completed / accepted, which stays high because the
  recovery ladder (retry with backoff → bisection quarantine → worker
  respawn) fails only what is actually poisoned;
* **p99 under faults** — the tail the retries and respawns cost.

The ``fault-free`` scenario doubles as a regression pin: a run with an
*empty* fault plan (the injector threaded everywhere, injecting nothing)
must be field-for-field identical to a run with no injector at all
(``fault_free.identical``), proving the chaos plumbing costs the
production path nothing.  Results land in ``BENCH_chaos.json``, gated by
``scripts/ci_gates.py --gate chaos``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, replace

from ..accel.config import exma_full_config
from ..accel.exma_accelerator import ExmaAccelerator
from ..engine.backends import ExmaBackend
from ..engine.engine import QueryEngine
from ..exma.table import ExmaTable
from ..faults import SITE_LOOP, SITE_REPLAY, SITE_SEARCH, FaultPlan, FaultSpec
from ..genome.datasets import build_dataset
from ..serving import (
    AdmissionRejected,
    QueryService,
    ServingConfig,
    percentile,
    poisson_schedule,
    make_schedule,
    sample_query_pool,
)
from .common import DEFAULT_STEP
from .fig18_throughput import _scaled_config

__all__ = [
    "ChaosResult",
    "ChaosRow",
    "chaos_report",
    "format_chaos",
    "run_chaos",
    "write_chaos_json",
]


@dataclass(frozen=True)
class ChaosRow:
    """One chaos scenario: the availability ledger under one fault plan."""

    label: str
    #: Whether the scenario's plan actually contains fault specs.
    faulted: bool
    submitted: int
    accepted: int
    rejected: int
    completed: int
    failed: int
    cancelled: int
    #: Accepted queries that resolved to *no* terminal state — the
    #: number the chaos gate pins to zero.
    stranded: int
    #: completed / accepted (1.0 with nothing accepted).
    availability: float
    p50_ms: float
    p99_ms: float
    #: Recovery-ladder accounting for the run.
    worker_crashes: int
    replay_faults: int
    quarantined: int
    #: Faults the injector actually fired across all sites.
    injected: int
    wall_seconds: float


@dataclass(frozen=True)
class ChaosResult:
    """All scenario rows plus the fault-free identity pin and workload."""

    rows: list[ChaosRow]
    #: Whether the empty-plan run was field-for-field identical to a run
    #: with no injector at all (flush results and query outcomes).
    fault_free_identical: bool
    genome_length: int
    k: int
    rate: float
    duration: float
    fault_rate: float
    fault_seed: int
    tenants: int
    queries_per_arrival: int
    query_length: int
    pool_size: int
    workers: int
    window: int
    max_batch: int
    max_delay: float
    queue_capacity: int
    replay_retries: int


def _scenarios(fault_rate: float, seed: int) -> list[tuple[str, FaultPlan]]:
    """The scenario ladder, mildest to nastiest, all seeded."""
    kill_schedule = (3, 11)
    return [
        ("fault-free", FaultPlan(specs=(), seed=seed)),
        (
            "search-raise",
            FaultPlan(
                specs=(FaultSpec(SITE_SEARCH, "raise", rate=fault_rate),), seed=seed
            ),
        ),
        (
            "replay-raise",
            FaultPlan(
                specs=(FaultSpec(SITE_REPLAY, "raise", rate=fault_rate),), seed=seed
            ),
        ),
        (
            "worker-kill",
            FaultPlan(
                specs=(FaultSpec(SITE_LOOP, "kill", at=kill_schedule),), seed=seed
            ),
        ),
        (
            "combined",
            FaultPlan(
                specs=(
                    FaultSpec(SITE_SEARCH, "raise", rate=fault_rate / 2),
                    FaultSpec(SITE_REPLAY, "raise", rate=fault_rate / 2),
                    FaultSpec(SITE_LOOP, "kill", at=(7,)),
                ),
                seed=seed,
            ),
        ),
    ]


def _drive(service: QueryService, schedule, result_timeout: float) -> dict:
    """Open-loop drive that tolerates failure: never raises on a wedged
    ticket, counts it as stranded instead (the thing the gate pins to 0).

    Mirrors :func:`~repro.serving.loadgen.run_open_loop`, but a chaos run
    exists precisely to observe broken completion behaviour, so the
    driver must survive it to report it.
    """
    clock = time.monotonic
    offered = accepted = rejected = 0
    tickets = []
    start = clock()
    for arrival in schedule:
        delay = start + arrival.offset - clock()
        if delay > 0:
            time.sleep(delay)
        offered += len(arrival.queries)
        try:
            tickets.append(service.submit(arrival.queries, tenant=arrival.tenant))
            accepted += len(arrival.queries)
        except AdmissionRejected:
            rejected += len(arrival.queries)
    service.stop()  # drain: everything admitted must now resolve
    deadline = clock() + result_timeout
    stranded_tickets = sum(
        0 if ticket.wait(max(0.0, deadline - clock())) else 1 for ticket in tickets
    )
    return {
        "offered": offered,
        "accepted": accepted,
        "rejected": rejected,
        "stranded_tickets": stranded_tickets,
        "wall_seconds": clock() - start,
    }


def _fault_free_pin(backend, accelerator, pool, window: int, name: str) -> bool:
    """Prove the injector plumbing is a no-op when it injects nothing.

    Two deterministic drain runs over identical query groups — one with
    no injector, one with an *empty* fault plan threaded through every
    injection point — must produce field-for-field identical flush
    results and query outcomes (interval, status, batch/flush indices).
    """
    groups = [pool[index * 6 : (index + 1) * 6] for index in range(4)]
    base = ServingConfig(
        max_batch=6, max_delay=30.0, window=window, idle_timeout=30.0, name=name
    )

    def drain(config: ServingConfig):
        service = QueryService(QueryEngine(backend), accelerator, config)
        tickets = [service.submit(group) for group in groups]
        service.stop()  # never-started: drains inline, deterministically
        outcomes = [ticket.result(timeout=60.0) for ticket in tickets]
        keyed = [
            (o.query, o.interval, o.status, o.error, o.batch_index, o.flush_index)
            for group_outcomes in outcomes
            for o in group_outcomes
        ]
        return service.result(), keyed

    clean_result, clean_outcomes = drain(base)
    probed_result, probed_outcomes = drain(
        replace(base, faults=FaultPlan(specs=(), seed=0))
    )
    return (
        clean_result.flushes == probed_result.flushes
        and clean_result.issued == probed_result.issued
        and clean_result.batches == probed_result.batches
        and clean_outcomes == probed_outcomes
    )


def run_chaos(
    genome_length: int = 20_000,
    seed: int = 0,
    rate: float = 400.0,
    duration: float = 0.5,
    fault_rate: float = 0.2,
    tenants: int = 3,
    queries_per_arrival: int = 2,
    query_length: int = 24,
    pool_size: int = 256,
    zipf_s: float = 1.1,
    k: int = DEFAULT_STEP,
    max_batch: int = 32,
    max_delay: float = 0.005,
    window: int = 2,
    queue_capacity: int = 2048,
    workers: int = 2,
    replay_retries: int = 2,
    result_timeout: float = 60.0,
) -> ChaosResult:
    """Run the chaos scenario ladder against one shared index/accelerator.

    One fresh service per scenario (the injector state must not leak
    across rows); the arrival schedule is identical across scenarios, so
    the rows differ only in the injected faults.  ``fault_rate`` is the
    per-probe trigger probability of the transient-fault scenarios; the
    worker-kill scenario uses a fixed probe schedule instead so the
    respawn path is exercised deterministically.
    """
    reference = build_dataset("human", simulated_length=genome_length, seed=seed)
    table = ExmaTable(reference.sequence, k=k)
    backend = ExmaBackend(table=table)
    accelerator = ExmaAccelerator(table, None, _scaled_config(exma_full_config()))
    pool = sample_query_pool(
        reference.sequence, pool_size=pool_size, length=query_length, seed=seed
    )
    schedule = make_schedule(
        poisson_schedule(rate, duration, seed=seed),
        pool,
        tenants=tenants,
        queries_per_arrival=queries_per_arrival,
        zipf_s=zipf_s,
        seed=seed,
    )

    rows = []
    for label, plan in _scenarios(fault_rate, seed):
        config = ServingConfig(
            max_batch=max_batch,
            max_delay=max_delay,
            queue_capacity=queue_capacity,
            window=window,
            workers=workers,
            replay_retries=replay_retries,
            faults=plan,
            name=f"EXMA-chaos-{label}",
        )
        service = QueryService(QueryEngine(backend), accelerator, config)
        service.start()
        drive = _drive(service, schedule, result_timeout)
        stats = service.stats
        resolved = stats.completed + stats.failed + stats.cancelled
        stranded = max(0, drive["accepted"] - resolved)
        latencies_ms = [latency * 1e3 for latency in stats.latencies]
        injector = service.faults
        rows.append(
            ChaosRow(
                label=label,
                faulted=bool(plan.specs),
                submitted=drive["offered"],
                accepted=drive["accepted"],
                rejected=drive["rejected"],
                completed=stats.completed,
                failed=stats.failed,
                cancelled=stats.cancelled,
                stranded=stranded,
                availability=(
                    stats.completed / drive["accepted"] if drive["accepted"] else 1.0
                ),
                p50_ms=percentile(latencies_ms, 50.0),
                p99_ms=percentile(latencies_ms, 99.0),
                worker_crashes=stats.worker_crashes,
                replay_faults=stats.replay_faults,
                quarantined=stats.quarantined,
                injected=injector.total_injected if injector is not None else 0,
                wall_seconds=drive["wall_seconds"],
            )
        )

    fault_free_identical = _fault_free_pin(
        backend, accelerator, pool, window, name="EXMA-chaos-pin"
    )

    return ChaosResult(
        rows=rows,
        fault_free_identical=fault_free_identical,
        genome_length=genome_length,
        k=DEFAULT_STEP if k is None else k,
        rate=rate,
        duration=duration,
        fault_rate=fault_rate,
        fault_seed=seed,
        tenants=tenants,
        queries_per_arrival=queries_per_arrival,
        query_length=query_length,
        pool_size=pool_size,
        workers=workers,
        window=window,
        max_batch=max_batch,
        max_delay=max_delay,
        queue_capacity=queue_capacity,
        replay_retries=replay_retries,
    )


def format_chaos(result: ChaosResult) -> str:
    """Render the chaos table."""
    lines = [
        "Chaos - availability under injected faults "
        f"(human {result.genome_length:,} bp, k={result.k}, "
        f"{result.rate:.0f} arrivals/s x {result.queries_per_arrival} queries "
        f"for {result.duration:.2f}s, fault rate {result.fault_rate:.0%}, "
        f"{result.workers} worker(s), W={result.window}, "
        f"{result.replay_retries} replay retries)"
    ]
    lines.append(
        f"{'scenario':>12s} {'accept':>7s} {'done':>6s} {'fail':>5s} {'canc':>5s} "
        f"{'strand':>6s} {'avail':>7s} {'inject':>6s} {'crash':>5s} {'quar':>5s} "
        f"{'p50 ms':>7s} {'p99 ms':>7s}"
    )
    for row in result.rows:
        lines.append(
            f"{row.label:>12s} {row.accepted:7d} {row.completed:6d} {row.failed:5d} "
            f"{row.cancelled:5d} {row.stranded:6d} {row.availability:7.2%} "
            f"{row.injected:6d} {row.worker_crashes:5d} {row.quarantined:5d} "
            f"{row.p50_ms:7.2f} {row.p99_ms:7.2f}"
        )
    lines.append(
        "fault-free pin: "
        + ("identical to clean run" if result.fault_free_identical else "DIVERGED")
    )
    return "\n".join(lines)


def chaos_report(result: ChaosResult, **workload) -> dict:
    """The chaos benchmark as a JSON-ready record (``BENCH_chaos.json``)."""
    return {
        "benchmark": "chaos",
        "workload": {
            "genome_length": result.genome_length,
            "k": result.k,
            "rate": result.rate,
            "duration_s": result.duration,
            "fault_rate": result.fault_rate,
            "fault_seed": result.fault_seed,
            "tenants": result.tenants,
            "queries_per_arrival": result.queries_per_arrival,
            "query_length": result.query_length,
            "pool_size": result.pool_size,
            "workers": result.workers,
            "window": result.window,
            "max_batch": result.max_batch,
            "max_delay_s": result.max_delay,
            "queue_capacity": result.queue_capacity,
            "replay_retries": result.replay_retries,
            "host_cpus": os.cpu_count(),
            **dict(workload),
        },
        "fault_free": {"identical": result.fault_free_identical},
        "rows": [
            {
                "label": row.label,
                "faulted": row.faulted,
                "submitted": row.submitted,
                "accepted": row.accepted,
                "rejected": row.rejected,
                "completed": row.completed,
                "failed": row.failed,
                "cancelled": row.cancelled,
                "stranded": row.stranded,
                "availability": round(row.availability, 6),
                "p50_ms": round(row.p50_ms, 4),
                "p99_ms": round(row.p99_ms, 4),
                "worker_crashes": row.worker_crashes,
                "replay_faults": row.replay_faults,
                "quarantined": row.quarantined,
                "injected": row.injected,
                "wall_seconds": round(row.wall_seconds, 6),
            }
            for row in result.rows
        ],
    }


def write_chaos_json(path: str, result: ChaosResult, **workload) -> dict:
    """Write :func:`chaos_report` to *path*; returns the record."""
    report = chaos_report(result, **workload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report
