"""Experiment harnesses: one entry point per table/figure of the paper."""

from .accel_replay import (
    AccelReplayResult,
    AccelReplayRow,
    accel_replay_report,
    format_accel_replay,
    run_accel_replay,
    write_accel_replay_json,
)
from .common import Workload, build_workload, sample_queries
from .fig01_breakdown import BreakdownRow, format_fig1, run_fig1
from .fig06_prior import Fig6Result, run_fig6
from .fig10_exma_tradeoff import ExmaSizeRow, Fig10Result, exma_size_sweep, run_fig10
from .fig11_12_increments import Fig11_12Result, run_fig11_12
from .fig13_index_error import ErrorComparison, Fig13Result, format_fig13, run_fig13
from .fig15_window import (
    Fig15Result,
    Fig15Row,
    ShardScalingRow,
    format_fig15,
    format_shard_scaling,
    run_fig15_window,
    run_shard_scaling,
    shard_scaling_report,
    write_shard_scaling_json,
)
from .fig18_window import (
    Fig18WindowResult,
    Fig18WindowRow,
    format_fig18_window,
    run_fig18_window,
    window_capacity_report,
    write_window_capacity_json,
)
from .fig18_throughput import (
    BatchingRow,
    Fig18Result,
    Fig18Row,
    format_fig18,
    format_fig18_batching,
    run_fig18,
    run_fig18_batching,
)
from .fig19_20_apps import ApplicationOutcome, Fig19_20Result, format_fig19, format_fig20, run_fig19_20
from .fig21_23_memory import (
    CompressionComparison,
    DsePoint,
    run_fig21,
    run_fig22,
    run_fig23,
)
from .tables import (
    Table1Result,
    Table2Row,
    format_table2,
    run_table1,
    run_table2,
)

__all__ = [
    "AccelReplayResult",
    "AccelReplayRow",
    "accel_replay_report",
    "format_accel_replay",
    "run_accel_replay",
    "write_accel_replay_json",
    "Workload",
    "build_workload",
    "sample_queries",
    "BreakdownRow",
    "format_fig1",
    "run_fig1",
    "Fig6Result",
    "run_fig6",
    "ExmaSizeRow",
    "Fig10Result",
    "exma_size_sweep",
    "run_fig10",
    "Fig11_12Result",
    "run_fig11_12",
    "ErrorComparison",
    "Fig13Result",
    "format_fig13",
    "run_fig13",
    "Fig15Result",
    "Fig15Row",
    "ShardScalingRow",
    "format_fig15",
    "format_shard_scaling",
    "run_fig15_window",
    "run_shard_scaling",
    "shard_scaling_report",
    "write_shard_scaling_json",
    "Fig18Result",
    "Fig18Row",
    "BatchingRow",
    "format_fig18",
    "format_fig18_batching",
    "run_fig18",
    "run_fig18_batching",
    "Fig18WindowResult",
    "Fig18WindowRow",
    "format_fig18_window",
    "run_fig18_window",
    "window_capacity_report",
    "write_window_capacity_json",
    "ApplicationOutcome",
    "Fig19_20Result",
    "format_fig19",
    "format_fig20",
    "run_fig19_20",
    "CompressionComparison",
    "DsePoint",
    "run_fig21",
    "run_fig22",
    "run_fig23",
    "Table1Result",
    "Table2Row",
    "format_table2",
    "run_table1",
    "run_table2",
]
