"""Fig. 6 — inefficiency of prior FM-Index algorithms.

Four panels:

* (a) the DRAM rows touched by 200 consecutive 1-step FM-Index iterations
  are almost all distinct (no row-buffer locality);
* (b) the k-step FM-Index size grows exponentially with k while LISA's
  grows linearly (paper-scale analytic sizes, Eq. 2);
* (c) the LISA-21 learned index has large prediction errors;
* (d) the resulting CPU search throughput of FM-4/5/6 and the LISA
  variants, normalised to 1-step FM-Index.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..accel.baselines import CpuThroughputModel, SoftwareAlgorithm
from ..genome.datasets import HUMAN_PAPER_LENGTH, build_dataset
from ..index.fmindex import FMIndex, SearchTrace
from ..index.kstep import kstep_size_bytes
from ..lisa.ipbwt import lisa_size_bytes
from ..lisa.learned_index import PredictionStats
from ..lisa.search import LisaIndex, LisaSearchStats
from .common import sample_queries

GB = 1024**3


@dataclass(frozen=True)
class RowAccessTrace:
    """Panel (a): locality of consecutive 1-step FM-Index Occ accesses."""

    accesses: int
    distinct_buckets: int
    consecutive_same_bucket_rate: float
    bucket_count: int

    @property
    def distinct_fraction(self) -> float:
        """Distinct buckets touched relative to accesses issued.

        At paper scale (47M rows for the human genome) this is ~1.0 — the
        paper's "197 different rows out of 200 iterations"; at reproduction
        scale the bucket pool is small so the fraction is bounded by
        ``bucket_count / accesses`` and the consecutive-hit rate is the
        meaningful no-locality signal.
        """
        if self.accesses == 0:
            return 0.0
        return self.distinct_buckets / self.accesses


@dataclass(frozen=True)
class Fig6Result:
    """All four panels of Fig. 6."""

    row_trace: RowAccessTrace
    fm_sizes_gb: dict[int, float]
    lisa_sizes_gb: dict[int, float]
    lisa_error_stats: PredictionStats
    lisa_mean_probe: float
    cpu_throughput_normalised: dict[str, float]


def row_access_trace(
    genome_length: int = 60_000, iterations: int = 200, seed: int = 0
) -> RowAccessTrace:
    """Panel (a): Occ-bucket access locality over consecutive iterations.

    Records the bucket touched by every Occ lookup of consecutive 1-step
    backward-search iterations and reports how many distinct buckets were
    touched plus how often two consecutive accesses landed in the same
    bucket — the row-buffer-hit opportunity the paper shows to be absent.
    """
    reference = build_dataset("human", simulated_length=genome_length, seed=seed)
    fm = FMIndex(reference.sequence, bucket_width=64)
    queries = sample_queries(reference.sequence, count=max(4, iterations // 20), length=64, seed=seed)
    trace = SearchTrace()
    for query in queries:
        fm.backward_search(query, trace)
        if trace.iterations >= iterations:
            break
    accesses = trace.bucket_accesses[: 2 * iterations]
    same = sum(1 for a, b in zip(accesses, accesses[1:]) if a == b)
    return RowAccessTrace(
        accesses=len(accesses),
        distinct_buckets=len(set(accesses)),
        consecutive_same_bucket_rate=same / max(1, len(accesses) - 1),
        bucket_count=fm.bucket_count,
    )


def size_vs_step(max_step: int = 32) -> tuple[dict[int, float], dict[int, float]]:
    """Panel (b): paper-scale FM-k and LISA-k sizes in GB."""
    fm_sizes = {}
    lisa_sizes = {}
    for k in range(1, max_step + 1):
        if k <= 16:
            fm_sizes[k] = kstep_size_bytes(HUMAN_PAPER_LENGTH, k, bucket_width=128) / GB
        lisa_sizes[k] = lisa_size_bytes(HUMAN_PAPER_LENGTH, k) / GB
    return fm_sizes, lisa_sizes


def lisa_error_distribution(
    genome_length: int = 30_000, k: int = 6, seed: int = 0
) -> tuple[PredictionStats, float]:
    """Panel (c): LISA learned-index error statistics on the scaled genome."""
    reference = build_dataset("human", simulated_length=genome_length, seed=seed)
    lisa = LisaIndex(reference.sequence, k=k, use_learned_index=True)
    assert lisa.learned_index is not None
    stats = lisa.learned_index.error_stats(sample=2000, seed=seed)
    search_stats = LisaSearchStats()
    for query in sample_queries(reference.sequence, count=30, length=4 * k, seed=seed):
        lisa.backward_search(query, search_stats)
    return stats, search_stats.mean_probe


def cpu_throughput_comparison(
    lisa_mean_error: float, lisa_perfect_error: float = 0.0
) -> dict[str, float]:
    """Panel (d): CPU throughput of the paper's schemes, normalised to FM-1.

    The LISA schemes' scan overhead comes from the *measured* learned-index
    error (scaled genome); the k-step sizes that drive the TLB penalty are
    the paper-scale analytic sizes.
    """
    model = CpuThroughputModel()
    schemes = [
        SoftwareAlgorithm("FM-1", 1, structure_size_gb=kstep_size_bytes(HUMAN_PAPER_LENGTH, 1, 128) / GB),
        SoftwareAlgorithm("FM-4", 4, structure_size_gb=kstep_size_bytes(HUMAN_PAPER_LENGTH, 4, 128) / GB),
        SoftwareAlgorithm("FM-5", 5, structure_size_gb=kstep_size_bytes(HUMAN_PAPER_LENGTH, 5, 128) / GB),
        SoftwareAlgorithm("FM-6", 6, structure_size_gb=kstep_size_bytes(HUMAN_PAPER_LENGTH, 6, 128) / GB),
        SoftwareAlgorithm(
            "LISA-11",
            11,
            index_node_accesses_per_lookup=2.0,
            scan_entries_per_lookup=lisa_mean_error,
            structure_size_gb=lisa_size_bytes(HUMAN_PAPER_LENGTH, 11) / GB,
        ),
        SoftwareAlgorithm(
            "LISA-21",
            21,
            index_node_accesses_per_lookup=2.0,
            scan_entries_per_lookup=lisa_mean_error,
            structure_size_gb=lisa_size_bytes(HUMAN_PAPER_LENGTH, 21) / GB,
        ),
        SoftwareAlgorithm(
            "LISA-32",
            32,
            index_node_accesses_per_lookup=2.0,
            scan_entries_per_lookup=lisa_mean_error,
            structure_size_gb=lisa_size_bytes(HUMAN_PAPER_LENGTH, 32) / GB,
        ),
        SoftwareAlgorithm(
            "LISA-21P",
            21,
            index_node_accesses_per_lookup=2.0,
            scan_entries_per_lookup=lisa_perfect_error,
            structure_size_gb=lisa_size_bytes(HUMAN_PAPER_LENGTH, 21) / GB,
        ),
        SoftwareAlgorithm(
            "LISA-21PC",
            21,
            index_node_accesses_per_lookup=0.0,
            scan_entries_per_lookup=lisa_perfect_error,
            structure_size_gb=lisa_size_bytes(HUMAN_PAPER_LENGTH, 21) / GB,
        ),
    ]
    throughputs = {scheme.name: model.bases_per_second(scheme) for scheme in schemes}
    baseline = throughputs["FM-1"]
    return {name: value / baseline for name, value in throughputs.items()}


def run_fig6(genome_length: int = 30_000, seed: int = 0) -> Fig6Result:
    """Run all four panels."""
    row_trace = row_access_trace(genome_length=genome_length, seed=seed)
    fm_sizes, lisa_sizes = size_vs_step()
    error_stats, mean_probe = lisa_error_distribution(genome_length=genome_length, seed=seed)
    normalised = cpu_throughput_comparison(lisa_mean_error=max(error_stats.mean_error, mean_probe))
    return Fig6Result(
        row_trace=row_trace,
        fm_sizes_gb=fm_sizes,
        lisa_sizes_gb=lisa_sizes,
        lisa_error_stats=error_stats,
        lisa_mean_probe=mean_probe,
        cpu_throughput_normalised=normalised,
    )
