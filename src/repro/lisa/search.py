"""LISA backward search: IP-BWT + learned index.

One LISA search iteration consumes k symbols: the query is split into
k-symbol chunks from the right; each chunk plus the current ``low`` /
``high`` pointer forms a key whose lower bound in the IP-BWT is the new
pointer value.  With an exact binary search each iteration costs
``log2 |G|`` comparisons; with the learned index it costs one prediction
plus a probe proportional to the prediction error.  Both paths are
implemented so the experiments can quantify the error-driven overhead
(Fig. 6(c)/(d)) exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..genome.alphabet import SENTINEL
from ..index.fmindex import Interval
from .ipbwt import IPBWT
from .learned_index import RecursiveModelIndex


@dataclass
class LisaSearchStats:
    """Counters for LISA searches (per batch)."""

    iterations: int = 0
    binary_comparisons: int = 0
    index_predictions: int = 0
    extra_probes: int = 0
    probe_counts: list[int] = field(default_factory=list)

    @property
    def mean_probe(self) -> float:
        """Mean linear-search overhead per learned-index lookup."""
        if not self.probe_counts:
            return 0.0
        return float(np.mean(self.probe_counts))


class LisaIndex:
    """LISA search structure: an IP-BWT and an optional learned index.

    Args:
        reference: DNA reference string.
        k: symbols consumed per iteration (the paper evaluates 11/21/32).
        use_learned_index: when False, every lower bound is a binary
            search; when True, the RMI predicts and a probe corrects.
        fanout: RMI fanout; scaled with the IP-BWT size to keep the
            parameters-to-entries ratio fixed, as LISA does.
    """

    def __init__(
        self,
        reference: str,
        k: int,
        use_learned_index: bool = True,
        fanout: int | None = None,
    ) -> None:
        self._ipbwt = IPBWT(reference, k)
        self._use_learned = use_learned_index
        self._keys = self._ipbwt.numeric_keys()
        if use_learned_index:
            if fanout is None:
                fanout = max(4, len(self._ipbwt) // 256)
            self._rmi: RecursiveModelIndex | None = RecursiveModelIndex(
                self._keys, fanout=fanout
            )
        else:
            self._rmi = None

    @property
    def ipbwt(self) -> IPBWT:
        """The underlying IP-BWT array."""
        return self._ipbwt

    @property
    def k(self) -> int:
        """Symbols consumed per search iteration."""
        return self._ipbwt.k

    @property
    def learned_index(self) -> RecursiveModelIndex | None:
        """The RMI, when enabled."""
        return self._rmi

    def lower_bound(self, kmer: str, pos: int) -> tuple[int, int]:
        """Lower bound of (kmer, pos) plus its lookup cost.

        The cost is binary-search comparisons without the learned index,
        linear-probe length with it.  Shared by the sequential search and
        the batched :class:`~repro.engine.backends.LisaBackend`, so the
        two paths can never diverge on dispatch or cost accounting.
        """
        if self._rmi is None:
            comparisons = int(np.ceil(np.log2(len(self._ipbwt) + 1)))
            return self._ipbwt.lower_bound(kmer, pos), comparisons
        return self._rmi.lookup(self._ipbwt.numeric_key(kmer, pos))

    def padded_chunk(self, chunk: str, smallest: bool) -> str:
        """LISA's padding rule for a trailing chunk shorter than k."""
        pad = self.k - len(chunk)
        return chunk + (SENTINEL if smallest else "T") * pad

    def _lower_bound(self, kmer: str, pos: int, stats: LisaSearchStats | None) -> int:
        """Lower bound of (kmer, pos), via the learned index when enabled."""
        value, cost = self.lower_bound(kmer, pos)
        if stats is not None:
            if self._rmi is None:
                stats.binary_comparisons += cost
            else:
                stats.index_predictions += 1
                stats.extra_probes += cost
                stats.probe_counts.append(cost)
        return value

    def backward_search(self, query: str, stats: LisaSearchStats | None = None) -> Interval:
        """Find the BW-matrix interval of all occurrences of *query*.

        The query is split into k-symbol chunks from the left (matching the
        paper's "TAG -> TA, G" example); the trailing chunk — which is the
        only one that may be shorter than k — is processed first, against
        the full matrix, using LISA's smallest/largest-symbol padding.  The
        remaining full chunks are then consumed right to left.
        """
        if not query:
            raise ValueError("query must be non-empty")
        k = self.k
        length = len(query)
        leftover = length % k

        interval = self._ipbwt_full_interval()
        right = length
        if leftover:
            tail = query[length - leftover :]
            low = self._lower_bound_padded(tail, 0, smallest=True, stats=stats)
            high = self._lower_bound_padded(tail, len(self._ipbwt), smallest=False, stats=stats)
            interval = Interval(low, high)
            if stats is not None:
                stats.iterations += 1
            if interval.empty:
                return interval
            right -= leftover
        while right > 0:
            kmer = query[right - k : right]
            low = self._lower_bound(kmer, interval.low, stats)
            high = self._lower_bound(kmer, interval.high, stats)
            interval = Interval(low, high)
            if stats is not None:
                stats.iterations += 1
            if interval.empty:
                return interval
            right -= k
        return interval

    def _ipbwt_full_interval(self) -> Interval:
        return Interval(0, len(self._ipbwt))

    def _lower_bound_padded(
        self, chunk: str, pos: int, smallest: bool, stats: LisaSearchStats | None
    ) -> int:
        """Lower bound for a padded partial chunk (LISA's padding rule)."""
        return self._lower_bound(self.padded_chunk(chunk, smallest), pos, stats)

    def occurrence_count(self, query: str) -> int:
        """Number of occurrences of *query* in the reference."""
        return self.backward_search(query).count

    def find(self, query: str) -> list[int]:
        """All reference positions where *query* occurs (sorted)."""
        return self._ipbwt.locate(self.backward_search(query))

    def iterations_for_query(self, query_length: int) -> int:
        """Backward-search iterations needed for a query of this length."""
        full, leftover = divmod(query_length, self.k)
        return full + (1 if leftover else 0)
