"""LISA substrate: IP-BWT, recursive-model learned index, LISA search."""

from .ipbwt import IPBWT, IPBWTEntry, lisa_size_bytes
from .learned_index import LinearModel, PredictionStats, RecursiveModelIndex
from .search import LisaIndex, LisaSearchStats

__all__ = [
    "IPBWT",
    "IPBWTEntry",
    "lisa_size_bytes",
    "LinearModel",
    "PredictionStats",
    "RecursiveModelIndex",
    "LisaIndex",
    "LisaSearchStats",
]
