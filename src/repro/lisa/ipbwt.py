"""LISA's Index-Paired BWT (IP-BWT) array.

LISA (Learned Indexes for Sequence Analysis, reference [28] of the paper)
supports multi-symbol backward search with a data structure that grows only
linearly in the step number k.  Each IP-BWT entry corresponding to
BW-matrix row ``i`` is the pair ``[kmer, N]`` where ``kmer`` is the first k
symbols of that row and ``N`` is the BW-matrix row of the rotation obtained
by moving those k symbols to the end (i.e. the row of the suffix starting k
positions later).  Because rows are sorted, the IP-BWT is sorted by
``(kmer, N)`` and one backward-search step is a lower-bound lookup of
``(query_kmer, pos)``.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

import numpy as np

from ..genome.alphabet import SENTINEL
from ..index.fmindex import Interval
from ..index.suffix_array import inverse_suffix_array, suffix_array


@dataclass(frozen=True)
class IPBWTEntry:
    """One IP-BWT entry: the row's first k symbols and its paired row."""

    kmer: str
    paired_row: int

    def key(self) -> tuple[str, int]:
        """Sort/search key."""
        return (self.kmer, self.paired_row)


class IPBWT:
    """The IP-BWT array for a reference and step number k.

    Args:
        reference: DNA reference (sentinel appended internally).
        k: number of symbols consumed per backward-search step.
    """

    def __init__(self, reference: str, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if not reference:
            raise ValueError("reference must be non-empty")
        text = reference if reference.endswith(SENTINEL) else reference + SENTINEL
        self._text = text
        self._k = k
        self._n = len(text)
        self._sa = suffix_array(text)
        self._isa = inverse_suffix_array(self._sa)
        self._entries = self._build_entries()
        self._keys = [entry.key() for entry in self._entries]

    def _build_entries(self) -> list[IPBWTEntry]:
        entries = []
        doubled = self._text + self._text
        for row in range(self._n):
            pos = int(self._sa[row])
            kmer = doubled[pos : pos + self._k]
            paired = int(self._isa[(pos + self._k) % self._n])
            entries.append(IPBWTEntry(kmer=kmer, paired_row=paired))
        return entries

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, row: int) -> IPBWTEntry:
        return self._entries[row]

    @property
    def k(self) -> int:
        """Step number of this IP-BWT."""
        return self._k

    @property
    def reference_length(self) -> int:
        """Length of the sentinel-terminated reference."""
        return self._n

    @property
    def suffix_array_(self) -> np.ndarray:
        """The underlying suffix array (for locate)."""
        return self._sa

    def is_sorted(self) -> bool:
        """Whether entries are sorted by (kmer, paired_row) — an invariant."""
        return all(self._keys[i] <= self._keys[i + 1] for i in range(len(self._keys) - 1))

    def lower_bound(self, kmer: str, pos: int) -> int:
        """First row whose (kmer, paired_row) key is >= (kmer, pos).

        This is exactly one backward-search step of LISA:
        ``Count(kmer) + Occ(kmer, pos)``.
        """
        return bisect.bisect_left(self._keys, (kmer, pos))

    def step(self, kmer: str, interval: Interval) -> Interval:
        """Apply one k-symbol backward-search step to *interval*."""
        if len(kmer) != self._k:
            raise ValueError(f"expected a {self._k}-mer, got {kmer!r}")
        low = self.lower_bound(kmer, interval.low)
        high = self.lower_bound(kmer, interval.high)
        return Interval(low, high)

    def partial_step(self, prefix: str) -> Interval:
        """Initial step for a query chunk shorter than k (LISA padding).

        The partial chunk is only ever the first-processed chunk (the
        query's tail), so the current interval is the full matrix.  LISA
        pads the chunk with the smallest symbol for ``low`` and the largest
        for ``high``.
        """
        if not 0 < len(prefix) < self._k:
            raise ValueError("partial chunk length must be in (0, k)")
        pad = self._k - len(prefix)
        low_key = prefix + SENTINEL * pad
        high_key = prefix + "T" * pad
        low = self.lower_bound(low_key, 0)
        high = self.lower_bound(high_key, self._n)
        return Interval(low, high)

    def locate(self, interval: Interval) -> list[int]:
        """Reference positions for a BW-matrix interval."""
        if interval.empty:
            return []
        return sorted(int(self._sa[row]) for row in range(interval.low, interval.high))

    def numeric_keys(self) -> np.ndarray:
        """Map each entry to a monotone float key for the learned index.

        The key packs the k-mer (symbols mapped to 0..4 with the sentinel
        as 0) and the paired row into a single number that preserves the
        (kmer, paired_row) order.
        """
        base = 5
        keys = np.empty(self._n, dtype=np.float64)
        for row, entry in enumerate(self._entries):
            value = 0
            for symbol in entry.kmer:
                value = value * base + (SENTINEL + "ACGT").index(symbol)
            keys[row] = value * (self._n + 1) + entry.paired_row
        return keys

    def numeric_key(self, kmer: str, pos: int) -> float:
        """Numeric key for a query pair, comparable with :meth:`numeric_keys`."""
        value = 0
        for symbol in kmer:
            value = value * 5 + (SENTINEL + "ACGT").index(symbol)
        return float(value * (self._n + 1) + pos)


def lisa_size_bytes(genome_length: int, k: int) -> int:
    """Analytic LISA (IP-BWT + learned index) size for a paper-scale genome.

    Each IP-BWT entry stores a k-mer (2 bits per symbol) and a paired row
    number (``ceil(log2 |G|)`` bits); the learned index adds roughly half a
    byte per entry (the paper reports ~1.5 GB for the 3 Gbp human genome).
    Grows linearly in k, matching Fig. 6(b).
    """
    if genome_length <= 0:
        raise ValueError("genome_length must be positive")
    if k <= 0:
        raise ValueError("k must be positive")
    row_bits = math.ceil(math.log2(genome_length + 1))
    entry_bits = 2 * k + row_bits
    ipbwt_bytes = genome_length * entry_bits / 8
    learned_index_bytes = genome_length * 0.5
    return int(ipbwt_bytes + learned_index_bytes)
