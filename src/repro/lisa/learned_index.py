"""Recursive-model learned index (RMI) used by LISA.

LISA replaces the binary search over the IP-BWT with a learned index in the
style of Kraska et al.: a small hierarchy of models where the root predicts
which second-level model to consult and the second-level model predicts the
entry's position.  If the prediction is wrong, a local linear search (an
exponential/galloping probe here) finds the true lower bound.  The paper's
critique — and the motivation for EXMA — is that this index must cover all
``|G|`` IP-BWT entries, so its per-lookup error is large (Fig. 6(c)).

The implementation is deliberately the straightforward linear-model RMI so
its error statistics can be compared against the EXMA MTL index under
identical conditions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LinearModel:
    """A 1-D linear regression ``y = slope * x + intercept``."""

    slope: float
    intercept: float

    def predict(self, x: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the model."""
        return self.slope * x + self.intercept

    @staticmethod
    def fit(x: np.ndarray, y: np.ndarray) -> "LinearModel":
        """Least-squares fit; degenerate inputs produce a constant model."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.size == 0:
            return LinearModel(0.0, 0.0)
        if x.size == 1 or float(np.ptp(x)) == 0.0:
            return LinearModel(0.0, float(np.mean(y)))
        slope, intercept = np.polyfit(x, y, 1)
        return LinearModel(float(slope), float(intercept))

    @property
    def parameter_count(self) -> int:
        """Number of trainable parameters (weight + bias)."""
        return 2


@dataclass
class PredictionStats:
    """Aggregate error statistics of a learned index on its keys."""

    mean_error: float
    max_error: float
    min_error: float
    percentile_25: float
    percentile_50: float
    percentile_75: float

    @staticmethod
    def from_errors(errors: np.ndarray) -> "PredictionStats":
        """Summarise an array of absolute prediction errors."""
        errors = np.asarray(errors, dtype=np.float64)
        if errors.size == 0:
            return PredictionStats(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return PredictionStats(
            mean_error=float(errors.mean()),
            max_error=float(errors.max()),
            min_error=float(errors.min()),
            percentile_25=float(np.percentile(errors, 25)),
            percentile_50=float(np.percentile(errors, 50)),
            percentile_75=float(np.percentile(errors, 75)),
        )


class RecursiveModelIndex:
    """Two-level RMI over a sorted array of numeric keys.

    Args:
        keys: sorted 1-D array of keys (positions are their indices).
        fanout: number of second-level models.  The paper fixes the ratio
            between model parameters and indexed entries; callers control
            that by choosing ``fanout`` relative to ``len(keys)``.
    """

    def __init__(self, keys: np.ndarray, fanout: int = 64) -> None:
        keys = np.asarray(keys, dtype=np.float64)
        if keys.ndim != 1 or keys.size == 0:
            raise ValueError("keys must be a non-empty 1-D array")
        if np.any(np.diff(keys) < 0):
            raise ValueError("keys must be sorted in non-decreasing order")
        if fanout <= 0:
            raise ValueError("fanout must be positive")
        self._keys = keys
        self._n = int(keys.size)
        self._fanout = min(fanout, self._n)
        positions = np.arange(self._n, dtype=np.float64)
        self._root = LinearModel.fit(keys, positions * self._fanout / self._n)
        self._leaves = self._fit_leaves(positions)

    def _fit_leaves(self, positions: np.ndarray) -> list[LinearModel]:
        """Fit one linear leaf per root bucket, using root routing."""
        buckets: list[list[int]] = [[] for _ in range(self._fanout)]
        routed = np.clip(
            np.floor(self._root.predict(self._keys)).astype(np.int64), 0, self._fanout - 1
        )
        for idx, bucket in enumerate(routed):
            buckets[int(bucket)].append(idx)
        leaves = []
        for bucket in buckets:
            if bucket:
                idx = np.array(bucket)
                leaves.append(LinearModel.fit(self._keys[idx], positions[idx]))
            else:
                leaves.append(LinearModel(0.0, 0.0))
        return leaves

    @property
    def size(self) -> int:
        """Number of indexed keys."""
        return self._n

    @property
    def parameter_count(self) -> int:
        """Total trainable parameters across root and leaves."""
        return self._root.parameter_count + sum(leaf.parameter_count for leaf in self._leaves)

    def predict(self, key: float) -> int:
        """Predicted position of *key* (clamped to the valid range)."""
        bucket = int(np.clip(np.floor(self._root.predict(key)), 0, self._fanout - 1))
        predicted = self._leaves[bucket].predict(key)
        return int(np.clip(round(float(predicted)), 0, self._n - 1))

    def lookup(self, key: float) -> tuple[int, int]:
        """Exact lower-bound position of *key* plus the probe cost.

        Returns ``(position, extra_probes)`` where ``extra_probes`` is the
        number of entries inspected beyond the single predicted entry —
        the linear-search overhead the paper profiles in Fig. 6(c).
        """
        predicted = self.predict(key)
        true_pos = int(np.searchsorted(self._keys, key, side="left"))
        return true_pos, abs(true_pos - predicted)

    def prediction_errors(self, sample: int | None = None, seed: int = 0) -> np.ndarray:
        """Absolute error of the index on its own keys (optionally sampled)."""
        if sample is not None and sample < self._n:
            rng = np.random.default_rng(seed)
            idx = rng.choice(self._n, size=sample, replace=False)
        else:
            idx = np.arange(self._n)
        errors = np.empty(idx.size, dtype=np.float64)
        for i, key_idx in enumerate(idx):
            errors[i] = abs(self.predict(float(self._keys[key_idx])) - int(key_idx))
        return errors

    def error_stats(self, sample: int | None = 2000, seed: int = 0) -> PredictionStats:
        """Error statistics in the format of Fig. 6(c)."""
        return PredictionStats.from_errors(self.prediction_errors(sample=sample, seed=seed))
