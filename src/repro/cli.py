"""Command-line interface for the EXMA reproduction.

Five subcommands cover the common workflows without writing Python:

* ``repro-exma search``    — build an EXMA table over a FASTA reference (or
  a synthetic one) and run exact-match queries against it;
* ``repro-exma experiment``— run one of the per-figure experiment harnesses
  and print the paper-style output;
* ``repro-exma serve``     — run the always-on serving layer over stdin
  queries (one per line, optionally ``tenant<TAB>query``), with dynamic
  batching and per-flush accelerator replay;
* ``repro-exma serving-bench`` — measure the serving layer under open-loop
  Poisson/bursty load and record ``BENCH_serving.json``;
* ``repro-exma info``      — print the paper-scale size models for a chosen
  genome length and step number.

Example::

    repro-exma search --genome-length 50000 --queries ACGTACGTACGT TTGACCA
    repro-exma experiment fig18 --genome-length 30000
    repro-exma experiment chaos --fault-rate 0.2 --json BENCH_chaos.json
    printf 'ACGTACGT\\nTTGACCAG\\n' | repro-exma serve --genome-length 20000
    printf 'ACGTACGT\\n' | repro-exma serve --inject engine.search:raise:0.5
    repro-exma serving-bench --rate 500 --duration 1 --json BENCH_serving.json
    repro-exma info --genome-length 3000000000 --step 15
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .engine import EXECUTORS, QueryEngine, available_backends
from .exma.table import exma_size_breakdown
from .genome.io import read_fasta
from .genome.sequence import random_genome
from .index.kstep import kstep_size_bytes
from .lisa.ipbwt import lisa_size_bytes

GB = 1024**3

#: Experiments runnable from the CLI, mapped to their harness entry points.
EXPERIMENT_NAMES = (
    "accel-replay",
    "chaos",
    "dse",
    "fig1",
    "fig6",
    "fig10",
    "fig13",
    "fig15-window",
    "fig18",
    "fig18-batching",
    "fig18-window",
    "fig21",
    "fig23",
    "shard-scaling",
    "table2",
)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-exma",
        description="EXMA (HPCA 2021) reproduction: exact-match search and experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    search = subparsers.add_parser(
        "search", help="search a query batch through the batched query engine"
    )
    search.add_argument("--reference", help="FASTA file with the reference (first record used)")
    search.add_argument(
        "--genome-length", type=int, default=50_000, help="synthetic genome length when no FASTA"
    )
    search.add_argument("--step", type=int, default=6, help="EXMA/LISA step number k")
    search.add_argument("--seed", type=int, default=0, help="synthetic genome seed")
    search.add_argument(
        "--no-index",
        action="store_true",
        help="use exact Occ resolution (downgrades learned backends to their exact variants)",
    )
    search.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="search backend (default: exma-mtl, or exma with --no-index)",
    )
    search.add_argument("--queries", nargs="+", required=True, help="DNA queries to search")
    _add_sharding_flags(search)

    experiment = subparsers.add_parser("experiment", help="run one paper experiment")
    experiment.add_argument("name", choices=EXPERIMENT_NAMES, help="experiment to run")
    experiment.add_argument("--genome-length", type=int, default=20_000)
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument(
        "--window",
        type=int,
        default=8,
        help="largest coalescing window W for fig15-window and fig18-window "
        "(sweeps powers of two up to W)",
    )
    experiment.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="queries per batch (default: 256 for shard-scaling, 64 for "
        "fig18-window, 2000 for accel-replay)",
    )
    experiment.add_argument(
        "--batch-count",
        type=int,
        default=None,
        help="consecutive query batches for fig18-window (default: 16)",
    )
    experiment.add_argument(
        "--query-length",
        type=int,
        default=None,
        help="query length for shard-scaling, fig18-window and accel-replay "
        "(default: 48)",
    )
    experiment.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats (best-of) for shard-scaling",
    )
    experiment.add_argument(
        "--megabase-length",
        type=int,
        default=0,
        help="accel-replay: also measure a megabase-scale row over a reference "
        "of this many bp (0 disables; the recorded benchmark uses 1000000)",
    )
    experiment.add_argument(
        "--replay-workers",
        default=None,
        metavar="N[,N...]",
        help="replay-pool workers: a comma-separated sweep for accel-replay "
        "(default: 1,2,4) or a single count for fig18-window (default: "
        "REPRO_DEFAULT_REPLAY_WORKERS or serial)",
    )
    experiment.add_argument(
        "--replay-executor",
        choices=EXECUTORS,
        default=None,
        help="worker pool kind for --replay-workers "
        "(default: REPRO_DEFAULT_EXECUTOR or thread)",
    )
    experiment.add_argument(
        "--replay-batches",
        type=int,
        default=8,
        help="accel-replay: query batches streamed through the replay-scaling "
        "sweep (each batch's flush is one parallel epoch)",
    )
    experiment.add_argument(
        "--fault-rate",
        type=float,
        default=0.2,
        help="chaos: per-probe Bernoulli fault rate for the injected scenarios",
    )
    experiment.add_argument(
        "--chaos-rate",
        type=float,
        default=400.0,
        help="chaos: mean client arrivals per second of the open-loop load",
    )
    experiment.add_argument(
        "--chaos-duration",
        type=float,
        default=0.5,
        help="chaos: offered-load horizon in seconds per scenario",
    )
    experiment.add_argument(
        "--grid",
        default=None,
        metavar="SPEC",
        help="dse: the sweep grid as ';'-separated axes, e.g. "
        '"cam=64,128;base_ways=4,8;page=close,dynamic;window=1,2;mtl=16,64" '
        "(default: the built-in 4-knob toy grid)",
    )
    experiment.add_argument(
        "--workers",
        type=int,
        default=None,
        help="dse: design-point jobs running concurrently on the worker "
        "pool (--replay-executor picks the pool kind; default: serial)",
    )
    experiment.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the shard-scaling / window-capacity / accel-replay "
        "/ dse record to PATH as JSON",
    )
    _add_sharding_flags(experiment)

    serve = subparsers.add_parser(
        "serve",
        help="serve stdin queries through the always-on dynamic-batching layer",
    )
    serve.add_argument("--reference", help="FASTA file with the reference (first record used)")
    serve.add_argument(
        "--genome-length", type=int, default=50_000, help="synthetic genome length when no FASTA"
    )
    serve.add_argument("--step", type=int, default=6, help="EXMA step number k")
    serve.add_argument("--seed", type=int, default=0, help="synthetic genome seed")
    serve.add_argument(
        "--no-accel",
        action="store_true",
        help="skip the per-flush accelerator replay (search-only service)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="batcher workers draining the shared admission queue",
    )
    serve.add_argument(
        "--replay-workers",
        type=int,
        default=1,
        help="flush-replay pool workers shared by the batcher workers "
        "(1 keeps replay inline on each batcher thread)",
    )
    serve.add_argument(
        "--replay-executor",
        choices=EXECUTORS,
        default=None,
        help="worker pool kind for --replay-workers "
        "(default: REPRO_DEFAULT_EXECUTOR or thread)",
    )
    serve.add_argument(
        "--inject",
        action="append",
        default=None,
        metavar="SITE:KIND:RATE[:DELAY]",
        help="inject deterministic faults into the serving path; repeatable. "
        "SITE is one of engine.search, replay.flush, pool.submit, "
        "worker.loop; KIND is raise, delay or kill; RATE is a per-probe "
        "probability or @i,j exact probe indices",
    )
    serve.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the per-site fault-injection RNG streams",
    )
    _add_serving_flags(serve)
    _add_sharding_flags(serve)

    bench = subparsers.add_parser(
        "serving-bench",
        help="measure the serving layer under open-loop Poisson/bursty load",
    )
    bench.add_argument("--genome-length", type=int, default=20_000)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--step", type=int, default=6, help="EXMA step number k")
    bench.add_argument(
        "--rate", type=float, default=500.0, help="mean client arrivals per second"
    )
    bench.add_argument(
        "--duration", type=float, default=1.0, help="offered-load horizon in seconds"
    )
    bench.add_argument("--tenants", type=int, default=4, help="round-robin client tenants")
    bench.add_argument(
        "--queries-per-arrival", type=int, default=4, help="queries each arrival submits"
    )
    bench.add_argument("--query-length", type=int, default=28)
    bench.add_argument(
        "--pool-size", type=int, default=512, help="distinct queries in the Zipf pool"
    )
    bench.add_argument(
        "--zipf-s", type=float, default=1.1, help="Zipf skew exponent of the query pool"
    )
    bench.add_argument(
        "--workers",
        default="1",
        help="comma-separated batcher worker counts to sweep (e.g. 1,2,4)",
    )
    bench.add_argument(
        "--rate-sweep",
        default=None,
        metavar="MULTIPLIERS",
        help="comma-separated offered-load multipliers of --rate (e.g. "
        "1,2,4,8,16); runs the saturation sweep to the knee and records "
        "the rejection/latency-vs-load curves alongside the headline rows",
    )
    bench.add_argument(
        "--sweep-duration",
        type=float,
        default=0.5,
        help="offered-load horizon in seconds per saturation rung",
    )
    bench.add_argument(
        "--sweep-queue-capacity",
        type=int,
        default=512,
        help="admission-queue bound during the saturation sweep (tighter "
        "than --queue-capacity so the top rung actually saturates)",
    )
    bench.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the serving record to PATH as JSON",
    )
    _add_serving_flags(bench)

    info = subparsers.add_parser("info", help="print paper-scale size models")
    info.add_argument("--genome-length", type=int, default=3_000_000_000)
    info.add_argument("--step", type=int, default=15)
    return parser


def _add_serving_flags(parser: argparse.ArgumentParser) -> None:
    """The dynamic-batching knobs shared by serve and serving-bench."""
    parser.add_argument(
        "--max-batch", type=int, default=64, help="most queries per dynamic batch"
    )
    parser.add_argument(
        "--max-delay",
        type=float,
        default=0.005,
        help="admission window in seconds (longest a query waits for a batch)",
    )
    parser.add_argument(
        "--queue-capacity",
        type=int,
        default=4096,
        help="bounded admission queue; submits beyond it are rejected",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=2,
        help="coalescing window W (dynamic batches merged per flush replay)",
    )


def _add_sharding_flags(parser: argparse.ArgumentParser) -> None:
    """The parallel-path knobs shared by search and experiment."""
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="split query batches across this many workers "
        "(default: REPRO_DEFAULT_SHARDS or serial)",
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTORS,
        default=None,
        help="worker pool for --shards (default: REPRO_DEFAULT_EXECUTOR or thread)",
    )


def _load_reference(args: argparse.Namespace) -> str:
    if args.reference:
        records = read_fasta(args.reference)
        if not records:
            raise SystemExit(f"no FASTA records in {args.reference}")
        return records[0].sequence
    return random_genome(args.genome_length, seed=args.seed)


#: --no-index downgrades of the learned backends to their exact variants.
_EXACT_VARIANT = {"exma-mtl": "exma", "exma-learned": "exma", "lisa-learned": "lisa"}


def _run_search(args: argparse.Namespace) -> int:
    reference = _load_reference(args)
    backend_name = args.backend or "exma-mtl"
    if args.no_index:
        backend_name = _EXACT_VARIANT.get(backend_name, backend_name)
    kwargs: dict = {}
    if backend_name.startswith(("exma", "lisa")):
        kwargs["k"] = args.step
    if backend_name == "exma-mtl":
        kwargs.update(model_threshold=32, epochs=100)
    engine = QueryEngine.from_reference(
        reference, name=backend_name, shards=args.shards, executor=args.executor, **kwargs
    )
    print(f"reference: {len(reference):,} bp, backend {backend_name}, step k={args.step}")
    if engine.shards > 1:
        print(f"sharded: {engine.shards} shards via {engine.executor} executor")
    result = engine.search_batch(args.queries)
    for query, interval in zip(args.queries, result.intervals):
        positions = (
            engine.backend.locate(interval) if interval.count and interval.count <= 20 else []
        )
        location = f" at {positions}" if positions else ""
        print(f"  {query}: {interval.count} occurrence(s){location}")
    stats = result.stats
    print(
        f"batch: {stats.queries} queries, {stats.occ_requests_issued} Occ requests"
        f" -> {stats.occ_requests_unique} after coalescing"
        f" ({stats.coalescing_factor:.2f}x)"
    )
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    from . import experiments as ex

    name = args.name
    if name == "accel-replay":
        replay_workers = (1, 2, 4)
        if args.replay_workers:
            replay_workers = _parse_csv(args.replay_workers, int, "--replay-workers")
        result = ex.run_accel_replay(
            genome_length=args.genome_length,
            seed=args.seed,
            query_count=args.batch_size or 2000,
            query_length=args.query_length or 48,
            repeats=args.repeats,
            megabase_length=args.megabase_length,
            replay_workers=replay_workers,
            replay_executor=args.replay_executor or "thread",
            replay_batches=args.replay_batches,
        )
        print(ex.format_accel_replay(result))
        if args.json:
            ex.write_accel_replay_json(args.json, result)
            print(f"wrote {args.json}")
        if not all(row.results_equal for row in result.rows):
            print("ERROR: columnar replay diverged from the object reference")
            return 1
        if not all(row.results_equal for row in result.scaling_rows):
            print("ERROR: parallel replay diverged from the serial epoch order")
            return 1
    elif name == "chaos":
        result = ex.run_chaos(
            genome_length=args.genome_length,
            seed=args.seed,
            rate=args.chaos_rate,
            duration=args.chaos_duration,
            fault_rate=args.fault_rate,
        )
        print(ex.format_chaos(result))
        if args.json:
            ex.write_chaos_json(args.json, result)
            print(f"wrote {args.json}")
        if any(row.stranded for row in result.rows):
            print("ERROR: a chaos scenario stranded accepted queries")
            return 1
        if not result.fault_free_identical:
            print("ERROR: the fault-free scenario diverged from the clean run")
            return 1
    elif name == "dse":
        result = ex.run_dse(
            genome_length=args.genome_length,
            seed=args.seed,
            query_count=args.batch_size or 800,
            query_length=args.query_length or 48,
            batches=args.batch_count or 8,
            grid=args.grid,
            workers=args.workers or 1,
            executor=args.replay_executor or "thread",
        )
        print(ex.format_dse(result))
        if args.json:
            ex.write_dse_json(args.json, result)
            print(f"wrote {args.json}")
        if not result.baseline_matches_run:
            print("ERROR: baseline design point diverged from ExmaAccelerator.run")
            return 1
        if not all(point.rederived_equal for point in result.frontier):
            print("ERROR: a frontier point did not re-derive bit-identically")
            return 1
    elif name == "fig1":
        print(ex.format_fig1(ex.run_fig1(genome_length=args.genome_length, seed=args.seed)))
    elif name == "fig6":
        result = ex.run_fig6(genome_length=args.genome_length, seed=args.seed)
        print("CPU throughput normalised to FM-1:")
        for scheme, value in result.cpu_throughput_normalised.items():
            print(f"  {scheme:10s} {value:5.2f}x")
    elif name == "fig10":
        result = ex.run_fig10(genome_length=args.genome_length, seed=args.seed)
        print("throughput normalised to LISA-21:")
        for scheme, value in result.throughput_normalised.items():
            print(f"  {scheme:9s} {value:5.2f}x")
    elif name == "fig13":
        print(ex.format_fig13(ex.run_fig13(genome_length=args.genome_length, seed=args.seed)))
    elif name == "fig15-window":
        windows = [1]
        while windows[-1] * 2 <= max(1, args.window):
            windows.append(windows[-1] * 2)
        result = ex.run_fig15_window(
            genome_length=args.genome_length,
            seed=args.seed,
            windows=tuple(windows),
            shards=args.shards,
            executor=args.executor,
        )
        print(ex.format_fig15(result))
    elif name == "fig18":
        print(ex.format_fig18(ex.run_fig18(genome_length=args.genome_length, seed=args.seed)))
    elif name == "fig18-window":
        windows = [1]
        while windows[-1] * 2 <= max(1, args.window):
            windows.append(windows[-1] * 2)
        query_length = args.query_length or 48
        replay_workers = None
        if args.replay_workers:
            values = _parse_csv(args.replay_workers, int, "--replay-workers")
            if len(values) != 1:
                raise SystemExit("fig18-window takes a single --replay-workers count")
            replay_workers = values[0]
        result = ex.run_fig18_window(
            genome_length=args.genome_length,
            seed=args.seed,
            windows=tuple(windows),
            batch_count=args.batch_count or 16,
            batch_size=args.batch_size or 64,
            query_length=query_length,
            replay_workers=replay_workers,
            replay_executor=args.replay_executor,
        )
        print(ex.format_fig18_window(result))
        if args.json:
            ex.write_window_capacity_json(
                args.json, result, seed=args.seed, query_length=query_length
            )
            print(f"wrote {args.json}")
        if not result.w1_matches_unwindowed:
            print("ERROR: W=1 sweep diverged from the unwindowed per-batch path")
            return 1
    elif name == "fig18-batching":
        print(
            ex.format_fig18_batching(
                ex.run_fig18_batching(genome_length=args.genome_length, seed=args.seed)
            )
        )
    elif name == "shard-scaling":
        shard_counts = tuple(sorted({1, 2, args.shards or 4}))
        executors = (args.executor,) if args.executor else ("thread", "process")
        batch_size = args.batch_size or 256
        query_length = args.query_length or 48
        rows = ex.run_shard_scaling(
            genome_length=args.genome_length,
            seed=args.seed,
            shard_counts=shard_counts,
            executors=executors,
            batch_size=batch_size,
            query_length=query_length,
            repeats=args.repeats,
            include_forced=True,
        )
        print(ex.format_shard_scaling(rows))
        if args.json:
            ex.write_shard_scaling_json(
                args.json,
                rows,
                genome_length=args.genome_length,
                batch_size=batch_size,
                query_length=query_length,
                seed=args.seed,
                repeats=args.repeats,
            )
            print(f"wrote {args.json}")
    elif name == "fig21":
        for device, value in ex.run_fig21().items():
            print(f"  {device:6s} {value * 100:5.1f}%")
    elif name == "fig23":
        comparison = ex.run_fig23(genome_length=args.genome_length, seed=args.seed)
        print(f"LISA-21 + BdI  : {comparison.lisa_bdi_gb:7.1f} GB")
        print(f"EXMA-15 + CHAIN: {comparison.exma_chain_gb:7.1f} GB")
    elif name == "table2":
        print(ex.format_table2(ex.run_table2()))
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """Serve stdin queries (one per line, optionally ``tenant<TAB>query``)."""
    from .accel.config import exma_full_config
    from .accel.exma_accelerator import ExmaAccelerator
    from .engine.backends import ExmaBackend
    from .experiments.fig18_throughput import _scaled_config
    from .exma.table import ExmaTable
    from .faults import FaultPlan
    from .serving import QueryService, ServingConfig

    reference = _load_reference(args)
    table = ExmaTable(reference, k=args.step)
    engine = QueryEngine(
        ExmaBackend(table=table), shards=args.shards, executor=args.executor
    )
    accelerator = None
    if not args.no_accel:
        accelerator = ExmaAccelerator(table, None, _scaled_config(exma_full_config()))
    faults = None
    if args.inject:
        try:
            faults = FaultPlan.parse(args.inject, seed=args.fault_seed)
        except ValueError as error:
            raise SystemExit(f"invalid --inject spec: {error}")
    config = ServingConfig(
        max_batch=args.max_batch,
        max_delay=args.max_delay,
        queue_capacity=args.queue_capacity,
        window=args.window,
        workers=args.workers,
        replay_workers=args.replay_workers,
        replay_executor=args.replay_executor,
        faults=faults,
    )
    print(
        f"serving: reference {len(reference):,} bp, k={args.step}, "
        f"batch<={config.max_batch} @ {config.max_delay * 1e3:.1f} ms, "
        f"W={config.window}, queue<={config.queue_capacity}, "
        f"workers={config.workers}, replay workers={config.replay_workers}"
        + ("" if accelerator else ", search-only")
        + (f", {len(faults.specs)} fault spec(s)" if faults else "")
    )
    submissions = []
    interrupted = False
    with QueryService(engine, accelerator, config) as service:
        try:
            for line in sys.stdin:
                line = line.strip()
                if not line:
                    continue
                tenant, _, query = line.rpartition("\t")
                tenant = tenant or "default"
                submissions.append(service.submit([query], tenant=tenant))
        except KeyboardInterrupt:
            interrupted = True
            print("\ninterrupted; draining in-flight queries...")
        service.stop()
        for ticket in submissions:
            for outcome in ticket.result(timeout=60.0):
                if outcome.ok:
                    print(
                        f"  {outcome.query}: {outcome.interval.count} occurrence(s)  "
                        f"[tenant {outcome.tenant}, batch {outcome.batch_index}, "
                        f"flush {outcome.flush_index}, {outcome.latency * 1e3:.2f} ms]"
                    )
                else:
                    print(
                        f"  {outcome.query}: {outcome.status}  "
                        f"[tenant {outcome.tenant}, {outcome.error}]"
                    )
        stats = service.stats
    print(
        f"served {stats.completed} queries in {stats.batches} dynamic batch(es), "
        f"{stats.flushes} flush replay(s); p50 "
        f"{stats.latency_percentile(50) * 1e3:.2f} ms, p99 "
        f"{stats.latency_percentile(99) * 1e3:.2f} ms"
        + (
            f"; {stats.failed} failed, {stats.cancelled} cancelled, "
            f"{stats.worker_crashes} worker crash(es)"
            if stats.failed or stats.cancelled or stats.worker_crashes
            else ""
        )
        + (" (interrupted)" if interrupted else "")
    )
    return 0


def _parse_csv(text: str, cast, flag: str) -> tuple:
    """Parse a comma-separated CLI value like ``1,2,4`` into a tuple."""
    try:
        values = tuple(cast(part.strip()) for part in text.split(",") if part.strip())
    except ValueError:
        raise SystemExit(f"invalid {flag} value: {text!r}")
    if not values:
        raise SystemExit(f"{flag} needs at least one value")
    return values


def _run_serving_bench(args: argparse.Namespace) -> int:
    from . import experiments as ex

    workers = _parse_csv(args.workers, int, "--workers")
    result = ex.run_serving_bench(
        genome_length=args.genome_length,
        seed=args.seed,
        rate=args.rate,
        duration=args.duration,
        tenants=args.tenants,
        queries_per_arrival=args.queries_per_arrival,
        query_length=args.query_length,
        pool_size=args.pool_size,
        zipf_s=args.zipf_s,
        k=args.step,
        max_batch=args.max_batch,
        max_delay=args.max_delay,
        window=args.window,
        queue_capacity=args.queue_capacity,
        workers=workers,
    )
    print(ex.format_serving(result))
    saturation = None
    if args.rate_sweep:
        multipliers = _parse_csv(args.rate_sweep, float, "--rate-sweep")
        saturation = ex.run_saturation_sweep(
            genome_length=args.genome_length,
            seed=args.seed,
            base_rate=args.rate,
            multipliers=multipliers,
            duration=args.sweep_duration,
            tenants=args.tenants,
            queries_per_arrival=args.queries_per_arrival,
            query_length=args.query_length,
            pool_size=args.pool_size,
            zipf_s=args.zipf_s,
            k=args.step,
            max_batch=args.max_batch,
            max_delay=args.max_delay,
            window=args.window,
            queue_capacity=args.sweep_queue_capacity,
            workers=workers,
        )
        print(ex.format_saturation(saturation))
    if args.json:
        ex.write_serving_json(args.json, result, saturation=saturation)
        print(f"wrote {args.json}")
    if any(row.completed < row.accepted for row in result.rows):
        print("ERROR: accepted queries did not all complete")
        return 1
    return 0


def _run_info(args: argparse.Namespace) -> int:
    length = args.genome_length
    step = args.step
    breakdown = exma_size_breakdown(length, step)
    print(f"genome length: {length:,} bp, step k={step}")
    print(f"  k-step FM-Index (Eq. 2): {kstep_size_bytes(length, step) / GB:12.1f} GB")
    print(f"  LISA-{step}:             {lisa_size_bytes(length, step) / GB:12.1f} GB")
    print("  EXMA table:")
    print(f"    increments : {breakdown.increments / GB:8.1f} GB")
    print(f"    bases      : {breakdown.bases / GB:8.1f} GB")
    print(f"    MTL index  : {breakdown.index / GB:8.1f} GB")
    print(f"    suffix arr : {breakdown.suffix_array / GB:8.1f} GB")
    print(f"    total      : {breakdown.total / GB:8.1f} GB")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "search":
        return _run_search(args)
    if args.command == "experiment":
        return _run_experiment(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "serving-bench":
        return _run_serving_bench(args)
    if args.command == "info":
        return _run_info(args)
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
