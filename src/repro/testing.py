"""Shared test and benchmark helpers, importable as a real module.

The seed suite kept these helpers in ``tests/conftest.py`` and
``benchmarks/conftest.py`` and imported them with ``from conftest import
...``.  Because neither directory is a package, whichever ``conftest``
lands on ``sys.path`` first wins, and with both ``tests/`` and
``benchmarks/`` collected in one run the import silently resolves to the
wrong file and collection breaks.  Everything shared now lives here and is
imported explicitly as ``from repro.testing import ...``.
"""

from __future__ import annotations

import random

from .genome.sequence import random_genome

__all__ = [
    "brute_force_find",
    "mutate",
    "random_queries",
    "reference_and_queries",
    "run_once",
]


def brute_force_find(reference: str, query: str) -> list[int]:
    """All occurrence positions of *query* in *reference* (test oracle)."""
    return [
        i for i in range(len(reference) - len(query) + 1) if reference[i : i + len(query)] == query
    ]


def mutate(query: str, rng: random.Random, mutations: int = 1) -> str:
    """Substitute *mutations* random symbols of *query* (may create misses)."""
    symbols = list(query)
    for _ in range(mutations):
        i = rng.randrange(len(symbols))
        symbols[i] = rng.choice([c for c in "ACGT" if c != symbols[i]])
    return "".join(symbols)


def random_queries(
    reference: str,
    count: int = 20,
    length: int = 16,
    seed: int = 0,
    mutate_fraction: float = 0.3,
    absent_fraction: float = 0.1,
) -> list[str]:
    """Sample a mixed query set for equivalence tests.

    Most queries are exact reference substrings; ``mutate_fraction`` of
    them get a random substitution (so some miss) and ``absent_fraction``
    are fully random strings (almost certainly absent).  The mix mirrors
    how seeding drives FM-Index searches: mostly hits, some misses.
    """
    rng = random.Random(seed)
    queries: list[str] = []
    for i in range(count):
        roll = rng.random()
        if roll < absent_fraction:
            queries.append("".join(rng.choice("ACGT") for _ in range(length)))
            continue
        start = rng.randrange(max(1, len(reference) - length))
        query = reference[start : start + length]
        if roll < absent_fraction + mutate_fraction:
            query = mutate(query, rng)
        queries.append(query)
    return queries


def reference_and_queries(
    genome_length: int = 600,
    count: int = 20,
    length: int = 16,
    seed: int = 0,
) -> tuple[str, list[str]]:
    """A deterministic random reference plus a mixed query set."""
    reference = random_genome(genome_length, seed=seed)
    return reference, random_queries(reference, count=count, length=length, seed=seed + 1)


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark *function* with a single round (experiments are heavy)."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
