"""Base-Delta-Immediate (BΔI) cache-line compression baseline.

BΔI (Pekhimenko et al., reference [49] of the paper) compresses a 64-byte
cache line by storing the first data section as a base and every other
section as its delta against that base, choosing the smallest delta width
that fits.  The paper applies BΔI to the CPU baseline's LISA data and
contrasts it with CHAIN on EXMA tables (Fig. 23); this module implements
the line-level compression and the size accounting for that comparison.

Unlike CHAIN, BΔI deltas are taken against the *first* section of the line
rather than the preceding value, so sorted-but-spread data compresses
noticeably worse — which is exactly the effect the figure shows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Memory line size in bytes.
LINE_BYTES = 64

#: Section width used by BΔI (8-byte sections, 8 per line).
SECTION_BYTES = 8

_DELTA_WIDTHS = (1, 2, 4)


@dataclass(frozen=True)
class BdiLine:
    """One BΔI-compressed line: a base section plus fixed-width deltas."""

    base: int
    deltas: tuple[int, ...]
    delta_bytes: int
    compressed: bool

    @property
    def compressed_bytes(self) -> int:
        """Line size after compression (uncompressed lines keep 64 bytes)."""
        if not self.compressed:
            return SECTION_BYTES * (len(self.deltas) + 1)
        return SECTION_BYTES + len(self.deltas) * self.delta_bytes

    def decompress(self) -> np.ndarray:
        """Recover the original sections."""
        values = np.empty(len(self.deltas) + 1, dtype=np.int64)
        values[0] = self.base
        for i, delta in enumerate(self.deltas):
            values[i + 1] = self.base + delta
        return values


def compress_line(sections: np.ndarray) -> BdiLine:
    """BΔI-compress one line's worth of 8-byte sections."""
    sections = np.asarray(sections, dtype=np.int64)
    if sections.size == 0:
        raise ValueError("cannot compress an empty line")
    base = int(sections[0])
    deltas = sections[1:] - base
    largest = int(np.abs(deltas).max()) if deltas.size else 0
    for width in _DELTA_WIDTHS:
        if largest < (1 << (8 * width - 1)):
            return BdiLine(
                base=base,
                deltas=tuple(int(d) for d in deltas),
                delta_bytes=width,
                compressed=True,
            )
    return BdiLine(
        base=base, deltas=tuple(int(d) for d in deltas), delta_bytes=SECTION_BYTES, compressed=False
    )


def compress(values: np.ndarray, sections_per_line: int | None = None) -> list[BdiLine]:
    """BΔI-compress an array of 8-byte sections, line by line."""
    values = np.asarray(values, dtype=np.int64)
    if sections_per_line is None:
        sections_per_line = LINE_BYTES // SECTION_BYTES
    if sections_per_line <= 0:
        raise ValueError("sections_per_line must be positive")
    lines = []
    for start in range(0, values.size, sections_per_line):
        lines.append(compress_line(values[start : start + sections_per_line]))
    return lines


def decompress(lines: list[BdiLine]) -> np.ndarray:
    """Recover the original sections from BΔI lines."""
    if not lines:
        return np.empty(0, dtype=np.int64)
    return np.concatenate([line.decompress() for line in lines])


def compressed_size_bytes(values: np.ndarray, sections_per_line: int | None = None) -> int:
    """Total compressed size of *values* under BΔI."""
    return sum(line.compressed_bytes for line in compress(values, sections_per_line))


def uncompressed_size_bytes(values: np.ndarray) -> int:
    """Size without compression (SECTION_BYTES per value)."""
    return int(np.asarray(values).size * SECTION_BYTES)


def compression_ratio(values: np.ndarray, sections_per_line: int | None = None) -> float:
    """Compressed / uncompressed size (smaller is better)."""
    original = uncompressed_size_bytes(values)
    if original == 0:
        return 1.0
    return compressed_size_bytes(values, sections_per_line) / original
