"""EXMA core: table, learned/MTL indexes, search, CHAIN/BΔI compression."""

from . import bdi, chain
from .learned_index import (
    DEFAULT_INCREMENTS_PER_LEAF,
    DEFAULT_MODEL_THRESHOLD,
    NaiveLearnedIndex,
)
from .mtl_index import DEFAULT_BUCKET_EDGES, LeafModel, MTLIndex, SharedNode
from .search import ExmaSearch, ExmaSearchStats, OccRequest
from .table import ExmaSizeBreakdown, ExmaTable, exma_size_breakdown

__all__ = [
    "bdi",
    "chain",
    "DEFAULT_INCREMENTS_PER_LEAF",
    "DEFAULT_MODEL_THRESHOLD",
    "NaiveLearnedIndex",
    "DEFAULT_BUCKET_EDGES",
    "LeafModel",
    "MTLIndex",
    "SharedNode",
    "ExmaSearch",
    "ExmaSearchStats",
    "OccRequest",
    "ExmaSizeBreakdown",
    "ExmaTable",
    "exma_size_breakdown",
]
