"""Naive per-k-mer learned index for the EXMA table.

Section IV-A of the paper first tries the straightforward adoption of a
learned index: for every k-mer with more than a threshold number of
increments, build an independent recursive-model index whose parameter
count follows a fixed ratio to the number of increments indexed (the same
policy LISA uses).  The paper then shows this naive index is inaccurate for
heavy k-mers (Fig. 12/13), which motivates the MTL index.

Each per-k-mer model here is a root linear model routing into linear leaf
models; k-mers below the threshold fall back to exact binary search over
their (short) increment lists, which is what both the paper's software
baseline and hardware do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lisa.learned_index import LinearModel, PredictionStats
from .table import ExmaTable

#: k-mers with at most this many increments are searched exactly.
DEFAULT_MODEL_THRESHOLD = 256

#: Increments per leaf model (the fixed parameters-to-increments ratio).
DEFAULT_INCREMENTS_PER_LEAF = 4096


@dataclass
class _PerKmerModel:
    """Root + leaves for one k-mer's increment list."""

    root: LinearModel
    leaves: list[LinearModel]
    count: int

    def predict(self, pos: float) -> int:
        """Predicted index of *pos* within the increment list."""
        bucket = int(np.clip(np.floor(self.root.predict(pos)), 0, len(self.leaves) - 1))
        predicted = self.leaves[bucket].predict(pos)
        return int(np.clip(round(float(predicted)), 0, self.count - 1))

    @property
    def parameter_count(self) -> int:
        return self.root.parameter_count + sum(leaf.parameter_count for leaf in self.leaves)


class NaiveLearnedIndex:
    """Independent learned index per k-mer of an EXMA table.

    Args:
        table: the EXMA table to index.
        model_threshold: k-mers with at most this many increments are not
            modelled (searched exactly instead).
        increments_per_leaf: fixed ratio of increments to leaf models.
    """

    def __init__(
        self,
        table: ExmaTable,
        model_threshold: int = DEFAULT_MODEL_THRESHOLD,
        increments_per_leaf: int = DEFAULT_INCREMENTS_PER_LEAF,
    ) -> None:
        if model_threshold < 0:
            raise ValueError("model_threshold must be non-negative")
        if increments_per_leaf <= 0:
            raise ValueError("increments_per_leaf must be positive")
        self._table = table
        self._threshold = model_threshold
        self._increments_per_leaf = increments_per_leaf
        self._models: dict[int, _PerKmerModel] = {}
        self._fit_all()

    def _fit_all(self) -> None:
        for packed in self._table.present_kmers():
            count = self._table.frequency(packed)
            if count <= self._threshold:
                continue
            increments = self._table.increments_of(packed).astype(np.float64)
            self._models[packed] = self._fit_one(increments)

    def _fit_one(self, increments: np.ndarray) -> _PerKmerModel:
        count = increments.size
        positions = np.arange(count, dtype=np.float64)
        n_leaves = max(1, count // self._increments_per_leaf)
        root = LinearModel.fit(increments, positions * n_leaves / count)
        routed = np.clip(np.floor(root.predict(increments)).astype(np.int64), 0, n_leaves - 1)
        leaves = []
        for leaf_idx in range(n_leaves):
            mask = routed == leaf_idx
            if np.any(mask):
                leaves.append(LinearModel.fit(increments[mask], positions[mask]))
            else:
                leaves.append(LinearModel(0.0, 0.0))
        return _PerKmerModel(root=root, leaves=leaves, count=count)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def table(self) -> ExmaTable:
        """The indexed EXMA table."""
        return self._table

    @property
    def modelled_kmers(self) -> list[int]:
        """Packed codes of k-mers that have a learned model."""
        return sorted(self._models)

    @property
    def parameter_count(self) -> int:
        """Total trainable parameters across all per-k-mer models."""
        return sum(model.parameter_count for model in self._models.values())

    def has_model(self, packed: int) -> bool:
        """Whether *packed* is covered by a learned model."""
        return packed in self._models

    def predict(self, kmer: str | int, pos: int) -> int:
        """Predicted index of *pos* in the k-mer's increment list.

        Falls back to the exact answer for unmodelled k-mers (their lists
        are short enough to search directly).
        """
        packed = kmer if isinstance(kmer, int) else self._table._packed(kmer)
        model = self._models.get(packed)
        if model is None:
            return self._table.occ(packed, pos)
        return model.predict(float(pos))

    def lookup(self, kmer: str | int, pos: int) -> tuple[int, int]:
        """Exact Occ value plus the linear-search probe distance."""
        packed = kmer if isinstance(kmer, int) else self._table._packed(kmer)
        true_index = self._table.occ(packed, pos)
        predicted = self.predict(packed, pos)
        return true_index, abs(true_index - predicted)

    def prediction_errors(
        self, packed_kmers: list[int] | None = None, samples_per_kmer: int = 200, seed: int = 0
    ) -> np.ndarray:
        """Absolute prediction errors over sampled positions of k-mers."""
        rng = np.random.default_rng(seed)
        if packed_kmers is None:
            packed_kmers = self.modelled_kmers
        errors = []
        n = self._table.reference_length
        for packed in packed_kmers:
            positions = rng.integers(0, n + 1, size=samples_per_kmer)
            for pos in positions:
                _, err = self.lookup(packed, int(pos))
                errors.append(err)
        return np.array(errors, dtype=np.float64)

    def error_stats(self, packed_kmers: list[int] | None = None, seed: int = 0) -> PredictionStats:
        """Error statistics in the format of Fig. 13."""
        return PredictionStats.from_errors(self.prediction_errors(packed_kmers, seed=seed))
