"""CHAIN compression of EXMA increments and bases.

Section IV-C4: because the increments (and bases) of each k-mer are sorted
and stored consecutively, consecutive values differ by small deltas.  CHAIN
stores the first value of each 64-byte memory line verbatim and every
subsequent value as the delta to its predecessor; decompression is a prefix
sum (``incr_i = incr_0 + sum(delta_1..delta_i)``), implementable with a
single 64-bit adder.

The functions here provide bit-exact compress/decompress round trips plus
the compressed-size accounting used for Fig. 23, where deltas are encoded
with the smallest fixed byte width that fits the largest delta of the line
(1, 2, 4 or 8 bytes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Memory line size the hardware compresses over, in bytes.
LINE_BYTES = 64

#: Uncompressed entry width in bytes (increments/bases are stored as
#: 32-bit row numbers at paper scale; we account 4 bytes per entry).
ENTRY_BYTES = 4

_WIDTHS = (1, 2, 4, 8)


@dataclass(frozen=True)
class CompressedLine:
    """One CHAIN-compressed memory line."""

    first: int
    deltas: tuple[int, ...]
    delta_bytes: int

    @property
    def compressed_bytes(self) -> int:
        """Size of the line after compression (first value + deltas)."""
        return ENTRY_BYTES + len(self.deltas) * self.delta_bytes

    def decompress(self) -> np.ndarray:
        """Recover the original values of the line (prefix sum)."""
        values = np.empty(len(self.deltas) + 1, dtype=np.int64)
        values[0] = self.first
        running = self.first
        for i, delta in enumerate(self.deltas):
            running += delta
            values[i + 1] = running
        return values


def _delta_width(deltas: np.ndarray) -> int:
    """Smallest fixed byte width that can hold every delta of a line."""
    if deltas.size == 0:
        return 1
    largest = int(np.abs(deltas).max())
    for width in _WIDTHS:
        if largest < (1 << (8 * width - 1)):
            return width
    return 8


def compress_line(values: np.ndarray) -> CompressedLine:
    """CHAIN-compress one memory line's worth of sorted values."""
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        raise ValueError("cannot compress an empty line")
    deltas = np.diff(values)
    return CompressedLine(
        first=int(values[0]),
        deltas=tuple(int(d) for d in deltas),
        delta_bytes=_delta_width(deltas),
    )


def compress(values: np.ndarray, entries_per_line: int | None = None) -> list[CompressedLine]:
    """CHAIN-compress an array, line by line."""
    values = np.asarray(values, dtype=np.int64)
    if entries_per_line is None:
        entries_per_line = LINE_BYTES // ENTRY_BYTES
    if entries_per_line <= 0:
        raise ValueError("entries_per_line must be positive")
    lines = []
    for start in range(0, values.size, entries_per_line):
        lines.append(compress_line(values[start : start + entries_per_line]))
    return lines


def decompress(lines: list[CompressedLine]) -> np.ndarray:
    """Recover the original array from CHAIN-compressed lines."""
    if not lines:
        return np.empty(0, dtype=np.int64)
    return np.concatenate([line.decompress() for line in lines])


def compressed_size_bytes(values: np.ndarray, entries_per_line: int | None = None) -> int:
    """Total compressed size of *values* under CHAIN."""
    return sum(line.compressed_bytes for line in compress(values, entries_per_line))


def uncompressed_size_bytes(values: np.ndarray) -> int:
    """Size of *values* without compression (ENTRY_BYTES per entry)."""
    return int(np.asarray(values).size * ENTRY_BYTES)


def compression_ratio(values: np.ndarray, entries_per_line: int | None = None) -> float:
    """Compressed / uncompressed size (smaller is better)."""
    original = uncompressed_size_bytes(values)
    if original == 0:
        return 1.0
    return compressed_size_bytes(values, entries_per_line) / original
