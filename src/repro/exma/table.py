"""The EXMA table: per-k-mer increment lists plus base pointers.

The EXMA table (Section IV-A of the paper) is a row-buffer-friendly
reformulation of the k-step Occ table.  In each Occ-table row exactly one
k-mer's count increases; the EXMA table stores, for every k-mer, the sorted
list of row numbers at which its count increments, terminated by a ``MAX``
sentinel equal to ``|G| + 1``.  All increment lists are concatenated in
k-mer order so consecutive increments of one k-mer sit in the same DRAM
rows, and a *base* array of ``4^k`` entries points each k-mer at its first
increment (``MAX`` when it never occurs).

``Occ(kmer, pos)`` is then "count the increments of *kmer* smaller than
*pos*", which is a single sorted-array rank query — the operation the MTL
index learns to predict.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..genome.alphabet import SENTINEL, pack_kmer, unpack_kmer
from ..index.suffix_array import suffix_array


@dataclass(frozen=True)
class ExmaSizeBreakdown:
    """Analytic size of the EXMA data structures at paper scale (bytes)."""

    increments: int
    bases: int
    index: int
    suffix_array: int

    @property
    def total(self) -> int:
        """Total bytes across all four components."""
        return self.increments + self.bases + self.index + self.suffix_array


def exma_size_breakdown(genome_length: int, k: int, index_bytes_per_entry: float = 0.4) -> ExmaSizeBreakdown:
    """Analytic EXMA size model used for Fig. 10(a).

    * increments: ``|G|`` entries of ``ceil(log2 |G|)`` bits — O(|G| log |G|).
    * bases: ``4^k`` entries of ``ceil(log2 |G|)`` bits — O(4^k log |G|).
    * index: the MTL-based index, proportional to the increment count.
    * suffix array: one ``ceil(log2 |G|)``-bit entry per position.
    """
    if genome_length <= 0:
        raise ValueError("genome_length must be positive")
    if k <= 0:
        raise ValueError("k must be positive")
    entry_bytes = math.ceil(math.log2(genome_length + 1)) / 8
    increments = int(genome_length * entry_bytes)
    bases = int((4**k) * entry_bytes)
    index = int(genome_length * index_bytes_per_entry)
    sa = int(genome_length * entry_bytes)
    return ExmaSizeBreakdown(increments=increments, bases=bases, index=index, suffix_array=sa)


class ExmaTable:
    """The EXMA table of a reference for a given step number k.

    Args:
        reference: DNA reference string (sentinel appended internally).
        k: the step number — DNA symbols consumed per search iteration.

    The table is exact on the simulated reference; paper-scale sizes come
    from :func:`exma_size_breakdown`.
    """

    def __init__(self, reference: str, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if not reference:
            raise ValueError("reference must be non-empty")
        text = reference if reference.endswith(SENTINEL) else reference + SENTINEL
        self._text = text
        self._k = k
        self._n = len(text)
        self._max = self._n + 1

        self._sa = suffix_array(text)
        self._isa = np.empty(self._n, dtype=np.int64)
        self._isa[self._sa] = np.arange(self._n)

        (
            self._increments,
            self._bases,
            self._counts,
            self._kmer_rank_base,
        ) = self._build()
        self._count_cache: dict[int, int] = {}
        self._count_table: np.ndarray | None = None
        self._augmented_increments: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def _build(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Build increments, bases, per-k-mer counts and Count(kmer) table.

        Only k-mers over ACGT get a slot in the 4^k base array; rows whose
        preceding k symbols include the sentinel (the first k rotations of
        the text) are excluded from the table, exactly as a k-step FM-Index
        excludes the sentinel-containing symbols from its enlarged
        alphabet.  Searches never look those up because queries are pure
        DNA.
        """
        k = self._k
        n = self._n
        doubled = self._text + self._text
        n_kmers = 4**k

        counts = np.zeros(n_kmers, dtype=np.int64)
        packed_per_row = np.full(n, -1, dtype=np.int64)
        for row in range(n):
            pos = int(self._sa[row])
            start = (pos - k) % n
            preceding = doubled[start : start + k]
            if SENTINEL in preceding:
                continue
            packed = pack_kmer(preceding)
            packed_per_row[row] = packed
            counts[packed] += 1

        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        bases = np.where(counts > 0, offsets, self._max)
        increments = np.empty(int(counts.sum()), dtype=np.int64)
        cursor = offsets.copy()
        for row in range(n):
            packed = packed_per_row[row]
            if packed < 0:
                continue
            increments[cursor[packed]] = row
            cursor[packed] += 1

        # Count(kmer): number of BW-matrix rows whose suffix starts with a
        # lexicographically smaller prefix.  Rows whose k-prefix is a pure
        # DNA k-mer are counted with an exclusive cumulative sum of the
        # per-k-mer occurrence counts; the handful of rows whose prefix
        # runs into the sentinel are kept as strings and compared per
        # query (there are at most k of them).
        kmer_rank_base = np.concatenate(([0], np.cumsum(counts)[:-1]))
        self._sentinel_prefixes = self._collect_sentinel_prefixes()
        return increments, bases.astype(np.int64), counts, kmer_rank_base

    def _collect_sentinel_prefixes(self) -> list[str]:
        """Prefixes (length k, sentinel-padded) of the rows that reach ``$``."""
        k = self._k
        padded = self._text + SENTINEL * k
        prefixes = []
        for pos in range(max(0, self._n - k), self._n):
            prefixes.append(padded[pos : pos + k])
        return prefixes

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def k(self) -> int:
        """Step number (symbols per search iteration)."""
        return self._k

    @property
    def reference_length(self) -> int:
        """Length of the sentinel-terminated reference."""
        return self._n

    @property
    def max_sentinel(self) -> int:
        """The MAX value marking absent k-mers / list ends (``|G| + 1``)."""
        return self._max

    @property
    def kmer_count(self) -> int:
        """Number of k-mer slots in the base array (``4^k``)."""
        return int(self._bases.size)

    @property
    def increments(self) -> np.ndarray:
        """The concatenated increment array (read-only view)."""
        return self._increments

    @property
    def bases(self) -> np.ndarray:
        """Per-k-mer base pointers into the increment array."""
        return self._bases

    @property
    def suffix_array_(self) -> np.ndarray:
        """The underlying suffix array (for locate)."""
        return self._sa

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def frequency(self, kmer: str | int) -> int:
        """Number of increments (occurrences) of *kmer* in the table."""
        packed = self._packed(kmer)
        return int(self._counts[packed])

    def base(self, kmer: str | int) -> int:
        """Base pointer of *kmer* (``MAX`` when it has no increments)."""
        packed = self._packed(kmer)
        return int(self._bases[packed])

    def frequency_batch(self, kmers: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`frequency` over an array of packed codes."""
        return self._counts[np.asarray(kmers, dtype=np.int64)]

    def increments_of(self, kmer: str | int) -> np.ndarray:
        """The sorted increment list of *kmer* (possibly empty)."""
        packed = self._packed(kmer)
        count = int(self._counts[packed])
        if count == 0:
            return np.empty(0, dtype=np.int64)
        base = int(self._bases[packed])
        return self._increments[base : base + count]

    def occ(self, kmer: str | int, pos: int) -> int:
        """Occ(kmer, pos): increments of *kmer* strictly below *pos*."""
        if pos < 0 or pos > self._n:
            raise ValueError(f"pos {pos} out of range [0, {self._n}]")
        increments = self.increments_of(kmer)
        return int(np.searchsorted(increments, pos, side="left"))

    def occ_batch(self, kmers: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`occ` over aligned k-mer/position arrays.

        One global ``np.searchsorted`` resolves every request at once: the
        concatenated increment array is augmented (lazily, cached) with
        ``kmer * (|G| + 2)`` per entry, which makes it globally ascending
        — increments are already sorted within each k-mer's segment and
        segments are concatenated in packed order — so the rank of
        ``kmer * (|G| + 2) + pos`` minus the k-mer's segment offset is
        exactly ``Occ(kmer, pos)``.  Agrees exactly with per-request
        :meth:`occ` (pure integer rank queries on the same data).
        """
        kmers = np.asarray(kmers, dtype=np.int64)
        positions = np.asarray(positions, dtype=np.int64)
        if kmers.shape != positions.shape:
            raise ValueError("kmers and positions must have identical shapes")
        if kmers.size == 0:
            return np.empty(0, dtype=np.int64)
        if int(positions.min()) < 0 or int(positions.max()) > self._n:
            raise ValueError(f"positions out of range [0, {self._n}]")
        if int(kmers.min()) < 0 or int(kmers.max()) >= self._bases.size:
            raise ValueError("packed k-mer out of range")
        if self._augmented_increments is None:
            stride = self._n + 2
            owners = np.repeat(np.arange(self._counts.size, dtype=np.int64), self._counts)
            self._augmented_increments = self._increments + owners * stride
        stride = self._n + 2
        ranks = np.searchsorted(
            self._augmented_increments, kmers * stride + positions, side="left"
        )
        return ranks - self._kmer_rank_base[kmers]

    def count(self, kmer: str | int) -> int:
        """Count(kmer): rows whose suffix starts with a smaller prefix.

        Memoized per packed k-mer: the sentinel-prefix comparison is a
        Python string scan, and searches (sequential and batched alike)
        ask for the same few k-mers over and over.
        """
        packed = self._packed(kmer)
        cached = self._count_cache.get(packed)
        if cached is not None:
            return cached
        kmer_string = kmer if isinstance(kmer, str) else self.kmer_string(packed)
        sentinel_below = sum(1 for prefix in self._sentinel_prefixes if prefix < kmer_string)
        result = int(self._kmer_rank_base[packed]) + sentinel_below
        self._count_cache[packed] = result
        return result

    def occ_linear(self, kmer: str | int, pos: int, start: int = 0) -> tuple[int, int]:
        """Occ via linear scan from *start*, returning (occ, entries_read).

        Models the hardware's verify-and-linear-search fallback: the
        returned ``entries_read`` is the number of increment entries that
        had to be fetched.
        """
        increments = self.increments_of(kmer)
        start = max(0, min(start, len(increments)))
        # Scan backwards if we started past the answer, forwards otherwise.
        reads = 0
        idx = start
        if idx < len(increments) and increments[idx] < pos:
            while idx < len(increments) and increments[idx] < pos:
                idx += 1
                reads += 1
        else:
            while idx > 0 and increments[idx - 1] >= pos:
                idx -= 1
                reads += 1
        return idx, max(reads, 1)

    def prefix_interval(self, partial: str) -> tuple[int, int]:
        """BW-matrix interval of rows whose suffix starts with *partial*.

        Used for the trailing query chunk that is shorter than k: the
        interval bounds are derived from the per-k-mer occurrence counts
        (every DNA k-mer starting with *partial* lies in one contiguous
        packed range) plus the handful of sentinel-containing prefixes.
        """
        if not 0 < len(partial) <= self._k:
            raise ValueError("partial length must be in (0, k]")
        pad = self._k - len(partial)
        low_packed = pack_kmer(partial + "A" * pad)
        high_packed = pack_kmer(partial + "T" * pad)
        dna_below = int(self._kmer_rank_base[low_packed])
        dna_inside = int(
            self._counts[low_packed : high_packed + 1].sum()
        )
        sentinel_below = sum(
            1 for prefix in self._sentinel_prefixes if prefix[: len(partial)] < partial
        )
        sentinel_inside = sum(
            1 for prefix in self._sentinel_prefixes if prefix[: len(partial)] == partial
        )
        low = dna_below + sentinel_below
        high = low + dna_inside + sentinel_inside
        return low, high

    def count_table(self) -> np.ndarray:
        """Count(kmer) for every packed k-mer, vectorized (cached).

        Equivalent to calling :meth:`count` on each of the ``4^k`` codes:
        each sentinel-containing row prefix ``p`` (with its first ``$`` at
        offset ``j``) sorts below exactly the DNA k-mers whose packed code
        is at least ``pack(p[:j] + 'A' * (k - j))`` — the smallest k-mer
        sharing its DNA prefix — so each contributes one thresholded +1
        over the packed code range.
        """
        if self._count_table is None:
            counts = self._kmer_rank_base.copy()
            codes = np.arange(self._bases.size)
            for prefix in self._sentinel_prefixes:
                j = prefix.index(SENTINEL)
                threshold = pack_kmer(prefix[:j] + "A" * (self._k - j))
                counts += codes >= threshold
            self._count_table = counts
        return self._count_table

    def frequencies(self) -> np.ndarray:
        """Increment counts of all 4^k k-mers (the ``f_i`` of Fig. 8)."""
        return self._counts.copy()

    def frequencies_view(self) -> np.ndarray:
        """The per-k-mer increment counts without the defensive copy.

        For hot gather paths (:meth:`repro.exma.mtl_index.MTLIndex
        .predict_many`, the columnar replay); callers must not mutate it.
        """
        return self._counts

    def present_kmers(self) -> list[int]:
        """Packed codes of k-mers that occur at least once."""
        return [int(p) for p in np.flatnonzero(self._counts > 0)]

    def locate(self, low: int, high: int) -> list[int]:
        """Reference positions for BW-matrix rows in ``[low, high)``."""
        if low >= high:
            return []
        return sorted(int(self._sa[row]) for row in range(low, high))

    def _packed(self, kmer: str | int) -> int:
        if isinstance(kmer, str):
            if len(kmer) != self._k:
                raise ValueError(f"expected a {self._k}-mer, got {kmer!r}")
            packed = pack_kmer(kmer)
        else:
            packed = int(kmer)
        if packed < 0 or packed >= self._bases.size:
            raise ValueError(f"packed k-mer {packed} out of range")
        return packed

    def kmer_string(self, packed: int) -> str:
        """Unpack a packed k-mer code back to its string form."""
        return unpack_kmer(packed, self._k)

    def storage_bytes(self) -> int:
        """Bytes of the simulated table (8-byte entries, no compression)."""
        return int(self._increments.size * 8 + self._bases.size * 8 + self._counts.size * 8)
