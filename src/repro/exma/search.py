"""EXMA backward search over an EXMA table.

Each iteration consumes one k-mer of the query and updates the
``(low, high)`` interval with ``Count(kmer) + Occ(kmer, pos)``; the
``Occ`` rank can be answered exactly (sorted-array search), with the naive
per-k-mer learned index, or with the MTL index followed by a
verify-and-linear-search step (Section IV-B "Inference").  The search
records the request stream (k-mer, pos) pairs and the memory-side costs
(increment entries fetched, index nodes touched) that drive the hardware
model and the Fig. 12/18 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from ..index.fmindex import Interval
from .table import ExmaTable


class OccIndex(Protocol):
    """Anything that can predict positions within increment lists."""

    def predict(self, kmer: str | int, pos: int) -> int:  # pragma: no cover - protocol
        """Predicted index of *pos* within the k-mer's increment list."""

    def has_model(self, packed: int) -> bool:  # pragma: no cover - protocol
        """Whether this index models the k-mer."""


@dataclass(frozen=True)
class OccRequest:
    """One Occ lookup request: the (k-mer, pos) pair of Fig. 14/15."""

    packed_kmer: int
    pos: int


@dataclass
class ExmaSearchStats:
    """Counters for EXMA searches (accumulated over a batch)."""

    iterations: int = 0
    occ_lookups: int = 0
    base_reads: int = 0
    increment_entries_read: int = 0
    index_predictions: int = 0
    prediction_errors: list[int] = field(default_factory=list)
    requests: list[OccRequest] = field(default_factory=list)

    @property
    def mean_error(self) -> float:
        """Mean prediction error across learned-index lookups."""
        if not self.prediction_errors:
            return 0.0
        return sum(self.prediction_errors) / len(self.prediction_errors)


class ExmaSearch:
    """Backward search over an :class:`ExmaTable`.

    Args:
        table: the EXMA table.
        index: optional learned / MTL index used to predict Occ positions;
            when omitted every Occ is an exact sorted-array rank query.
    """

    def __init__(self, table: ExmaTable, index: OccIndex | None = None) -> None:
        self._table = table
        self._index = index

    @property
    def table(self) -> ExmaTable:
        """The searched EXMA table."""
        return self._table

    @property
    def index(self) -> OccIndex | None:
        """The learned index in use, if any."""
        return self._index

    def _occ(self, packed: int, pos: int, stats: ExmaSearchStats | None) -> int:
        """One Occ lookup, modelling the predict/verify/linear-search path."""
        if stats is not None:
            stats.occ_lookups += 1
            stats.base_reads += 1
            stats.requests.append(OccRequest(packed_kmer=packed, pos=pos))
        if self._index is None or not self._index.has_model(packed):
            true_index = self._table.occ(packed, pos)
            if stats is not None:
                # Exact search over a short list: count the entries binary
                # search would touch (log2 of the list length, at least 1).
                count = self._table.frequency(packed)
                stats.increment_entries_read += max(1, count.bit_length())
            return true_index
        predicted = self._index.predict(packed, pos)
        true_index = self._table.occ(packed, pos)
        error = abs(true_index - predicted)
        if stats is not None:
            stats.index_predictions += 1
            stats.prediction_errors.append(error)
            # The hardware reads the predicted entry and its successor,
            # then linearly searches |error| further entries when wrong.
            stats.increment_entries_read += 2 + error
        return true_index

    def extend(self, kmer: str, interval: Interval, stats: ExmaSearchStats | None = None) -> Interval:
        """One backward-search iteration consuming *kmer*."""
        if len(kmer) != self._table.k:
            raise ValueError(f"expected a {self._table.k}-mer, got {kmer!r}")
        packed = self._table._packed(kmer)
        count = self._table.count(packed)
        low = count + self._occ(packed, interval.low, stats)
        high = count + self._occ(packed, interval.high, stats)
        if stats is not None:
            stats.iterations += 1
        return Interval(low, high)

    def backward_search(self, query: str, stats: ExmaSearchStats | None = None) -> Interval:
        """Find the BW-matrix interval of all occurrences of *query*.

        The query is split into k-symbol chunks from the left; the trailing
        chunk (possibly shorter than k) is resolved first directly from the
        per-k-mer counts, then full chunks are consumed right to left.
        """
        if not query:
            raise ValueError("query must be non-empty")
        k = self._table.k
        length = len(query)
        leftover = length % k

        interval = Interval(0, self._table.reference_length)
        right = length
        if leftover:
            low, high = self._table.prefix_interval(query[length - leftover :])
            interval = Interval(low, high)
            if stats is not None:
                stats.iterations += 1
                stats.base_reads += 1
            if interval.empty:
                return interval
            right -= leftover
        while right > 0:
            interval = self.extend(query[right - k : right], interval, stats)
            if interval.empty:
                return interval
            right -= k
        return interval

    def occurrence_count(self, query: str) -> int:
        """Number of occurrences of *query* in the reference."""
        return self.backward_search(query).count

    def find(self, query: str) -> list[int]:
        """All reference positions where *query* occurs (sorted)."""
        interval = self.backward_search(query)
        return self._table.locate(interval.low, interval.high)

    def iterations_for_query(self, query_length: int) -> int:
        """Backward-search iterations needed for a query of this length."""
        full, leftover = divmod(query_length, self._table.k)
        return full + (1 if leftover else 0)

    def request_stream(self, queries: list[str]) -> tuple[list[OccRequest], ExmaSearchStats]:
        """Run a batch of queries, returning the Occ request stream.

        The request stream — every (k-mer, pos) pair in issue order — is
        the input to the accelerator model's scheduling queue.
        """
        stats = ExmaSearchStats()
        for query in queries:
            self.backward_search(query, stats)
        return stats.requests, stats
