"""Multi-task-learning (MTL) index for the EXMA table.

Section IV-B of the paper: instead of fitting an independent learned index
per k-mer, the MTL index shares parameters across k-mers with similar
numbers of increments (hard parameter sharing).  Each shared non-leaf node
is a small fully-connected network with 10 sigmoid neurons taking the
normalised ``pos`` (and a k-mer feature) as input and producing an estimate
of the cumulative distribution :math:`F(kmer, pos)`; the per-k-mer leaf is
a linear regression with a single weight and bias.  The predicted position
inside the k-mer's increment list is Eq. 3:

    ``p = F(kmer, pos) * f_kmer``

Training minimises the weighted multi-task loss of Eq. 4 with an Adam
optimizer (implemented here in numpy on the pooled, normalised samples).
The index is trained and evaluated on the same EXMA table, exactly as LISA
and the paper do — prediction accuracy only affects search *throughput*
(linear-probe length), never mapping correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..lisa.learned_index import PredictionStats
from .table import ExmaTable

#: Increment-count bucket edges used to group k-mers into shared models
#: (mirrors the buckets of Fig. 12: 2-256, 256-1K, 1K-4K, ..., >1M).
DEFAULT_BUCKET_EDGES = (256, 1024, 4096, 16384, 65536, 262144, 1048576)


@dataclass
class SharedNode:
    """One shared non-leaf node: a 10-neuron sigmoid MLP regressor.

    Maps ``(pos_norm, freq_norm)`` to an estimate of the CDF value in
    ``[0, 1]``.  Weights are trained with Adam on pooled samples from every
    k-mer assigned to the node's bucket.
    """

    hidden: int = 10
    w1: np.ndarray = field(default_factory=lambda: np.zeros((2, 10)))
    b1: np.ndarray = field(default_factory=lambda: np.zeros(10))
    w2: np.ndarray = field(default_factory=lambda: np.zeros(10))
    b2: float = 0.0

    @property
    def parameter_count(self) -> int:
        """Trainable parameters of this node."""
        return int(self.w1.size + self.b1.size + self.w2.size + 1)

    def forward(self, features: np.ndarray) -> np.ndarray:
        """Evaluate the node on an ``(n, 2)`` feature matrix."""
        hidden = 1.0 / (1.0 + np.exp(-(features @ self.w1 + self.b1)))
        return hidden @ self.w2 + self.b2

    def train(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
        epochs: int = 300,
        learning_rate: float = 0.05,
        seed: int = 0,
    ) -> None:
        """Fit the node with Adam on weighted squared error (Eq. 4)."""
        rng = np.random.default_rng(seed)
        n_features = features.shape[1]
        self.w1 = rng.normal(0.0, 0.5, size=(n_features, self.hidden))
        self.b1 = np.zeros(self.hidden)
        self.w2 = rng.normal(0.0, 0.5, size=self.hidden)
        self.b2 = 0.0

        params = [self.w1, self.b1, self.w2]
        moments_m = [np.zeros_like(p) for p in params] + [0.0]
        moments_v = [np.zeros_like(p) for p in params] + [0.0]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        weights = weights / weights.sum()

        for step in range(1, epochs + 1):
            pre = features @ self.w1 + self.b1
            hidden = 1.0 / (1.0 + np.exp(-pre))
            pred = hidden @ self.w2 + self.b2
            err = pred - targets
            # Weighted MSE gradient.
            grad_pred = 2.0 * weights * err
            grad_w2 = hidden.T @ grad_pred
            grad_b2 = float(grad_pred.sum())
            grad_hidden = np.outer(grad_pred, self.w2) * hidden * (1.0 - hidden)
            grad_w1 = features.T @ grad_hidden
            grad_b1 = grad_hidden.sum(axis=0)

            grads = [grad_w1, grad_b1, grad_w2, grad_b2]
            values = [self.w1, self.b1, self.w2, self.b2]
            new_values = []
            for i, (value, grad) in enumerate(zip(values, grads)):
                moments_m[i] = beta1 * np.asarray(moments_m[i]) + (1 - beta1) * np.asarray(grad)
                moments_v[i] = beta2 * np.asarray(moments_v[i]) + (1 - beta2) * np.square(grad)
                m_hat = moments_m[i] / (1 - beta1**step)
                v_hat = moments_v[i] / (1 - beta2**step)
                new_values.append(value - learning_rate * m_hat / (np.sqrt(v_hat) + eps))
            self.w1, self.b1, self.w2 = new_values[0], new_values[1], new_values[2]
            self.b2 = float(new_values[3])


@dataclass(frozen=True)
class LeafModel:
    """Per-k-mer leaf: one weight and one bias over the shared output."""

    weight: float
    bias: float

    def predict(self, shared_output: float, count: int) -> int:
        """Eq. 3: scale the shared CDF estimate to an increment index."""
        raw = (self.weight * shared_output + self.bias) * count
        return int(np.clip(round(raw), 0, max(0, count - 1)))


class MTLIndex:
    """The MTL-based index over an EXMA table.

    Args:
        table: the EXMA table to index.
        bucket_edges: increment-count boundaries grouping k-mers into
            shared nodes.
        model_threshold: k-mers with at most this many increments are
            searched exactly (no model), matching the paper's >256 rule.
        samples_per_kmer: training samples drawn from each k-mer.
        epochs: Adam epochs per shared node.
    """

    def __init__(
        self,
        table: ExmaTable,
        bucket_edges: tuple[int, ...] = DEFAULT_BUCKET_EDGES,
        model_threshold: int = 256,
        samples_per_kmer: int = 256,
        epochs: int = 300,
        seed: int = 0,
    ) -> None:
        self._table = table
        self._edges = tuple(sorted(bucket_edges))
        self._threshold = model_threshold
        self._samples_per_kmer = samples_per_kmer
        self._epochs = epochs
        self._seed = seed
        self._nodes: dict[int, SharedNode] = {}
        self._leaves: dict[int, LeafModel] = {}
        self._bucket_of: dict[int, int] = {}
        self._leaf_column_cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._train()

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #

    def _bucket_index(self, count: int) -> int:
        """Bucket index for a k-mer with *count* increments."""
        for i, edge in enumerate(self._edges):
            if count <= edge:
                return i
        return len(self._edges)

    def _train(self) -> None:
        n = self._table.reference_length
        rng = np.random.default_rng(self._seed)

        # Group modelled k-mers by increment-count bucket.
        grouped: dict[int, list[int]] = {}
        for packed in self._table.present_kmers():
            count = self._table.frequency(packed)
            if count <= self._threshold:
                continue
            bucket = self._bucket_index(count)
            grouped.setdefault(bucket, []).append(packed)
            self._bucket_of[packed] = bucket

        for bucket, kmers in grouped.items():
            features, targets, weights, owners = [], [], [], []
            for packed in kmers:
                increments = self._table.increments_of(packed)
                count = increments.size
                take = min(self._samples_per_kmer, count)
                idx = rng.choice(count, size=take, replace=False)
                idx.sort()
                pos_norm = increments[idx].astype(np.float64) / n
                cdf = idx.astype(np.float64) / count
                freq_norm = np.full(take, count / n)
                features.append(np.column_stack([pos_norm, freq_norm]))
                targets.append(cdf)
                # beta_i / f_i weighting of Eq. 4 with beta_i = 1.
                weights.append(np.full(take, 1.0 / take))
                owners.append(np.full(take, packed))
            feature_matrix = np.vstack(features)
            target_vector = np.concatenate(targets)
            weight_vector = np.concatenate(weights)
            node = SharedNode()
            node.train(
                feature_matrix,
                target_vector,
                weight_vector,
                epochs=self._epochs,
                seed=self._seed + bucket,
            )
            self._nodes[bucket] = node
            # Fit the per-k-mer linear leaves on the shared output.
            owner_vector = np.concatenate(owners)
            shared_out = node.forward(feature_matrix)
            for packed in kmers:
                mask = owner_vector == packed
                self._leaves[packed] = self._fit_leaf(shared_out[mask], target_vector[mask])

    @staticmethod
    def _fit_leaf(shared_output: np.ndarray, cdf: np.ndarray) -> LeafModel:
        """Least-squares linear leaf mapping shared output to the CDF."""
        if shared_output.size < 2 or float(np.ptp(shared_output)) < 1e-12:
            return LeafModel(weight=1.0, bias=float(np.mean(cdf - shared_output)))
        slope, intercept = np.polyfit(shared_output, cdf, 1)
        return LeafModel(weight=float(slope), bias=float(intercept))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def table(self) -> ExmaTable:
        """The indexed EXMA table."""
        return self._table

    @property
    def modelled_kmers(self) -> list[int]:
        """Packed codes of k-mers covered by a leaf model."""
        return sorted(self._leaves)

    @property
    def shared_node_count(self) -> int:
        """Number of shared non-leaf nodes (one per increment bucket)."""
        return len(self._nodes)

    @property
    def parameter_count(self) -> int:
        """Total parameters: shared nodes plus 2 per modelled k-mer."""
        shared = sum(node.parameter_count for node in self._nodes.values())
        return shared + 2 * len(self._leaves)

    def has_model(self, packed: int) -> bool:
        """Whether *packed* is covered by the MTL index."""
        return packed in self._leaves

    def predict(self, kmer: str | int, pos: int) -> int:
        """Predicted index of *pos* within the k-mer's increment list."""
        packed = kmer if isinstance(kmer, int) else self._table._packed(kmer)
        count = self._table.frequency(packed)
        leaf = self._leaves.get(packed)
        if leaf is None:
            return self._table.occ(packed, pos)
        node = self._nodes[self._bucket_of[packed]]
        n = self._table.reference_length
        features = np.array([[pos / n, count / n]])
        shared_output = float(node.forward(features)[0])
        return leaf.predict(shared_output, count)

    def predict_batch(self, kmer: str | int, positions: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`predict` for many positions of one k-mer.

        Runs the shared node's MLP once over the whole position vector and
        applies the k-mer's linear leaf elementwise; agrees exactly with
        per-position :meth:`predict` (same normalisation, rounding and
        clipping).  Used by the batched query engine, which groups
        coalesced Occ requests by k-mer.
        """
        packed = kmer if isinstance(kmer, int) else self._table._packed(kmer)
        positions = np.asarray(positions, dtype=np.int64)
        leaf = self._leaves.get(packed)
        if leaf is None:
            increments = self._table.increments_of(packed)
            return np.searchsorted(increments, positions, side="left").astype(np.int64)
        count = self._table.frequency(packed)
        node = self._nodes[self._bucket_of[packed]]
        n = self._table.reference_length
        features = np.column_stack(
            [positions / n, np.full(positions.size, count / n)]
        )
        shared_output = node.forward(features)
        raw = (leaf.weight * shared_output + leaf.bias) * count
        return np.clip(np.rint(raw), 0, max(0, count - 1)).astype(np.int64)

    def predict_many(self, kmers: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`predict` over aligned k-mer/position arrays.

        Groups the requests by shared node (bucket): one MLP forward pass
        per bucket covers every request routed through that node, and the
        per-k-mer linear leaves apply elementwise through gathered
        weight/bias/count columns — the same normalisation, rounding and
        clipping as :meth:`predict`, so the results agree exactly.  Every
        k-mer must be modelled — the columnar replay separates unmodelled
        requests before calling, the way the accelerator's exact-scan
        path does.
        """
        kmers = np.asarray(kmers, dtype=np.int64)
        positions = np.asarray(positions, dtype=np.int64)
        result = np.empty(kmers.size, dtype=np.int64)
        if kmers.size == 0:
            return result
        weights, biases, buckets = self._leaf_columns()
        counts = self._table.frequencies_view()[kmers]
        n = self._table.reference_length
        features = np.column_stack([positions / n, counts / n])
        shared_output = np.empty(kmers.size, dtype=np.float64)
        request_buckets = buckets[kmers]
        for bucket in np.unique(request_buckets):
            in_bucket = request_buckets == bucket
            shared_output[in_bucket] = self._nodes[int(bucket)].forward(
                features[in_bucket]
            )
        raw = (weights[kmers] * shared_output + biases[kmers]) * counts
        return np.clip(np.rint(raw), 0, np.maximum(0, counts - 1)).astype(np.int64)

    def _leaf_columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Leaf weight/bias and bucket id per packed code (lazy, cached)."""
        if self._leaf_column_cache is None:
            size = self._table.kmer_count
            weights = np.zeros(size, dtype=np.float64)
            biases = np.zeros(size, dtype=np.float64)
            buckets = np.full(size, -1, dtype=np.int64)
            for packed, leaf in self._leaves.items():
                weights[packed] = leaf.weight
                biases[packed] = leaf.bias
            for packed, bucket in self._bucket_of.items():
                buckets[packed] = bucket
            self._leaf_column_cache = (weights, biases, buckets)
        return self._leaf_column_cache

    def modelled_lookup(self, kmer_count: int) -> np.ndarray:
        """Boolean mask over packed codes: True where a leaf model exists.

        The array form of :meth:`has_model`, sized for the table's
        ``4^k`` code space so the columnar replay can classify a whole
        request stream with one gather.  Every modelled k-mer has a
        bucket assignment, so the mask is the cached bucket column's
        validity.
        """
        if kmer_count != self._table.kmer_count:
            raise ValueError("kmer_count must match the indexed table")
        return self._leaf_columns()[2] >= 0

    def bucket_lookup(self, kmer_count: int) -> np.ndarray:
        """Shared-node (bucket) id per packed code, -1 where unmodelled.

        The array form of the bucket half of :meth:`node_ids_for` (the
        leaf node id is always ``shared_node_count + packed``), served
        from the same cached columns :meth:`predict_many` gathers
        through; callers must not mutate it.
        """
        if kmer_count != self._table.kmer_count:
            raise ValueError("kmer_count must match the indexed table")
        return self._leaf_columns()[2]

    def lookup(self, kmer: str | int, pos: int) -> tuple[int, int]:
        """Exact Occ value plus the linear-search probe distance."""
        packed = kmer if isinstance(kmer, int) else self._table._packed(kmer)
        true_index = self._table.occ(packed, pos)
        predicted = self.predict(packed, pos)
        return true_index, abs(true_index - predicted)

    def node_ids_for(self, kmer: str | int) -> tuple[int, ...]:
        """Identifiers of the index nodes touched by a lookup of *kmer*.

        Used by the accelerator's index cache: a lookup touches the shared
        bucket node and the k-mer's leaf.  Unmodelled k-mers touch nothing.
        """
        packed = kmer if isinstance(kmer, int) else self._table._packed(kmer)
        if packed not in self._leaves:
            return ()
        bucket = self._bucket_of[packed]
        return (bucket, self.shared_node_count + packed)

    def prediction_errors(
        self, packed_kmers: list[int] | None = None, samples_per_kmer: int = 200, seed: int = 0
    ) -> np.ndarray:
        """Absolute prediction errors over sampled positions of k-mers."""
        rng = np.random.default_rng(seed)
        if packed_kmers is None:
            packed_kmers = self.modelled_kmers
        n = self._table.reference_length
        errors = []
        for packed in packed_kmers:
            positions = rng.integers(0, n + 1, size=samples_per_kmer)
            for pos in positions:
                _, err = self.lookup(packed, int(pos))
                errors.append(err)
        return np.array(errors, dtype=np.float64)

    def error_stats(self, packed_kmers: list[int] | None = None, seed: int = 0) -> PredictionStats:
        """Error statistics in the format of Fig. 13."""
        return PredictionStats.from_errors(self.prediction_errors(packed_kmers, seed=seed))
