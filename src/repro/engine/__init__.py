"""Batched multi-backend query engine.

The architectural seam between query producers (applications, experiment
harnesses, the CLI) and the search structures (FM-Index, EXMA tables,
LISA): every exact-match search goes through
:class:`~repro.engine.engine.QueryEngine`, which batches queries, advances
them in lockstep through a registered backend, coalesces duplicate
``(k-mer, pos)`` Occ requests across the batch, and reports
:class:`~repro.engine.coalesce.BatchStats` that feed the hardware model.

Two layers scale it further: :class:`~repro.engine.sharded
.ShardedQueryEngine` splits batches across a thread/process pool (results
byte-identical to serial), and :class:`~repro.engine.window
.CoalescingWindow` merges duplicate requests across *consecutive* batches
before the stream reaches the accelerator model.
"""

from .backends import (
    ExmaBackend,
    FMIndexBackend,
    LisaBackend,
    SearchBackend,
    available_backends,
    create_backend,
    register_backend,
)
from .coalesce import (
    BatchStats,
    BatchTrace,
    CoalescedStep,
    RequestStream,
    StepContribution,
    StepTrace,
    TailContribution,
    coalesce_requests,
    pack_requests,
)
from .engine import BatchResult, QueryEngine, WorkerPoolOwner
from .sharded import (
    EXECUTORS,
    BackendWorkerPool,
    ShardedQueryEngine,
    default_executor,
    default_replay_workers,
    default_shards,
    merge_shard_stats,
    merge_traces,
    run_sharded,
    run_sharded_batch,
    split_shards,
)
from .window import CoalescingWindow, WindowedBatch, windowed_request_stream

__all__ = [
    "BackendWorkerPool",
    "BatchResult",
    "BatchStats",
    "BatchTrace",
    "CoalescedStep",
    "CoalescingWindow",
    "EXECUTORS",
    "ExmaBackend",
    "FMIndexBackend",
    "LisaBackend",
    "QueryEngine",
    "RequestStream",
    "SearchBackend",
    "ShardedQueryEngine",
    "StepContribution",
    "StepTrace",
    "TailContribution",
    "WindowedBatch",
    "WorkerPoolOwner",
    "available_backends",
    "coalesce_requests",
    "pack_requests",
    "create_backend",
    "default_executor",
    "default_replay_workers",
    "default_shards",
    "merge_shard_stats",
    "merge_traces",
    "register_backend",
    "run_sharded",
    "run_sharded_batch",
    "split_shards",
    "windowed_request_stream",
]
