"""Batched multi-backend query engine.

The architectural seam between query producers (applications, experiment
harnesses, the CLI) and the search structures (FM-Index, EXMA tables,
LISA): every exact-match search goes through
:class:`~repro.engine.engine.QueryEngine`, which batches queries, advances
them in lockstep through a registered backend, coalesces duplicate
``(k-mer, pos)`` Occ requests across the batch, and reports
:class:`~repro.engine.coalesce.BatchStats` that feed the hardware model.
"""

from .backends import (
    ExmaBackend,
    FMIndexBackend,
    LisaBackend,
    SearchBackend,
    available_backends,
    create_backend,
    register_backend,
)
from .coalesce import BatchStats, CoalescedStep, coalesce_requests
from .engine import BatchResult, QueryEngine

__all__ = [
    "BatchResult",
    "BatchStats",
    "CoalescedStep",
    "ExmaBackend",
    "FMIndexBackend",
    "LisaBackend",
    "QueryEngine",
    "SearchBackend",
    "available_backends",
    "coalesce_requests",
    "create_backend",
    "register_backend",
]
