"""Cross-batch request coalescing: the scheduling-window model.

The engine's per-batch coalescing merges duplicate ``(k-mer, pos)``
requests *within* one batch; the paper's Fig. 15 sweep shows the
accelerator gains more when the DRAM-side merge may look across a
*scheduling window* of consecutive batches — the longer the replayed
stream, the more duplicates fall inside one window.  A
:class:`CoalescingWindow` models that stage in software: it buffers up to
``capacity`` (W) consecutive batch request streams and flushes each
window as one merged stream in which every unique ``(k-mer, pos)`` pair
appears exactly once, in the ``(k-mer, pos)``-sorted order the stage-1
scheduler wants.

Two oracle properties pin the semantics down (``tests/test_window.py``):

* **W = 1** is per-batch coalescing exactly — each flush equals
  :func:`repro.engine.coalesce.coalesce_requests` applied to that batch's
  stream alone;
* **W > 1** never emits more post-merge requests than the sum of the
  per-batch post-merge counts, and for window capacities that divide each
  other (1, 2, 4, 8, ...) the total post-merge count is monotone
  non-increasing in W, since every 2W-window is the union of two aligned
  W-windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..exma.search import OccRequest
from .coalesce import RequestStream

__all__ = ["CoalescingWindow", "WindowedBatch", "windowed_request_stream"]


@dataclass(frozen=True)
class WindowedBatch:
    """One flushed window: the merged unique requests of up to W batches."""

    #: Unique ``(k-mer, pos)`` requests, sorted (k-mer, pos)-major.
    requests: tuple[OccRequest, ...]
    #: Number of batches merged into this window.
    batches: int
    #: Requests entering the window (after per-batch, pre-window merging).
    issued: int

    @property
    def unique(self) -> int:
        """Requests surviving the window merge."""
        return len(self.requests)

    @property
    def merged(self) -> int:
        """Requests eliminated by the cross-batch merge."""
        return self.issued - self.unique


class CoalescingWindow:
    """Buffers up to *capacity* consecutive batches and merges duplicates.

    ``push`` buffers one batch's request stream and returns the flushed
    :class:`WindowedBatch` once the window fills (``None`` while it is
    still filling); ``flush`` force-emits a partial window (end of
    stream).  ``stream`` wraps both for an iterable of batches.

    Args:
        capacity: the scheduling window W — how many consecutive batches
            may share one merge.  ``capacity=1`` reproduces per-batch
            coalescing exactly.
    """

    def __init__(self, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("window capacity must be >= 1")
        self._capacity = capacity
        self._buffered: list[list[OccRequest]] = []

    @property
    def capacity(self) -> int:
        """The window size W."""
        return self._capacity

    @property
    def pending(self) -> int:
        """Batches currently buffered, awaiting a flush."""
        return len(self._buffered)

    def push(self, requests: Sequence[OccRequest]) -> WindowedBatch | None:
        """Buffer one batch; return the merged window once W are buffered.

        The engine's columnar :class:`~repro.engine.coalesce.RequestStream`
        is buffered as a :meth:`~repro.engine.coalesce.RequestStream
        .snapshot` (no object materialisation, but decoupled from the
        producing stats object growing afterwards); any other request
        sequence is copied into a list.
        """
        if isinstance(requests, RequestStream):
            self._buffered.append(requests.snapshot())
        else:
            self._buffered.append(list(requests))
        if len(self._buffered) >= self._capacity:
            return self.flush()
        return None

    @staticmethod
    def _columns(batch: Sequence[OccRequest]) -> tuple[np.ndarray, np.ndarray]:
        """One buffered batch as (kmers, positions) int64 arrays."""
        if isinstance(batch, RequestStream):
            return batch.kmers, batch.positions
        return (
            np.array([request.packed_kmer for request in batch], dtype=np.int64),
            np.array([request.pos for request in batch], dtype=np.int64),
        )

    def flush(self) -> WindowedBatch | None:
        """Merge and emit whatever is buffered (``None`` when empty).

        The cross-batch dedupe is one vectorized ``np.unique`` over packed
        ``kmer * span + pos`` keys (*span* bounds the window's positions),
        whose ascending order equals the lexicographic ``(kmer, pos)``
        order the stage-1 scheduler wants.
        """
        if not self._buffered:
            return None
        issued = sum(len(batch) for batch in self._buffered)
        batches = len(self._buffered)
        columns = [self._columns(batch) for batch in self._buffered]
        self._buffered = []
        if issued == 0:
            return WindowedBatch(requests=(), batches=batches, issued=0)
        kmers = np.concatenate([kmer_column for kmer_column, _ in columns])
        positions = np.concatenate([position_column for _, position_column in columns])
        span = int(positions.max()) + 1
        keys = np.unique(kmers * span + positions)
        return WindowedBatch(
            requests=tuple(
                OccRequest(packed_kmer=kmer, pos=pos)
                for kmer, pos in zip((keys // span).tolist(), (keys % span).tolist())
            ),
            batches=batches,
            issued=issued,
        )

    def stream(
        self, batch_streams: Iterable[Sequence[OccRequest]]
    ) -> Iterator[WindowedBatch]:
        """Windowed merge of an iterable of batch streams, trailing partial
        window included."""
        for batch in batch_streams:
            flushed = self.push(batch)
            if flushed is not None:
                yield flushed
        final = self.flush()
        if final is not None:
            yield final


def windowed_request_stream(
    batch_streams: Iterable[Sequence[OccRequest]], capacity: int
) -> tuple[list[OccRequest], list[WindowedBatch]]:
    """The full post-merge stream of *batch_streams* under window *capacity*,
    plus the per-window flushes (for counting and sweeps)."""
    window = CoalescingWindow(capacity)
    flushes = list(window.stream(batch_streams))
    requests = [request for flushed in flushes for request in flushed.requests]
    return requests, flushes
