"""Cross-batch request coalescing: the scheduling-window model.

The engine's per-batch coalescing merges duplicate ``(k-mer, pos)``
requests *within* one batch; the paper's Fig. 15 sweep shows the
accelerator gains more when the DRAM-side merge may look across a
*scheduling window* of consecutive batches — the longer the replayed
stream, the more duplicates fall inside one window.  A
:class:`CoalescingWindow` models that stage in software: it buffers up to
``capacity`` (W) consecutive batch request streams and flushes each
window as one merged stream in which every unique ``(k-mer, pos)`` pair
appears exactly once, in the ``(k-mer, pos)``-sorted order the stage-1
scheduler wants.

The window is **columnar end-to-end**: buffered batches are kept as the
packed ``kmer * span + pos`` int64 key arrays the engine's
:class:`~repro.engine.coalesce.RequestStream` already carries, the flush
dedupe is one vectorized ``np.unique`` over those keys, and the flushed
:class:`WindowedBatch` holds the merged key array itself — which the
accelerator's columnar replay consumes as-is, through to the cycle
counts.  No :class:`~repro.exma.search.OccRequest` objects are
materialised anywhere on that path — the batch only builds them lazily
when a legacy consumer (the object-path reference replay,
``to_search_stats``, tests) iterates its ``requests`` view.

Two oracle properties pin the semantics down (``tests/test_window.py``):

* **W = 1** is per-batch coalescing exactly — each flush equals
  :func:`repro.engine.coalesce.coalesce_requests` applied to that batch's
  stream alone;
* **W > 1** never emits more post-merge requests than the sum of the
  per-batch post-merge counts, and for window capacities that divide each
  other (1, 2, 4, 8, ...) the total post-merge count is monotone
  non-increasing in W, since every 2W-window is the union of two aligned
  W-windows.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..exma.search import OccRequest
from .coalesce import RequestStream, pack_requests

__all__ = ["CoalescingWindow", "WindowedBatch", "windowed_request_stream"]


class WindowedBatch(Sequence):
    """One flushed window: the merged unique requests of up to W batches.

    The merged stream is stored columnar — ``keys`` holds each unique
    ``(k-mer, pos)`` pair once as a packed ``kmer * span + pos`` int64,
    sorted ascending, which equals the lexicographic ``(k-mer, pos)``
    order the stage-1 scheduler wants.  ``kmers``/``positions`` decompose
    the keys on demand; the ``requests`` view materialises
    :class:`~repro.exma.search.OccRequest` objects lazily (cached), so
    only legacy consumers pay for objects.
    """

    __slots__ = ("keys", "span", "batches", "issued", "_columns", "_view")

    def __init__(self, keys: np.ndarray, span: int, batches: int, issued: int) -> None:
        #: Unique packed ``kmer * span + pos`` keys, sorted ascending.
        self.keys = keys
        #: Exclusive upper bound on positions used to pack ``keys``.
        self.span = int(span)
        #: Number of batches merged into this window.
        self.batches = batches
        #: Requests entering the window (after per-batch, pre-window merging).
        self.issued = issued
        self._columns: tuple[np.ndarray, np.ndarray] | None = None
        self._view: tuple[OccRequest, ...] | None = None

    @classmethod
    def from_requests(
        cls, requests: Sequence[OccRequest], batches: int = 1, issued: int | None = None
    ) -> "WindowedBatch":
        """Build a window from already-unique, ``(k-mer, pos)``-sorted requests."""
        keys, span = pack_requests(requests)
        return cls(
            keys=keys,
            span=span,
            batches=batches,
            issued=len(requests) if issued is None else issued,
        )

    @property
    def unique(self) -> int:
        """Requests surviving the window merge."""
        return int(self.keys.size)

    @property
    def merged(self) -> int:
        """Requests eliminated by the cross-batch merge."""
        return self.issued - self.unique

    def _decomposed(self) -> tuple[np.ndarray, np.ndarray]:
        if self._columns is None:
            self._columns = (self.keys // self.span, self.keys % self.span)
        return self._columns

    @property
    def kmers(self) -> np.ndarray:
        """Unique k-mer codes, in merged (k-mer-major) order."""
        return self._decomposed()[0]

    @property
    def positions(self) -> np.ndarray:
        """Unique Occ positions, aligned with :attr:`kmers`."""
        return self._decomposed()[1]

    @property
    def requests(self) -> tuple[OccRequest, ...]:
        """Lazy object view of the merged stream (cached)."""
        if self._view is None:
            kmers, positions = self._decomposed()
            self._view = tuple(
                OccRequest(packed_kmer=kmer, pos=pos)
                for kmer, pos in zip(kmers.tolist(), positions.tolist())
            )
        return self._view

    @property
    def materialised(self) -> bool:
        """Whether the object view has been built (observability for tests)."""
        return self._view is not None

    def __len__(self) -> int:
        return int(self.keys.size)

    def __iter__(self) -> Iterator[OccRequest]:
        return iter(self.requests)

    def __getitem__(self, index):
        return self.requests[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WindowedBatch({self.unique} unique of {self.issued} issued, "
            f"{self.batches} batches)"
        )


class CoalescingWindow:
    """Buffers up to *capacity* consecutive batches and merges duplicates.

    ``push`` buffers one batch's request stream and returns the flushed
    :class:`WindowedBatch` once the window fills (``None`` while it is
    still filling); ``flush`` force-emits a partial window (end of
    stream).  ``stream`` wraps both for an iterable of batches.

    Args:
        capacity: the scheduling window W — how many consecutive batches
            may share one merge.  ``capacity=1`` reproduces per-batch
            coalescing exactly.
    """

    def __init__(self, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("window capacity must be >= 1")
        self._capacity = capacity
        self._buffered: list[list[tuple[np.ndarray, int]]] = []

    @property
    def capacity(self) -> int:
        """The window size W."""
        return self._capacity

    @property
    def pending(self) -> int:
        """Batches currently buffered, awaiting a flush."""
        return len(self._buffered)

    @staticmethod
    def _chunks(requests: Sequence[OccRequest]) -> list[tuple[np.ndarray, int]]:
        """One batch's stream as packed ``(keys, span)`` column chunks.

        The engine's columnar :class:`~repro.engine.coalesce.RequestStream`
        and a prior :class:`WindowedBatch` hand their key arrays over by
        reference (the producers never mutate them in place, so this is
        also the snapshot that decouples the buffer from a stats object
        growing afterwards); any other request sequence is packed once.
        """
        if isinstance(requests, RequestStream):
            return requests.chunks()
        if isinstance(requests, WindowedBatch):
            return [(requests.keys, requests.span)] if requests.keys.size else []
        requests = list(requests)
        if not requests:
            return []
        return [pack_requests(requests)]

    def push(self, requests: Sequence[OccRequest]) -> WindowedBatch | None:
        """Buffer one batch; return the merged window once W are buffered."""
        self._buffered.append(self._chunks(requests))
        if len(self._buffered) >= self._capacity:
            return self.flush()
        return None

    def flush(self) -> WindowedBatch | None:
        """Merge and emit whatever is buffered (``None`` when empty).

        The cross-batch dedupe is one vectorized ``np.unique`` over the
        buffered packed ``kmer * span + pos`` keys, whose ascending order
        equals the lexicographic ``(kmer, pos)`` order the stage-1
        scheduler wants.  Chunks packed under different spans (streams
        from different references) are re-based onto the widest span
        before the union; the common case — one engine, one span — is a
        plain concatenate of the arrays the coalescer already produced.
        """
        if not self._buffered:
            return None
        chunks = [chunk for batch in self._buffered for chunk in batch]
        batches = len(self._buffered)
        issued = sum(int(keys.size) for keys, _ in chunks)
        self._buffered = []
        if issued == 0:
            return WindowedBatch(
                keys=np.empty(0, dtype=np.int64), span=1, batches=batches, issued=0
            )
        spans = {span for _, span in chunks}
        if len(spans) == 1:
            span = spans.pop()
            packed = [keys for keys, _ in chunks]
        else:
            span = max(spans)
            packed = [
                keys if chunk_span == span else (keys // chunk_span) * span + keys % chunk_span
                for keys, chunk_span in chunks
            ]
        keys = np.unique(np.concatenate(packed))
        return WindowedBatch(keys=keys, span=span, batches=batches, issued=issued)

    def stream(
        self, batch_streams: Iterable[Sequence[OccRequest]]
    ) -> Iterator[WindowedBatch]:
        """Windowed merge of an iterable of batch streams, trailing partial
        window included."""
        for batch in batch_streams:
            flushed = self.push(batch)
            if flushed is not None:
                yield flushed
        final = self.flush()
        if final is not None:
            yield final


def windowed_request_stream(
    batch_streams: Iterable[Sequence[OccRequest]], capacity: int
) -> tuple[list[OccRequest], list[WindowedBatch]]:
    """The full post-merge stream of *batch_streams* under window *capacity*,
    plus the per-window flushes (for counting and sweeps)."""
    window = CoalescingWindow(capacity)
    flushes = list(window.stream(batch_streams))
    requests = [request for flushed in flushes for request in flushed.requests]
    return requests, flushes
