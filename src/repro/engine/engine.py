"""The unified batched query engine.

:class:`QueryEngine` is the one front door for exact-match search: it owns
a :class:`~repro.engine.backends.SearchBackend` and exposes the batch
lifecycle the rest of the repository builds on —

1. **submit** a batch of queries (:meth:`QueryEngine.search_batch`);
2. the backend advances every live query's ``(low, high)`` interval in
   lockstep, one multi-symbol step per iteration;
3. each step's ``(kmer, pos)`` Occ requests are **coalesced** across the
   batch, so duplicates are resolved once (the paper's DRAM-side merge);
4. the coalesced request stream and counters come back as
   :class:`~repro.engine.coalesce.BatchStats`, ready for the ``hw/``
   accelerator model to replay.

Single-query calls are thin wrappers over batches of one, so there is
exactly one search implementation per backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..exma.search import OccRequest
from ..index.fmindex import Interval
from .backends import SearchBackend, create_backend
from .coalesce import BatchStats

__all__ = ["BatchResult", "QueryEngine"]


@dataclass(frozen=True)
class BatchResult:
    """Intervals plus counters for one submitted batch."""

    intervals: list[Interval]
    stats: BatchStats

    @property
    def counts(self) -> list[int]:
        """Occurrence count per query."""
        return [interval.count for interval in self.intervals]

    @property
    def matched(self) -> int:
        """Queries with at least one occurrence."""
        return sum(1 for interval in self.intervals if not interval.empty)


class QueryEngine:
    """Batched exact-match search through a pluggable backend.

    Args:
        backend: a prebuilt backend, or ``None`` to build one by name.
        name: registry name used when *backend* is omitted.
        reference: reference string used when *backend* is omitted.
        **kwargs: forwarded to the backend factory.
    """

    def __init__(
        self,
        backend: SearchBackend | None = None,
        *,
        name: str | None = None,
        reference: str | None = None,
        **kwargs,
    ) -> None:
        if backend is None:
            if name is None or reference is None:
                raise ValueError("provide a backend, or a registry name and reference")
            backend = create_backend(name, reference, **kwargs)
        self._backend = backend

    @classmethod
    def from_reference(cls, reference: str, name: str = "fmindex", **kwargs) -> "QueryEngine":
        """Build an engine over *reference* using a registered backend."""
        return cls(name=name, reference=reference, **kwargs)

    @property
    def backend(self) -> SearchBackend:
        """The backend answering this engine's batches."""
        return self._backend

    # ------------------------------------------------------------------ #
    # Batch lifecycle
    # ------------------------------------------------------------------ #

    def search_batch(self, queries: Sequence[str]) -> BatchResult:
        """Search a batch of queries in lockstep, with request coalescing."""
        stats = BatchStats()
        intervals = self._backend.search_batch(list(queries), stats)
        return BatchResult(intervals=intervals, stats=stats)

    def find_batch(
        self, queries: Sequence[str], limit: int | None = None
    ) -> tuple[list[list[int]], BatchStats]:
        """Occurrence positions of every query plus the batch counters."""
        result = self.search_batch(queries)
        positions = [
            self._backend.locate(interval, limit=limit) for interval in result.intervals
        ]
        return positions, result.stats

    def count_batch(self, queries: Sequence[str]) -> list[int]:
        """Occurrence count of every query."""
        return self.search_batch(queries).counts

    def request_stream(
        self, queries: Sequence[str]
    ) -> tuple[list[OccRequest], BatchStats]:
        """The coalesced (k-mer, pos) request stream of a batch.

        Mirrors :meth:`repro.exma.search.ExmaSearch.request_stream` but
        post-coalescing: the stream the accelerator's scheduling queue
        receives after the DRAM-side merge.
        """
        result = self.search_batch(queries)
        return result.stats.requests, result.stats

    # ------------------------------------------------------------------ #
    # Single-query wrappers
    # ------------------------------------------------------------------ #

    def search(self, query: str) -> Interval:
        """Single-query search: a batch of one."""
        return self.search_batch([query]).intervals[0]

    def find(self, query: str, limit: int | None = None) -> list[int]:
        """All reference positions where *query* occurs (sorted)."""
        return self.find_batch([query], limit=limit)[0][0]

    def occurrence_count(self, query: str) -> int:
        """Number of occurrences of *query* in the reference."""
        return self.search(query).count
