"""The unified batched query engine.

:class:`QueryEngine` is the one front door for exact-match search: it owns
a :class:`~repro.engine.backends.SearchBackend` and exposes the batch
lifecycle the rest of the repository builds on —

1. **submit** a batch of queries (:meth:`QueryEngine.search_batch`);
2. the backend advances every live query's ``(low, high)`` interval in
   lockstep, one multi-symbol step per iteration;
3. each step's ``(kmer, pos)`` Occ requests are **coalesced** across the
   batch, so duplicates are resolved once (the paper's DRAM-side merge);
4. the coalesced request stream and counters come back as
   :class:`~repro.engine.coalesce.BatchStats`, ready for the ``hw/``
   accelerator model to replay.

Single-query calls are thin wrappers over batches of one, so there is
exactly one search implementation per backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..exma.search import OccRequest
from ..index.fmindex import Interval
from .backends import SearchBackend, create_backend
from .coalesce import BatchStats

__all__ = ["BatchResult", "QueryEngine"]


@dataclass(frozen=True)
class BatchResult:
    """Intervals plus counters for one submitted batch."""

    intervals: list[Interval]
    stats: BatchStats

    @property
    def counts(self) -> list[int]:
        """Occurrence count per query."""
        return [interval.count for interval in self.intervals]

    @property
    def matched(self) -> int:
        """Queries with at least one occurrence."""
        return sum(1 for interval in self.intervals if not interval.empty)


class WorkerPoolOwner:
    """Owns one persistent shard worker pool bound to ``self._backend``.

    The single implementation of the pool-owner lifecycle every holder
    (the engines, the read aligner) mixes in: the pool is created lazily
    on the first multi-shard call, reused across calls, transparently
    replaced when the effective executor kind or worker count changes
    (e.g. environment toggles), and released by ``close()``, context-
    manager exit or garbage collection.  Hosts must provide a
    ``_backend`` attribute.
    """

    _pool = None

    @property
    def worker_pool(self):
        """The owned persistent pool (``None`` until the first multi-shard
        call creates it, or after :meth:`close`)."""
        return self._pool

    def _ensure_pool(self, shards: int, executor: str):
        from .sharded import BackendWorkerPool

        self._pool = BackendWorkerPool.ensure(self._pool, self._backend, executor, shards)
        return self._pool

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent).

        The owner remains usable: the next sharded call simply creates a
        fresh pool.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            pool, self._pool = self._pool, None
            if pool is not None:
                pool.shutdown(wait=False)
        except Exception:
            pass


class QueryEngine(WorkerPoolOwner):
    """Batched exact-match search through a pluggable backend.

    Args:
        backend: a prebuilt backend, or ``None`` to build one by name.
        name: registry name used when *backend* is omitted.
        reference: reference string used when *backend* is omitted.
        shards: split batches into up to this many shards and search them
            in a persistent worker pool (see :mod:`repro.engine.sharded`);
            results are identical to the serial path.  The count is an
            *upper bound*: the engine clamps it to the CPUs actually
            available (``min(shards, CPUs)``), because oversubscribing a
            host buys no parallelism and still pays the split/merge
            overhead — set ``REPRO_SHARD_OVERSUBSCRIBE=1`` or use
            :class:`~repro.engine.sharded.ShardedQueryEngine` to force the
            full split.  ``None`` (the default) defers to the
            ``REPRO_DEFAULT_SHARDS`` environment toggle, which defaults to
            1 (serial).
        executor: ``"thread"`` or ``"process"`` worker pool for the
            sharded path; ``None`` defers to ``REPRO_DEFAULT_EXECUTOR``
            (default ``"thread"``).
        **kwargs: forwarded to the backend factory.
    """

    #: Whether this engine clamps its shard count to the hardware; the
    #: explicit :class:`~repro.engine.sharded.ShardedQueryEngine` opts out.
    _adaptive = True

    def __init__(
        self,
        backend: SearchBackend | None = None,
        *,
        name: str | None = None,
        reference: str | None = None,
        shards: int | None = None,
        executor: str | None = None,
        **kwargs,
    ) -> None:
        if backend is None:
            if name is None or reference is None:
                raise ValueError("provide a backend, or a registry name and reference")
            backend = create_backend(name, reference, **kwargs)
        if shards is not None and shards < 1:
            raise ValueError("shards must be >= 1")
        if executor is not None:
            from .sharded import EXECUTORS

            if executor not in EXECUTORS:
                raise ValueError(
                    f"unknown executor {executor!r}; available: {', '.join(EXECUTORS)}"
                )
        self._backend = backend
        self._shards = shards
        self._executor = executor
        #: Lazily created persistent worker pool for the sharded path.
        self._pool = None

    @classmethod
    def from_reference(cls, reference: str, name: str = "fmindex", **kwargs) -> "QueryEngine":
        """Build an engine over *reference* using a registered backend."""
        return cls(name=name, reference=reference, **kwargs)

    def clone(self) -> "QueryEngine":
        """A new engine of the same type over the same backend.

        Backends are read-only after construction (their lazy caches are
        idempotent), so clones can search concurrently from separate
        threads — which is how the serving layer gives every batcher
        worker its own engine (and persistent worker pool) without
        duplicating the index.  The clone inherits this engine's pinned
        ``shards``/``executor`` settings but never its pool.
        """
        return type(self)(self._backend, shards=self._shards, executor=self._executor)

    @property
    def backend(self) -> SearchBackend:
        """The backend answering this engine's batches."""
        return self._backend

    @property
    def shards(self) -> int:
        """Configured shard count (pinned, or the environment default)."""
        if self._shards is not None:
            return self._shards
        from .sharded import default_shards

        return default_shards()

    @property
    def effective_shards(self) -> int:
        """The shard count batches actually run with.

        For the adaptive engine this is the configured count clamped to
        the available CPUs (see :func:`repro.engine.sharded
        .effective_shards`); :class:`~repro.engine.sharded
        .ShardedQueryEngine` always uses the configured count.
        """
        shards = self.shards
        if shards > 1 and self._adaptive:
            from .sharded import effective_shards

            return effective_shards(shards)
        return shards

    @property
    def executor(self) -> str:
        """Effective executor kind (pinned, or the environment default)."""
        if self._executor is not None:
            return self._executor
        from .sharded import default_executor

        return default_executor()

    # ------------------------------------------------------------------ #
    # Batch lifecycle
    # ------------------------------------------------------------------ #

    def search_batch(self, queries: Sequence[str]) -> BatchResult:
        """Search a batch of queries in lockstep, with request coalescing.

        Dispatches to the sharded parallel path when the engine (or the
        ``REPRO_DEFAULT_SHARDS`` toggle) asks for — and the hardware can
        run — more than one shard; intervals and stats are identical
        either way.
        """
        shards = self.effective_shards
        if shards > 1:
            from .sharded import run_sharded_batch

            executor = self.executor
            return run_sharded_batch(
                self._backend,
                queries,
                shards=shards,
                executor=executor,
                pool=self._ensure_pool(shards, executor),
            )
        stats = BatchStats()
        intervals = self._backend.search_batch(list(queries), stats)
        return BatchResult(intervals=intervals, stats=stats)

    def find_batch(
        self, queries: Sequence[str], limit: int | None = None
    ) -> tuple[list[list[int]], BatchStats]:
        """Occurrence positions of every query plus the batch counters."""
        result = self.search_batch(queries)
        positions = [
            self._backend.locate(interval, limit=limit) for interval in result.intervals
        ]
        return positions, result.stats

    def count_batch(self, queries: Sequence[str]) -> list[int]:
        """Occurrence count of every query."""
        return self.search_batch(queries).counts

    def request_stream(
        self, queries: Sequence[str]
    ) -> tuple[list[OccRequest], BatchStats]:
        """The coalesced (k-mer, pos) request stream of a batch.

        Mirrors :meth:`repro.exma.search.ExmaSearch.request_stream` but
        post-coalescing: the stream the accelerator's scheduling queue
        receives after the DRAM-side merge.
        """
        result = self.search_batch(queries)
        return result.stats.requests, result.stats

    # ------------------------------------------------------------------ #
    # Single-query wrappers
    # ------------------------------------------------------------------ #

    def search(self, query: str) -> Interval:
        """Single-query search: a batch of one."""
        return self.search_batch([query]).intervals[0]

    def find(self, query: str, limit: int | None = None) -> list[int]:
        """All reference positions where *query* occurs (sorted)."""
        return self.find_batch([query], limit=limit)[0][0]

    def occurrence_count(self, query: str) -> int:
        """Number of occurrences of *query* in the reference."""
        return self.search(query).count
