"""Search backends: one batched interface over every index structure.

A :class:`SearchBackend` answers batches of exact-match queries with
BW-matrix intervals.  Each backend wraps one of the repository's search
structures — the 1-step :class:`~repro.index.fmindex.FMIndex`, an EXMA
table (exact, naive-learned or MTL Occ resolution) or LISA's IP-BWT — and
implements the same lockstep discipline: all live queries advance their
``(low, high)`` intervals together, one multi-symbol step per iteration,
with the step's Occ requests coalesced (:mod:`repro.engine.coalesce`)
before they touch the underlying structure.  Backends register themselves
in a name registry so applications, experiments and the CLI can select
one with a string.
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence

import numpy as np

from ..exma.search import OccIndex
from ..exma.table import ExmaTable
from ..genome.alphabet import (
    FULL_ALPHABET,
    SENTINEL,
    AlphabetError,
    encode,
    pack_kmer,
    unpack_kmer,
)
from ..index.fmindex import FMIndex, Interval
from ..lisa.search import LisaIndex
from .coalesce import (
    BatchStats,
    StepContribution,
    TailContribution,
    coalesce_requests,
)

__all__ = [
    "SearchBackend",
    "FMIndexBackend",
    "ExmaBackend",
    "LisaBackend",
    "available_backends",
    "create_backend",
    "register_backend",
]


class SearchBackend(abc.ABC):
    """Batched exact-match search over one index structure.

    Subclasses implement :meth:`search_batch` (the lockstep core) and
    :meth:`locate`; everything else — single-query search, find, counting
    — derives from those, so single-query paths stay thin wrappers over
    the batched engine.
    """

    #: Registry name, set by :func:`register_backend`.
    name: str = "abstract"

    @abc.abstractmethod
    def search_batch(
        self, queries: Sequence[str], stats: BatchStats | None = None
    ) -> list[Interval]:
        """BW-matrix interval of every query, advancing all in lockstep."""

    @abc.abstractmethod
    def locate(self, interval: Interval, limit: int | None = None) -> list[int]:
        """Reference positions of a BW-matrix interval (sorted)."""

    @property
    @abc.abstractmethod
    def reference_length(self) -> int:
        """Length of the sentinel-terminated reference."""

    def search(self, query: str, stats: BatchStats | None = None) -> Interval:
        """Single-query search: a batch of one."""
        return self.search_batch([query], stats)[0]

    def find_batch(
        self,
        queries: Sequence[str],
        stats: BatchStats | None = None,
        limit: int | None = None,
    ) -> list[list[int]]:
        """Occurrence positions of every query (sorted per query)."""
        return [
            self.locate(interval, limit=limit)
            for interval in self.search_batch(queries, stats)
        ]

    def count_batch(
        self, queries: Sequence[str], stats: BatchStats | None = None
    ) -> list[int]:
        """Occurrence count of every query."""
        return [interval.count for interval in self.search_batch(queries, stats)]

    @staticmethod
    def _validate(queries: Sequence[str]) -> None:
        for query in queries:
            if not query:
                raise ValueError("query must be non-empty")


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

_REGISTRY: dict[str, Callable[..., SearchBackend]] = {}


def register_backend(name: str):
    """Class decorator registering a backend factory under *name*.

    The decorated class must accept ``(reference, **kwargs)``; prebuilt
    structures can still be passed through the keyword arguments each
    backend documents.
    """

    def decorate(factory: Callable[..., SearchBackend]):
        _REGISTRY[name] = factory
        if isinstance(factory, type):
            factory.name = name
        return factory

    return decorate


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_backend(name: str, reference: str, **kwargs) -> SearchBackend:
    """Build a registered backend over *reference*."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None
    return factory(reference, **kwargs)


# --------------------------------------------------------------------- #
# FM-Index (1-step) backend
# --------------------------------------------------------------------- #


@register_backend("fmindex")
class FMIndexBackend(SearchBackend):
    """Lockstep batched backward search over the 1-step FM-Index.

    One lockstep iteration consumes one DNA symbol of every live query.
    The step's ``(symbol, pos)`` Occ requests are coalesced and answered
    with a single gather from the index's dense cumulative Occ table.
    (Row-locality accounting at ``bucket_width`` granularity stays on the
    sequential path's :class:`~repro.index.fmindex.SearchTrace`; the
    batched stats count issued/unique requests, not bucket reuse.)

    Args:
        reference: reference string over ``ACGT``.
        fm_index: prebuilt index to wrap (skips construction).
    """

    def __init__(self, reference: str | None = None, fm_index: FMIndex | None = None) -> None:
        if fm_index is None:
            if reference is None:
                raise ValueError("either reference or fm_index is required")
            fm_index = FMIndex(reference)
        self._fm = fm_index

    @property
    def fm_index(self) -> FMIndex:
        """The wrapped FM-Index."""
        return self._fm

    @property
    def reference_length(self) -> int:
        return self._fm.reference_length

    def locate(self, interval: Interval, limit: int | None = None) -> list[int]:
        return self._fm.locate(interval, limit=limit)

    def _encode_reversed(self, queries: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
        """Encode queries right-to-left into a padded code matrix."""
        lengths = np.array([len(q) for q in queries], dtype=np.int64)
        max_len = int(lengths.max())
        codes = np.zeros((len(queries), max_len), dtype=np.int64)
        for i, query in enumerate(queries):
            encoded = encode(query)
            if np.any(encoded == 0):
                raise ValueError(f"query {query!r} contains the sentinel symbol")
            codes[i, : len(query)] = encoded[::-1]
        return codes, lengths

    def search_batch(
        self, queries: Sequence[str], stats: BatchStats | None = None
    ) -> list[Interval]:
        if not queries:
            return []
        self._validate(queries)
        codes, lengths = self._encode_reversed(queries)
        n = self._fm.reference_length
        occ = self._fm.occ_prefix_sums()
        count = self._fm.count_table

        n_queries = len(queries)
        lows = np.zeros(n_queries, dtype=np.int64)
        highs = np.full(n_queries, n, dtype=np.int64)
        alive = np.ones(n_queries, dtype=bool)
        if stats is not None:
            stats.queries += n_queries

        for step_index in range(codes.shape[1]):
            active = alive & (lengths > step_index)
            if not np.any(active):
                break
            symbols = codes[active, step_index]
            step = coalesce_requests(
                np.concatenate([symbols, symbols]),
                np.concatenate([lows[active], highs[active]]),
                span=n + 1,
            )
            occ_unique = occ[step.positions, step.kmers].astype(np.int64)
            occ_all = step.scatter(occ_unique)
            n_active = int(symbols.size)
            lows[active] = count[symbols] + occ_all[:n_active]
            highs[active] = count[symbols] + occ_all[n_active:]
            alive &= lows < highs

            if stats is not None:
                stats.iterations += n_active
                # One gather from the dense Occ table per unique symbol per
                # step: record_step charges exactly that base-read rule.
                stats.record_step(step)

        return [Interval(int(low), int(high)) for low, high in zip(lows, highs)]

    # ------------------------------------------------------------------ #
    # Batched seeding
    # ------------------------------------------------------------------ #

    def maximal_exact_matches_batch(
        self, reads: Sequence[str], min_length: int = 10, stats: BatchStats | None = None
    ) -> list[list["Seed"]]:
        """Greedy maximal exact matches of many reads, in lockstep.

        Runs the exact per-read state machine of
        :meth:`repro.index.fmindex.FMIndex.maximal_exact_matches` — same
        seeds, same order — but advances every read together and answers
        each global step's backward extensions with one coalesced batch of
        Occ lookups, so seeding a read batch drives the memory system the
        way the paper's request streams do.  With *stats*, each global
        step's coalesced requests are recorded exactly as
        :meth:`search_batch` records them, so the seeding pass yields the
        columnar request stream the windowed accelerator pipeline replays.
        """
        from ..index.fmindex import Seed

        n = self._fm.reference_length
        occ = self._fm.occ_prefix_sums()
        count = self._fm.count_table
        if stats is not None:
            stats.queries += len(reads)

        states = []
        for read in reads:
            states.append(
                {
                    "read": read,
                    "end": len(read),
                    "start": len(read),
                    "low": 0,
                    "high": n,
                    "last_good": None,
                    "seeds": [],
                    "done": len(read) == 0,
                }
            )

        while True:
            extenders: list[tuple[dict, int]] = []
            for state in states:
                if state["done"]:
                    continue
                symbol = state["read"][state["start"] - 1] if state["start"] > 0 else None
                if (
                    symbol is not None
                    and symbol in FULL_ALPHABET
                    and symbol != SENTINEL
                ):
                    extenders.append((state, FULL_ALPHABET.index(symbol)))
                else:
                    self._finish_segment(state, Seed, min_length, n)
            if not extenders:
                if all(state["done"] for state in states):
                    break
                continue

            symbols = np.array([code for _, code in extenders], dtype=np.int64)
            lows = np.array([state["low"] for state, _ in extenders], dtype=np.int64)
            highs = np.array([state["high"] for state, _ in extenders], dtype=np.int64)
            step = coalesce_requests(
                np.concatenate([symbols, symbols]),
                np.concatenate([lows, highs]),
                span=n + 1,
            )
            occ_all = step.scatter(occ[step.positions, step.kmers].astype(np.int64))
            n_active = symbols.size
            new_lows = count[symbols] + occ_all[:n_active]
            new_highs = count[symbols] + occ_all[n_active:]
            if stats is not None:
                stats.iterations += int(n_active)
                # Same base-read rule as search_batch: one gather from the
                # dense Occ table per unique symbol per global step.
                stats.record_step(step)

            for i, (state, _) in enumerate(extenders):
                if new_lows[i] < new_highs[i]:
                    state["low"] = int(new_lows[i])
                    state["high"] = int(new_highs[i])
                    state["start"] -= 1
                    state["last_good"] = (state["low"], state["high"])
                else:
                    self._finish_segment(state, Seed, min_length, n)

        return [list(reversed(state["seeds"])) for state in states]

    @staticmethod
    def _finish_segment(state: dict, seed_cls, min_length: int, full_high: int) -> None:
        """Emit the current maximal match (if long enough) and restart."""
        start, end = state["start"], state["end"]
        if state["last_good"] is not None and end - start >= min_length:
            low, high = state["last_good"]
            state["seeds"].append(
                seed_cls(read_start=start, read_end=end, interval=Interval(low, high))
            )
        # Restart before the current seed (non-overlapping seeds).
        end = start if start < end else end - 1
        state["end"] = end
        state["start"] = end
        state["low"] = 0
        state["high"] = full_high
        state["last_good"] = None
        if end <= 0:
            state["done"] = True


# --------------------------------------------------------------------- #
# EXMA backend
# --------------------------------------------------------------------- #


@register_backend("exma")
class ExmaBackend(SearchBackend):
    """Lockstep batched backward search over an EXMA table.

    One lockstep iteration consumes one k-mer of every live query.  The
    step's ``(kmer, pos)`` requests are coalesced exactly once across the
    whole batch — the software mirror of the accelerator's DRAM-side
    merge — then answered k-mer-major: each unique k-mer's increment list
    is fetched once and all its unique positions rank-queried together
    (vectorized ``searchsorted``, or one batched MTL inference when the
    k-mer is modelled).

    Args:
        reference: DNA reference (ignored when *table* is given).
        k: EXMA step number for table construction.
        table: prebuilt :class:`ExmaTable` to wrap.
        index: optional Occ index (naive learned or MTL).  Resolution is
            always exact; the index only adds the predict/verify cost
            accounting, as in :class:`repro.exma.search.ExmaSearch`.
    """

    def __init__(
        self,
        reference: str | None = None,
        k: int = 6,
        table: ExmaTable | None = None,
        index: OccIndex | None = None,
    ) -> None:
        if table is None:
            if reference is None:
                raise ValueError("either reference or table is required")
            table = ExmaTable(reference, k=k)
        self._table = table
        self._index = index
        self._span = table.reference_length + 1
        self._augmented: np.ndarray | None = None
        self._offsets: np.ndarray | None = None
        self._frequencies: np.ndarray | None = None

    @property
    def table(self) -> ExmaTable:
        """The wrapped EXMA table."""
        return self._table

    @property
    def index(self) -> OccIndex | None:
        """The Occ index in use, if any."""
        return self._index

    @property
    def reference_length(self) -> int:
        return self._table.reference_length

    def locate(self, interval: Interval, limit: int | None = None) -> list[int]:
        high = interval.high if limit is None else min(interval.high, interval.low + limit)
        return self._table.locate(interval.low, high)

    def _chunk_matrix(self, queries: Sequence[str]) -> tuple[np.ndarray, np.ndarray, list[str]]:
        """Pack every query's full k-chunks right-to-left, padded with -1.

        The bodies are encoded once, right-aligned into one code matrix
        and packed with a single reshape + matmul against the 2-bit place
        values — no per-chunk Python packing.  Right alignment makes slot
        ``max_steps - 1 - j`` of every row the j-th chunk consumed by the
        lockstep loop, regardless of query length.
        """
        k = self._table.k
        n_queries = len(queries)
        lengths = np.array([len(query) for query in queries], dtype=np.int64)
        steps = lengths // k
        max_steps = int(steps.max(initial=0))
        width = max_steps * k
        aligned = np.zeros((n_queries, width), dtype=np.int64)
        leftovers: list[str] = []
        for i, query in enumerate(queries):
            body = len(query) - len(query) % k
            leftovers.append(query[body:])
            if body:
                aligned[i, width - body :] = encode(query[:body])
        body_mask = np.arange(width) >= width - (steps * k)[:, None]
        if np.any((aligned == 0) & body_mask):
            raise AlphabetError("invalid k-mer symbol: '$'")
        place_values = 4 ** np.arange(k - 1, -1, -1, dtype=np.int64)
        packed = (aligned - 1).reshape(n_queries, max_steps, k) @ place_values
        matrix = np.where(
            steps[:, None] > np.arange(max_steps), packed[:, ::-1], np.int64(-1)
        )
        return matrix, steps, leftovers

    def search_batch(
        self, queries: Sequence[str], stats: BatchStats | None = None
    ) -> list[Interval]:
        if not queries:
            return []
        self._validate(queries)
        n = self._table.reference_length
        chunk_matrix, steps, leftovers = self._chunk_matrix(queries)

        n_queries = len(queries)
        lows = np.zeros(n_queries, dtype=np.int64)
        highs = np.full(n_queries, n, dtype=np.int64)
        alive = np.ones(n_queries, dtype=bool)
        if stats is not None:
            stats.queries += n_queries

        # Trailing partial chunk first, straight from the per-k-mer counts
        # (coalesced by tail string: each distinct tail is resolved once).
        tail_cache: dict[str, tuple[int, int]] = {}
        for i, tail in enumerate(leftovers):
            if not tail:
                continue
            bounds = tail_cache.get(tail)
            if bounds is None:
                bounds = self._table.prefix_interval(tail)
                tail_cache[tail] = bounds
                if stats is not None:
                    stats.record_tail(tail, TailContribution(base_reads=1))
            lows[i], highs[i] = bounds
            if stats is not None:
                stats.iterations += 1
            if lows[i] >= highs[i]:
                alive[i] = False

        for step_index in range(chunk_matrix.shape[1]):
            active = alive & (steps > step_index)
            if not np.any(active):
                break
            packed = chunk_matrix[active, step_index]
            step = coalesce_requests(
                np.concatenate([packed, packed]),
                np.concatenate([lows[active], highs[active]]),
                span=n + 1,
            )
            occ_unique = self._resolve_unique(step.kmers, step.positions)
            occ_all = step.scatter(occ_unique)

            counts = self._table.count_table()[packed]
            n_active = int(packed.size)
            lows[active] = counts + occ_all[:n_active]
            highs[active] = counts + occ_all[n_active:]
            alive &= lows < highs

            if stats is not None:
                stats.iterations += n_active
                stats.record_step(
                    step, self._step_contribution(step.kmers, step.positions, occ_unique)
                )

        return [Interval(int(low), int(high)) for low, high in zip(lows, highs)]

    def _augmented_increments(self) -> tuple[np.ndarray, np.ndarray]:
        """The increment array offset into per-k-mer key ranges (cached).

        ``augmented[i] = increments[i] + owner_kmer(i) * span`` is globally
        sorted (increment lists are concatenated k-mer-major and sorted
        within each list), so ``Occ(kmer, pos)`` for *every* unique request
        of a step is one vectorized ``searchsorted`` of the packed
        ``kmer * span + pos`` keys minus the k-mer's list offset — no
        Python loop over k-mers.
        """
        if self._augmented is None:
            counts = self._table.frequencies()
            owners = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
            augmented = self._table.increments + owners * self._span
            # Publish offsets before the array other threads gate on:
            # concurrent shard threads (sharded.py's thread executor) check
            # ``_augmented is None``, so it must become visible last.
            self._offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
            self._augmented = augmented
        assert self._offsets is not None
        return self._augmented, self._offsets

    def _resolve_unique(self, kmers: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Answer each unique (kmer, pos) request exactly once."""
        augmented, offsets = self._augmented_increments()
        keys = kmers * self._span + positions
        return (np.searchsorted(augmented, keys, side="left") - offsets[kmers]).astype(
            np.int64
        )

    def _step_contribution(
        self, kmers: np.ndarray, positions: np.ndarray, occ_values: np.ndarray
    ) -> StepContribution:
        """Per-unique-request resolution costs of one step, k-mer-major.

        Exact resolution reads ceil-log2 of the k-mer's increment-list
        length per request (binary search), computed for the whole step at
        once: ``frexp`` exponents are exactly ``bit_length`` for the int64
        frequencies.  Modelled k-mers (learned / MTL index) instead read
        the predicted entry plus successor plus the linear overshoot, and
        contribute one prediction with its error per request.
        """
        if self._frequencies is None:
            # frequencies() copies the 4^k counts table; fetch it once per
            # backend, not once per lockstep step.
            self._frequencies = self._table.frequencies()
        freqs = self._frequencies[kmers]
        entries = np.maximum(
            1, np.frexp(freqs.astype(np.float64))[1].astype(np.int64)
        )
        if self._index is None:
            return StepContribution(entries=entries)
        predicted_mask: np.ndarray | None = None
        errors: np.ndarray | None = None
        unique_kmers, starts = np.unique(kmers, return_index=True)
        boundaries = np.append(starts, kmers.size)
        for g, packed in enumerate(unique_kmers.tolist()):
            if not self._index.has_model(packed):
                continue
            begin, end = int(boundaries[g]), int(boundaries[g + 1])
            prediction = self._predict_batch(packed, positions[begin:end])
            group_errors = np.abs(occ_values[begin:end] - prediction)
            if predicted_mask is None:
                predicted_mask = np.zeros(kmers.size, dtype=bool)
                errors = np.zeros(kmers.size, dtype=np.int64)
            predicted_mask[begin:end] = True
            errors[begin:end] = group_errors
            # Predicted entry + successor, plus the linear overshoot.
            entries[begin:end] = 2 + group_errors
        return StepContribution(entries=entries, predicted=predicted_mask, errors=errors)

    def _predict_batch(self, packed: int, positions: np.ndarray) -> np.ndarray:
        """Vectorized index prediction, falling back to per-position calls."""
        predict_batch = getattr(self._index, "predict_batch", None)
        if predict_batch is not None:
            return np.asarray(predict_batch(packed, positions), dtype=np.int64)
        assert self._index is not None
        return np.array(
            [self._index.predict(packed, int(pos)) for pos in positions], dtype=np.int64
        )


def _exma_factory_with_index(index_builder):
    """Build an ExmaBackend whose index comes from *index_builder*(table)."""

    def factory(reference: str | None = None, k: int = 6, table: ExmaTable | None = None, **kwargs):
        if table is None:
            if reference is None:
                raise ValueError("either reference or table is required")
            table = ExmaTable(reference, k=k)
        return ExmaBackend(table=table, index=index_builder(table, **kwargs))

    return factory


@register_backend("exma-learned")
def _exma_learned(reference: str | None = None, **kwargs) -> ExmaBackend:
    """EXMA backend with the naive per-k-mer learned index."""
    from ..exma.learned_index import NaiveLearnedIndex

    backend = _exma_factory_with_index(
        lambda table, **kw: NaiveLearnedIndex(table, **kw)
    )(reference, **kwargs)
    backend.name = "exma-learned"
    return backend


@register_backend("exma-mtl")
def _exma_mtl(reference: str | None = None, **kwargs) -> ExmaBackend:
    """EXMA backend with the MTL index."""
    from ..exma.mtl_index import MTLIndex

    backend = _exma_factory_with_index(lambda table, **kw: MTLIndex(table, **kw))(
        reference, **kwargs
    )
    backend.name = "exma-mtl"
    return backend


# --------------------------------------------------------------------- #
# LISA backend
# --------------------------------------------------------------------- #


@register_backend("lisa")
class LisaBackend(SearchBackend):
    """Lockstep batched backward search over LISA's IP-BWT.

    One lockstep iteration consumes one k-symbol chunk of every live
    query.  Duplicate ``(chunk, pos)`` lower-bound requests are coalesced
    per step and resolved once each — by binary search over the IP-BWT or
    by the RMI when the wrapped :class:`LisaIndex` has one.

    Args:
        reference: DNA reference (ignored when *lisa_index* is given).
        k: symbols per iteration for construction.
        use_learned_index: forwarded to :class:`LisaIndex` construction.
        lisa_index: prebuilt LISA structure to wrap.
    """

    def __init__(
        self,
        reference: str | None = None,
        k: int = 4,
        use_learned_index: bool = False,
        lisa_index: LisaIndex | None = None,
    ) -> None:
        if lisa_index is None:
            if reference is None:
                raise ValueError("either reference or lisa_index is required")
            lisa_index = LisaIndex(reference, k=k, use_learned_index=use_learned_index)
        self._lisa = lisa_index

    @property
    def lisa_index(self) -> LisaIndex:
        """The wrapped LISA structure."""
        return self._lisa

    @property
    def reference_length(self) -> int:
        return self._lisa.ipbwt.reference_length

    def locate(self, interval: Interval, limit: int | None = None) -> list[int]:
        if limit is not None and not interval.empty:
            interval = Interval(interval.low, min(interval.high, interval.low + limit))
        return self._lisa.ipbwt.locate(interval)

    def search_batch(
        self, queries: Sequence[str], stats: BatchStats | None = None
    ) -> list[Interval]:
        if not queries:
            return []
        self._validate(queries)
        k = self._lisa.k
        n = len(self._lisa.ipbwt)

        chunk_lists: list[list[str]] = []
        leftovers: list[str] = []
        for query in queries:
            leftover = len(query) % k
            leftovers.append(query[len(query) - leftover :] if leftover else "")
            body = query[: len(query) - leftover]
            chunk_lists.append([body[right - k : right] for right in range(len(body), 0, -k)])
        steps = [len(chunks) for chunks in chunk_lists]

        n_queries = len(queries)
        lows = [0] * n_queries
        highs = [n] * n_queries
        alive = [True] * n_queries
        if stats is not None:
            stats.queries += n_queries

        # Trailing partial chunks, coalesced by tail (LISA padding rule).
        # Each distinct tail costs two lower bounds, recorded with their
        # costs so the sharded merge re-accounts them without a replay.
        tail_cache: dict[str, tuple[int, int]] = {}
        for i, tail in enumerate(leftovers):
            if not tail:
                continue
            bounds = tail_cache.get(tail)
            if bounds is None:
                low, low_cost = self._lisa.lower_bound(
                    self._lisa.padded_chunk(tail, smallest=True), 0
                )
                high, high_cost = self._lisa.lower_bound(
                    self._lisa.padded_chunk(tail, smallest=False), n
                )
                bounds = (low, high)
                tail_cache[tail] = bounds
                if stats is not None:
                    if self._lisa.learned_index is None:
                        contribution = TailContribution(comparisons=low_cost + high_cost)
                    else:
                        contribution = TailContribution(
                            predictions=2, errors=(low_cost, high_cost)
                        )
                    stats.record_tail(tail, contribution)
            lows[i], highs[i] = bounds
            if stats is not None:
                stats.iterations += 1
            if lows[i] >= highs[i]:
                alive[i] = False

        max_steps = max(steps, default=0)
        for step_index in range(max_steps):
            issuers = [
                i
                for i in range(n_queries)
                if alive[i] and step_index < steps[i]
            ]
            if not issuers:
                break
            # Coalesce exactly as the other backends do: chunks are pure
            # DNA here (padded tails were handled above), so they pack
            # into the shared (kmer, pos) key space.
            packed = np.array(
                [pack_kmer(chunk_lists[i][step_index]) for i in issuers], dtype=np.int64
            )
            step = coalesce_requests(
                np.concatenate([packed, packed]),
                np.array([lows[i] for i in issuers] + [highs[i] for i in issuers]),
                span=n + 1,
            )
            bounds = np.empty(step.unique, dtype=np.int64)
            costs = np.empty(step.unique, dtype=np.int64)
            for slot, (kmer, pos) in enumerate(
                zip(step.kmers.tolist(), step.positions.tolist())
            ):
                bounds[slot], costs[slot] = self._lisa.lower_bound(
                    unpack_kmer(kmer, k), pos
                )
            bounds_all = step.scatter(bounds)
            if stats is not None:
                stats.iterations += len(issuers)
                if self._lisa.learned_index is None:
                    contribution = StepContribution(comparisons=costs)
                else:
                    contribution = StepContribution(
                        predicted=np.ones(step.unique, dtype=bool), errors=costs
                    )
                stats.record_step(step, contribution)
            for slot, i in enumerate(issuers):
                lows[i] = int(bounds_all[slot])
                highs[i] = int(bounds_all[slot + len(issuers)])
                if lows[i] >= highs[i]:
                    alive[i] = False

        return [Interval(low, high) for low, high in zip(lows, highs)]


@register_backend("lisa-learned")
def _lisa_learned(reference: str | None = None, k: int = 4, **kwargs) -> LisaBackend:
    """LISA backend with the recursive-model learned index enabled."""
    backend = LisaBackend(reference, k=k, use_learned_index=True, **kwargs)
    backend.name = "lisa-learned"
    return backend
