"""Sharded parallel execution of the batched query engine.

The lockstep core is embarrassingly parallel across *query* shards: a
query's ``(low, high)`` interval trajectory depends only on the query and
the index, never on which other queries share its batch.  This module
exploits that by splitting a batch into contiguous shards, running each
shard's lockstep search in a long-lived worker pool and merging the
per-shard results back into one :class:`~repro.engine.engine.BatchResult`
that is **byte-identical** to what the serial engine would have produced
— without ever re-running the search or its accounting:

* intervals are trivially order-preserving (contiguous split + ordered
  gather);
* the shard-decomposable counters (``queries``, ``iterations``,
  ``occ_requests_issued``) are plain sums;
* the coalescing-dependent state is rebuilt by **contribution dedupe**:
  while a shard runs, its :class:`~repro.engine.coalesce.BatchTrace`
  records each step's packed ``(kmer, pos)`` keys together with the
  per-unique-request accounting contributions (increment entries,
  predictions and errors, binary comparisons — values that depend only on
  the request and the index, never on the batch).  Lockstep step *t*
  consumes the same symbol/chunk of every query in every shard, so one
  vectorized ``np.unique`` over the shards' packed keys at step *t*
  recovers exactly the serial batch's unique set — and selecting each
  surviving key's contribution once re-creates the serial accounting.
  No ``replay_trace`` pass, no second trip through the index.

Execution is persistent: a :class:`BackendWorkerPool` owns one
thread/process pool for the lifetime of its engine (lazily created,
reusable across every ``search_batch`` call, closable as a context
manager).  The process pool ships the backend **once** per worker through
the pool initializer — submitted calls carry only their shard of queries,
not a fresh pickle of the index.

The equivalence is locked down by the property-based suite in
``tests/test_sharded.py`` (all six backends, any shard count, both
executors), mirroring how the SPEChpc strong-scaling studies validate
parallel results against the serial baseline.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Callable, Sequence, TypeVar

import numpy as np

from ..index.fmindex import Interval
from .backends import SearchBackend
from .coalesce import (
    BatchStats,
    BatchTrace,
    StepContribution,
    StepTrace,
    TailContribution,
)
from .engine import BatchResult, QueryEngine

__all__ = [
    "EXECUTORS",
    "EXECUTOR_ENV",
    "OVERSUBSCRIBE_ENV",
    "REPLAY_WORKERS_ENV",
    "SHARDS_ENV",
    "BackendWorkerPool",
    "ShardedQueryEngine",
    "available_parallelism",
    "default_executor",
    "default_replay_workers",
    "default_shards",
    "effective_shards",
    "merge_shard_stats",
    "merge_traces",
    "oversubscribed",
    "run_sharded",
    "run_sharded_batch",
    "split_shards",
]

T = TypeVar("T")
R = TypeVar("R")

#: Supported ``concurrent.futures`` executor kinds.
EXECUTORS = ("thread", "process")

#: Environment toggles: default shard count / executor used by every
#: :class:`QueryEngine` that does not pin its own.  CI runs the quick
#: suite with ``REPRO_DEFAULT_SHARDS=4`` (thread) and with
#: ``REPRO_DEFAULT_EXECUTOR=process REPRO_DEFAULT_SHARDS=2`` so both
#: persistent-pool paths are exercised by the whole existing test matrix,
#: not just the dedicated suite.
SHARDS_ENV = "REPRO_DEFAULT_SHARDS"
EXECUTOR_ENV = "REPRO_DEFAULT_EXECUTOR"

#: Default replay-worker count for the epoch-parallel accelerator replay
#: (:meth:`repro.accel.exma_accelerator.ExmaAccelerator.run_stream` and
#: the serving layer), mirroring ``REPRO_DEFAULT_SHARDS`` for the search
#: side.  Parsed by :func:`default_replay_workers` with the same
#: defensive warn-once fallback.
REPLAY_WORKERS_ENV = "REPRO_DEFAULT_REPLAY_WORKERS"

#: When set truthy, :func:`effective_shards` stops clamping shard counts
#: to the hardware — CI's sharded legs set it so the parallel path is
#: exercised even on single-core runners.
OVERSUBSCRIBE_ENV = "REPRO_SHARD_OVERSUBSCRIBE"


#: Environment values already warned about, so a malformed toggle nags
#: exactly once per process, not once per engine construction.  (A
#: long-lived serving process builds engines continuously; spamming one
#: warning per batch would drown the log.)
_WARNED_ENV_VALUES: set[tuple[str, str]] = set()


def _warn_env_once(variable: str, value: str, message: str) -> None:
    """Emit *message* as a RuntimeWarning once per (variable, value)."""
    key = (variable, value)
    if key not in _WARNED_ENV_VALUES:
        _WARNED_ENV_VALUES.add(key)
        warnings.warn(message, RuntimeWarning, stacklevel=3)


def default_shards() -> int:
    """Shard count engines use when not pinned (``REPRO_DEFAULT_SHARDS``).

    Parsed defensively: a malformed value (non-integer, zero or negative)
    must never crash engine construction deep inside a long-lived service
    — it warns once and falls back to serial instead.
    """
    raw = os.environ.get(SHARDS_ENV)
    if raw is None or not raw.strip():
        return 1
    try:
        shards = int(raw)
    except ValueError:
        _warn_env_once(
            SHARDS_ENV,
            raw,
            f"ignoring malformed {SHARDS_ENV}={raw!r} (expected a positive "
            "integer); running serial",
        )
        return 1
    if shards < 1:
        _warn_env_once(
            SHARDS_ENV,
            raw,
            f"ignoring non-positive {SHARDS_ENV}={raw!r}; running serial",
        )
        return 1
    return shards


def default_replay_workers() -> int:
    """Replay workers used when not pinned (``REPRO_DEFAULT_REPLAY_WORKERS``).

    The accelerator's :meth:`~repro.accel.exma_accelerator
    .ExmaAccelerator.run_stream` consults this when the caller does not
    pass ``replay_workers``.  Parsed exactly like :func:`default_shards`:
    a malformed or non-positive value warns once per process and falls
    back to serial replay instead of crashing a long-lived service.
    """
    raw = os.environ.get(REPLAY_WORKERS_ENV)
    if raw is None or not raw.strip():
        return 1
    try:
        workers = int(raw)
    except ValueError:
        _warn_env_once(
            REPLAY_WORKERS_ENV,
            raw,
            f"ignoring malformed {REPLAY_WORKERS_ENV}={raw!r} (expected a "
            "positive integer); replaying serial",
        )
        return 1
    if workers < 1:
        _warn_env_once(
            REPLAY_WORKERS_ENV,
            raw,
            f"ignoring non-positive {REPLAY_WORKERS_ENV}={raw!r}; replaying serial",
        )
        return 1
    return workers


def default_executor() -> str:
    """Executor engines use when not pinned (``REPRO_DEFAULT_EXECUTOR``).

    Unknown values are rejected here, with a once-per-process warning
    naming the valid choices, and fall back to ``"thread"`` — instead of
    silently misconfiguring the pool or failing later inside it.
    """
    raw = os.environ.get(EXECUTOR_ENV)
    if raw is None or not raw.strip():
        return "thread"
    executor = raw.strip().lower()
    if executor not in EXECUTORS:
        _warn_env_once(
            EXECUTOR_ENV,
            raw,
            f"ignoring unknown {EXECUTOR_ENV}={raw!r} (available: "
            f"{', '.join(EXECUTORS)}); using the thread executor",
        )
        return "thread"
    return executor


def available_parallelism() -> int:
    """CPUs actually available to this process (affinity/cgroup aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - platforms without affinity
        return max(1, os.cpu_count() or 1)


def oversubscribed() -> bool:
    """Whether ``REPRO_SHARD_OVERSUBSCRIBE`` disables the hardware clamp."""
    return os.environ.get(OVERSUBSCRIBE_ENV, "").lower() in ("1", "true", "yes", "on")


def effective_shards(shards: int) -> int:
    """Clamp a requested shard count to the available hardware.

    Splitting a batch beyond the CPUs that can actually run it buys no
    parallelism and pays the split/merge overhead anyway, so the adaptive
    engine path (:class:`~repro.engine.engine.QueryEngine`) treats
    ``shards`` as an *upper bound*: ``min(shards, CPUs)``, degenerating to
    the serial path on a single-core host.  Set
    ``REPRO_SHARD_OVERSUBSCRIBE=1`` to disable the clamp (CI does, so the
    parallel machinery is exercised regardless of runner size), or use
    :class:`ShardedQueryEngine`, which always runs the split it was asked
    for.
    """
    if shards <= 1 or oversubscribed():
        return shards
    return min(shards, available_parallelism())


def split_shards(items: Sequence[T], shards: int) -> list[list[T]]:
    """Split *items* into at most *shards* contiguous, balanced, non-empty
    chunks, preserving order.

    Contiguity matters beyond cache locality: it keeps the global
    first-seen order of partial-chunk tails reconstructible from the
    per-shard orders, which the exact stats merge relies on.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    count = min(shards, len(items))
    if count == 0:
        return []
    base, extra = divmod(len(items), count)
    chunks: list[list[T]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks


# --------------------------------------------------------------------- #
# Persistent worker pools
# --------------------------------------------------------------------- #

#: The backend installed in a process-pool worker by the pool initializer.
#: Shipping it once per worker (instead of pickling it into every
#: submitted call) is what makes process shards affordable on
#: multi-100 kbp references.
_WORKER_BACKEND: SearchBackend | None = None


def _init_worker(backend: SearchBackend) -> None:
    """Process-pool initializer: install the shared backend once."""
    global _WORKER_BACKEND
    _WORKER_BACKEND = backend


def _call_worker(fn: Callable, args: tuple, shard: list) -> object:
    """Run *fn* against the worker-resident backend (process executor)."""
    return fn(_WORKER_BACKEND, *args, shard)


#: Failures that indict the *pool*, not the submitted work: a broken
#: executor (e.g. a process worker died mid-call) or a gather timeout (a
#: worker wedged past the caller's deadline).  Exceptions raised *by* the
#: submitted function are never in this set — they propagate to the
#: caller untouched, because retrying them on a fresh pool would just
#: re-raise.
_POOL_FAILURES = (BrokenExecutor, FuturesTimeoutError, TimeoutError)


class BackendWorkerPool:
    """A long-lived shard worker pool bound to one backend.

    The pool is created lazily on the first multi-shard call and then
    reused for every subsequent batch — no per-batch executor spin-up.
    Thread workers share the backend in-process; process workers receive
    it exactly once via the pool initializer and keep it (including any
    lazily built caches, e.g. the EXMA augmented-increment array) for the
    pool's lifetime.  Usable as a context manager; ``shutdown`` is
    idempotent and a fresh pool is created transparently if the instance
    is used again afterwards.

    Args:
        backend: the backend every worker searches (picklable for the
            process executor — all registered backends are).
        executor: ``"thread"`` or ``"process"``.
        max_workers: pool size, normally the engine's shard count.
    """

    def __init__(
        self, backend: SearchBackend, executor: str = "thread", max_workers: int = 1
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; available: {', '.join(EXECUTORS)}"
            )
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._backend = backend
        self._kind = executor
        self._max_workers = int(max_workers)
        self._pool: Executor | None = None
        #: Degradation ladder state: one rebuild is allowed per pool
        #: lifetime; the second pool failure flips ``degraded`` and every
        #: later call runs inline (serial, in-process) with a warn-once.
        self._rebuilt = False
        self._degraded = False

    @property
    def backend(self) -> SearchBackend:
        """The backend the workers are bound to."""
        return self._backend

    @property
    def kind(self) -> str:
        """Executor kind (``"thread"`` or ``"process"``)."""
        return self._kind

    @property
    def max_workers(self) -> int:
        """Configured pool size."""
        return self._max_workers

    @property
    def active(self) -> bool:
        """Whether the underlying executor has been created (and not shut
        down)."""
        return self._pool is not None

    @property
    def rebuilt(self) -> bool:
        """Whether the pool has spent its one rebuild after a failure."""
        return self._rebuilt

    @property
    def degraded(self) -> bool:
        """Whether the pool has fallen back to serial in-process calls.

        Set after a *second* pool failure (broken executor or gather
        timeout): the pool was rebuilt once already, so further rebuilds
        are presumed futile and every subsequent :meth:`map_shards` /
        :meth:`run_one` runs inline.  Results are unchanged — serial and
        pooled execution are exact-equivalent by construction — only the
        parallelism is lost.
        """
        return self._degraded

    @classmethod
    def ensure(
        cls,
        current: "BackendWorkerPool | None",
        backend: SearchBackend,
        executor: str,
        max_workers: int,
    ) -> "BackendWorkerPool":
        """Reuse *current* when it matches the knobs, else replace it.

        The single implementation of the owner pattern every pool holder
        (engines, the read aligner) follows: keep one persistent pool
        across calls, transparently swapping it when the bound backend,
        the effective executor kind or the worker count changes (e.g.
        environment toggles).  The backend check matters most for the
        process executor, whose workers hold whatever backend their pool
        initializer installed.
        """
        if current is not None and (
            current.backend is not backend
            or current.kind != executor
            or current.max_workers != max_workers
        ):
            current.shutdown(wait=False)
            current = None
        if current is None:
            current = cls(backend, executor, max_workers=max_workers)
        return current

    def _ensure(self) -> Executor:
        if self._pool is None:
            if self._kind == "thread":
                self._pool = ThreadPoolExecutor(max_workers=self._max_workers)
            else:
                self._pool = ProcessPoolExecutor(
                    max_workers=self._max_workers,
                    initializer=_init_worker,
                    initargs=(self._backend,),
                )
        return self._pool

    def _submit_all(self, fn: Callable, items: Sequence, args: tuple) -> list:
        pool = self._ensure()
        if self._kind == "thread":
            return [pool.submit(fn, self._backend, *args, item) for item in items]
        return [pool.submit(_call_worker, fn, args, item) for item in items]

    def _note_pool_failure(self, error: BaseException) -> None:
        """Advance the degradation ladder after a pool-level failure.

        First failure: tear the executor down and spend the one rebuild
        (the next submit lazily recreates it).  Second failure, ever:
        flip to degraded — all later calls run serial in-process — and
        warn exactly once per pool.
        """
        self.shutdown(wait=False)
        if not self._rebuilt:
            self._rebuilt = True
            return
        if not self._degraded:
            self._degraded = True
            warnings.warn(
                f"{self._kind} worker pool failed twice "
                f"({type(error).__name__}: {error}); falling back to serial "
                f"in-process execution for the rest of this pool's lifetime",
                RuntimeWarning,
                stacklevel=3,
            )

    def map_shards(
        self, fn: Callable, shard_lists: Sequence[list], *args, timeout: float | None = None
    ) -> list:
        """Apply ``fn(backend, *args, shard)`` to every shard, in order.

        *fn* must be a module-level function (picklable by reference).
        Thread workers call it with the shared backend; process workers
        look the backend up in the worker global installed by the pool
        initializer, so only ``(fn, args, shard)`` crosses the pipe.  A
        single shard runs inline, skipping the pool entirely.

        Pool-level failures (a broken executor, a worker exceeding
        *timeout*) walk the degradation ladder — rebuild once, then fall
        back to serial in-process execution with a warn-once — so a dead
        worker pool degrades throughput instead of the result.
        Exceptions raised by *fn* itself always propagate unchanged.
        """
        if not shard_lists:
            return []
        if len(shard_lists) == 1 or self._degraded:
            return [fn(self._backend, *args, shard) for shard in shard_lists]
        for _ in range(2):
            if self._degraded:
                break
            try:
                futures = self._submit_all(fn, shard_lists, args)
                return [future.result(timeout) for future in futures]
            except _POOL_FAILURES as error:
                self._note_pool_failure(error)
        return [fn(self._backend, *args, shard) for shard in shard_lists]

    def run_one(self, fn: Callable, item, *args, timeout: float | None = None):
        """Run ``fn(backend, *args, item)`` on the pool and wait for it.

        The resilient single-item shape: like ``submit(...).result()``
        but with the same rebuild-once / serial-fallback ladder as
        :meth:`map_shards` (and an optional gather *timeout*), so a
        broken pool costs the caller parallelism, never the result.  In
        degraded mode the call simply runs inline.
        """
        if self._degraded:
            return fn(self._backend, *args, item)
        for _ in range(2):
            if self._degraded:
                break
            try:
                return self.submit(fn, item, *args).result(timeout)
            except _POOL_FAILURES as error:
                self._note_pool_failure(error)
        return fn(self._backend, *args, item)

    def submit(self, fn: Callable, item, *args):
        """Schedule ``fn(backend, *args, item)`` on the pool; returns a Future.

        Unlike :meth:`map_shards` this never runs inline: the single item
        always crosses to a pool worker.  That is what the serving layer's
        replay path wants — each batcher thread hands its flush to the
        replay pool and blocks on the future, so with the process executor
        the epoch replay escapes the submitting thread (and, for process
        pools, the GIL) entirely.
        """
        pool = self._ensure()
        if self._kind == "thread":
            return pool.submit(fn, self._backend, *args, item)
        return pool.submit(_call_worker, fn, args, item)

    def shutdown(self, wait: bool = True) -> None:
        """Shut the underlying executor down (no-op when never created)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def __enter__(self) -> "BackendWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.shutdown(wait=False)
        except Exception:
            pass


def _make_executor(executor: str, workers: int) -> Executor:
    if executor == "thread":
        return ThreadPoolExecutor(max_workers=workers)
    if executor == "process":
        return ProcessPoolExecutor(max_workers=workers)
    raise ValueError(f"unknown executor {executor!r}; available: {', '.join(EXECUTORS)}")


def run_sharded(
    worker: Callable[[list[T]], R],
    items: Sequence[T],
    shards: int,
    executor: str = "thread",
) -> list[R]:
    """Apply *worker* to contiguous shards of *items*, outputs in shard order.

    This is the ad-hoc one-shot path: it spins an executor per call and
    *worker* must be picklable for the ``process`` executor.  Work bound
    to a backend should go through a persistent :class:`BackendWorkerPool`
    instead, which reuses its pool across calls and never re-pickles the
    backend.  A single shard short-circuits the pool entirely.
    """
    shard_lists = split_shards(items, shards)
    if not shard_lists:
        return []
    if len(shard_lists) == 1:
        return [worker(shard_lists[0])]
    with _make_executor(executor, len(shard_lists)) as pool:
        futures = [pool.submit(worker, shard) for shard in shard_lists]
        return [future.result() for future in futures]


def _search_shard(backend: SearchBackend, queries: list[str]) -> tuple[list[Interval], BatchStats]:
    """One shard's lockstep search, with contribution tracing enabled."""
    stats = BatchStats(trace=BatchTrace())
    intervals = backend.search_batch(queries, stats)
    return intervals, stats


# --------------------------------------------------------------------- #
# Replay-free stats merge
# --------------------------------------------------------------------- #


def _merge_step(shard_steps: list[StepTrace]) -> StepTrace:
    """Union one lockstep step across shards, deduping contributions.

    One ``np.unique`` over the concatenated packed keys yields both the
    serial unique set (sorted, exactly the order the serial coalescer
    emits) and — through ``return_index`` — the first occurrence of every
    surviving key, which selects its contribution row.  Contribution
    values depend only on the ``(kmer, pos)`` pair, so *which* shard's row
    survives is irrelevant.
    """
    if len(shard_steps) == 1:
        return shard_steps[0]
    keys = np.concatenate([step.keys for step in shard_steps])
    unique_keys, first = np.unique(keys, return_index=True)
    contributions = [step.contribution for step in shard_steps]
    if all(contribution is None for contribution in contributions):
        return StepTrace(keys=unique_keys)
    columns: dict[str, np.ndarray | None] = {}
    for name in StepContribution._COLUMNS:
        cols = [
            None if contribution is None else getattr(contribution, name)
            for contribution in contributions
        ]
        present = [col for col in cols if col is not None]
        if not present:
            columns[name] = None
            continue
        parts = [
            col if col is not None else np.zeros(step.keys.size, dtype=present[0].dtype)
            for col, step in zip(cols, shard_steps)
        ]
        columns[name] = np.concatenate(parts)[first]
    return StepTrace(keys=unique_keys, contribution=StepContribution(**columns))


def merge_traces(traces: Sequence[BatchTrace]) -> BatchTrace:
    """Union per-shard traces step by step into the serial batch's trace.

    Step *t* of every shard corresponds to the same lockstep iteration of
    the unsplit batch, so the serial unique set at *t* is the union of the
    shard sets at *t*.  The traces already carry each step's packed
    ``kmer * span + pos`` keys exactly as the coalescer produced them, so
    the union is one concatenate + ``np.unique`` per step — nothing is
    re-packed and no span is needed here — and the same pass dedupes the
    accounting contributions.  Tails merge by first-seen order across the
    contiguous shards, which is exactly the whole batch's first-seen
    order, each keeping its recorded costs.  Only the final consumer
    (:func:`merge_shard_stats`) unpacks keys, with the backend's span.
    """
    merged = BatchTrace()
    depth = max((len(trace.steps) for trace in traces), default=0)
    for index in range(depth):
        merged.steps.append(
            _merge_step([trace.steps[index] for trace in traces if index < len(trace.steps)])
        )
    seen: dict[str, TailContribution] = {}
    for trace in traces:
        for tail, contribution in zip(trace.tails, trace.tail_contributions):
            if tail not in seen:
                seen[tail] = contribution
    merged.tails = list(seen)
    merged.tail_contributions = list(seen.values())
    return merged


def merge_shard_stats(backend: SearchBackend, shard_stats: Sequence[BatchStats]) -> BatchStats:
    """Merge per-shard stats into counters identical to a serial run's.

    Plain ``BatchStats.merge`` would double-count every request duplicated
    across shards (understating nothing but overstating unique counts,
    base reads and prediction work — the same counter family as the fig18
    base-count bug fixed in PR 1).  Instead the per-query counters are
    summed and everything coalescing-dependent is rebuilt from the merged
    trace: the unique request stream comes straight from the unioned
    packed keys (appended columnarly, no per-request objects), base reads
    from the distinct k-mers per step plus the recorded tail costs, and
    the remaining counters from the deduped per-request contributions.
    The backend is only consulted for its position span — **no search or
    replay runs here**.
    """
    merged = BatchStats()
    for stats in shard_stats:
        merged.queries += stats.queries
        merged.iterations += stats.iterations
        merged.occ_requests_issued += stats.occ_requests_issued
    traces = [stats.trace for stats in shard_stats if stats.trace is not None]
    span = backend.reference_length + 1
    trace = merge_traces(traces)
    # Tails are accounted first: the serial pass resolves every distinct
    # tail before entering the lockstep loop, so prediction errors keep
    # the serial append order.
    for contribution in trace.tail_contributions:
        merged.base_reads += contribution.base_reads
        merged.binary_comparisons += contribution.comparisons
        merged.index_predictions += contribution.predictions
        merged.prediction_errors.extend(contribution.errors)
    for step in trace.steps:
        kmers = step.keys // span
        merged.lockstep_iterations += 1
        merged.occ_requests_unique += int(step.keys.size)
        if kmers.size:
            merged.base_reads += int(np.count_nonzero(np.diff(kmers))) + 1
        merged.requests.append_step(step.keys, span)
        if step.contribution is not None:
            merged.apply_contribution(step.contribution)
    return merged


def run_sharded_batch(
    backend: SearchBackend,
    queries: Sequence[str],
    shards: int,
    executor: str = "thread",
    pool: BackendWorkerPool | None = None,
) -> BatchResult:
    """Search *queries* across shards; result identical to the serial path.

    With *pool* given (the engine-owned persistent pool) the call reuses
    it and leaves it running; otherwise a one-shot pool is created and
    shut down around the batch.
    """
    queries = list(queries)
    if shards <= 1 or len(queries) <= 1:
        stats = BatchStats()
        return BatchResult(intervals=backend.search_batch(queries, stats), stats=stats)
    shard_lists = split_shards(queries, shards)
    owned = pool is None
    if pool is None:
        pool = BackendWorkerPool(backend, executor, max_workers=len(shard_lists))
    try:
        outputs = pool.map_shards(_search_shard, shard_lists)
    finally:
        if owned:
            pool.shutdown()
    intervals = [interval for shard_intervals, _ in outputs for interval in shard_intervals]
    stats = merge_shard_stats(backend, [shard_stats for _, shard_stats in outputs])
    return BatchResult(intervals=intervals, stats=stats)


class ShardedQueryEngine(QueryEngine):
    """A :class:`QueryEngine` that always runs the sharded parallel path.

    Unlike the adaptive base class, this engine never clamps its shard
    count to the hardware — it runs exactly the split it was configured
    with, which is what the equivalence suite and the forced rows of the
    shard-scaling benchmark rely on.

    Construction mirrors :class:`QueryEngine` (prebuilt backend, or
    registry name + reference) plus the parallelism knobs.  Every batch
    API (``search_batch``, ``find_batch``, ``count_batch``,
    ``request_stream`` and the single-query wrappers) returns exactly what
    the serial engine would.  The engine owns a persistent
    :class:`BackendWorkerPool` (created lazily on the first multi-shard
    batch, reused across calls); use the engine as a context manager or
    call :meth:`~repro.engine.engine.QueryEngine.close` to release it.

    Args:
        backend: a prebuilt backend, or ``None`` to build one by name.
        shards: number of query shards (defaults to the
            ``REPRO_DEFAULT_SHARDS`` environment toggle).
        executor: ``"thread"`` or ``"process"`` (defaults to the
            ``REPRO_DEFAULT_EXECUTOR`` environment toggle).  The process
            executor requires a picklable backend — all registered
            backends are — and ships it to the workers once, at pool
            creation.
        name: registry name used when *backend* is omitted.
        reference: reference string used when *backend* is omitted.
        **kwargs: forwarded to the backend factory.
    """

    _adaptive = False

    def __init__(
        self,
        backend: SearchBackend | None = None,
        *,
        shards: int | None = None,
        executor: str | None = None,
        name: str | None = None,
        reference: str | None = None,
        **kwargs,
    ) -> None:
        shards = default_shards() if shards is None else int(shards)
        if shards < 1:
            raise ValueError("shards must be >= 1")
        executor = default_executor() if executor is None else executor
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; available: {', '.join(EXECUTORS)}"
            )
        super().__init__(
            backend,
            name=name,
            reference=reference,
            shards=shards,
            executor=executor,
            **kwargs,
        )

    def search_batch_per_shard(self, queries: Sequence[str]) -> list[BatchResult]:
        """The per-shard results before merging (introspection/debugging)."""
        shard_lists = split_shards(list(queries), self.shards)
        outputs = self._ensure_pool(self.shards, self.executor).map_shards(
            _search_shard, shard_lists
        )
        return [
            BatchResult(intervals=intervals, stats=stats) for intervals, stats in outputs
        ]
