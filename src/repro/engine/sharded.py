"""Sharded parallel execution of the batched query engine.

The lockstep core is embarrassingly parallel across *query* shards: a
query's ``(low, high)`` interval trajectory depends only on the query and
the index, never on which other queries share its batch.  This module
exploits that by splitting a batch into contiguous shards, running each
shard's lockstep search in a :mod:`concurrent.futures` pool (threads, or
processes with picklable backend handles) and merging the per-shard
results back into one :class:`~repro.engine.engine.BatchResult` that is
**byte-identical** to what the serial engine would have produced:

* intervals are trivially order-preserving (contiguous split + ordered
  gather);
* the shard-decomposable counters (``queries``, ``iterations``,
  ``occ_requests_issued``) are plain sums;
* the coalescing-dependent state (unique request counts, the request
  stream, base/increment-read accounting, prediction errors) is rebuilt
  from the shards' step-aligned :class:`~repro.engine.coalesce.BatchTrace`
  records: lockstep step *t* consumes the same symbol/chunk of every
  query in every shard, so the union of the shards' unique request sets
  at step *t* is exactly the serial batch's unique set at step *t*, and
  :meth:`~repro.engine.backends.SearchBackend.replay_trace` re-runs the
  serial accounting over those merged sets.

The equivalence is locked down by the property-based suite in
``tests/test_sharded.py`` (all six backends, any shard count, both
executors), mirroring how the SPEChpc strong-scaling studies validate
parallel results against the serial baseline.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial
from typing import Callable, Sequence, TypeVar

import numpy as np

from ..exma.search import OccRequest
from ..index.fmindex import Interval
from .backends import SearchBackend
from .coalesce import BatchStats, BatchTrace
from .engine import BatchResult, QueryEngine

__all__ = [
    "EXECUTORS",
    "EXECUTOR_ENV",
    "SHARDS_ENV",
    "ShardedQueryEngine",
    "default_executor",
    "default_shards",
    "merge_shard_stats",
    "merge_traces",
    "run_sharded",
    "run_sharded_batch",
    "split_shards",
]

T = TypeVar("T")
R = TypeVar("R")

#: Supported ``concurrent.futures`` executor kinds.
EXECUTORS = ("thread", "process")

#: Environment toggles: default shard count / executor used by every
#: :class:`QueryEngine` that does not pin its own.  CI runs the quick
#: suite with ``REPRO_DEFAULT_SHARDS=4`` so the parallel path is exercised
#: by the whole existing test matrix, not just the dedicated suite.
SHARDS_ENV = "REPRO_DEFAULT_SHARDS"
EXECUTOR_ENV = "REPRO_DEFAULT_EXECUTOR"


def default_shards() -> int:
    """Shard count engines use when not pinned (``REPRO_DEFAULT_SHARDS``)."""
    try:
        return max(1, int(os.environ.get(SHARDS_ENV, "1")))
    except ValueError:
        return 1


def default_executor() -> str:
    """Executor engines use when not pinned (``REPRO_DEFAULT_EXECUTOR``)."""
    executor = os.environ.get(EXECUTOR_ENV, "thread")
    return executor if executor in EXECUTORS else "thread"


def split_shards(items: Sequence[T], shards: int) -> list[list[T]]:
    """Split *items* into at most *shards* contiguous, balanced, non-empty
    chunks, preserving order.

    Contiguity matters beyond cache locality: it keeps the global
    first-seen order of partial-chunk tails reconstructible from the
    per-shard orders, which the exact stats merge relies on.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    count = min(shards, len(items))
    if count == 0:
        return []
    base, extra = divmod(len(items), count)
    chunks: list[list[T]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks


def _make_executor(executor: str, workers: int) -> Executor:
    if executor == "thread":
        return ThreadPoolExecutor(max_workers=workers)
    if executor == "process":
        return ProcessPoolExecutor(max_workers=workers)
    raise ValueError(f"unknown executor {executor!r}; available: {', '.join(EXECUTORS)}")


def run_sharded(
    worker: Callable[[list[T]], R],
    items: Sequence[T],
    shards: int,
    executor: str = "thread",
) -> list[R]:
    """Apply *worker* to contiguous shards of *items*, outputs in shard order.

    *worker* receives one shard (a list slice) and must be picklable for
    the ``process`` executor — a module-level function or a
    :func:`functools.partial` over one.  A single shard short-circuits the
    pool entirely.
    """
    shard_lists = split_shards(items, shards)
    if not shard_lists:
        return []
    if len(shard_lists) == 1:
        return [worker(shard_lists[0])]
    with _make_executor(executor, len(shard_lists)) as pool:
        futures = [pool.submit(worker, shard) for shard in shard_lists]
        return [future.result() for future in futures]


def _search_shard(backend: SearchBackend, queries: list[str]) -> tuple[list[Interval], BatchStats]:
    """One shard's lockstep search, with step tracing enabled for the merge."""
    stats = BatchStats(trace=BatchTrace())
    intervals = backend.search_batch(queries, stats)
    return intervals, stats


def merge_traces(traces: Sequence[BatchTrace], span: int) -> BatchTrace:
    """Union per-shard traces step by step into the serial batch's trace.

    Step *t* of every shard corresponds to the same lockstep iteration of
    the unsplit batch, so the serial unique set at *t* is the union of the
    shard sets at *t* (packed into ``kmer * span + pos`` keys and deduped,
    which also restores the per-step sorted order the serial coalescer
    emits).  Tails merge by first-seen order across the contiguous shards,
    which is exactly the whole batch's first-seen order.
    """
    merged = BatchTrace()
    depth = max((len(trace.steps) for trace in traces), default=0)
    for index in range(depth):
        keys = np.unique(
            np.concatenate(
                [
                    trace.steps[index][0] * span + trace.steps[index][1]
                    for trace in traces
                    if index < len(trace.steps)
                ]
            )
        )
        merged.steps.append((keys // span, keys % span))
    merged.tails = list(dict.fromkeys(tail for trace in traces for tail in trace.tails))
    return merged


def merge_shard_stats(backend: SearchBackend, shard_stats: Sequence[BatchStats]) -> BatchStats:
    """Merge per-shard stats into counters identical to a serial run's.

    Plain ``BatchStats.merge`` would double-count every request duplicated
    across shards (understating nothing but overstating unique counts,
    base reads and prediction work — the same counter family as the fig18
    base-count bug fixed in PR 1).  Instead the per-query counters are
    summed, the merged step trace rebuilds the unique-request stream, and
    the backend replays the trace to redo the resolution accounting
    exactly once per serial-unique request.
    """
    merged = BatchStats()
    for stats in shard_stats:
        merged.queries += stats.queries
        merged.iterations += stats.iterations
        merged.occ_requests_issued += stats.occ_requests_issued
    traces = [stats.trace for stats in shard_stats if stats.trace is not None]
    trace = merge_traces(traces, span=backend.reference_length + 1)
    for kmers, positions in trace.steps:
        merged.lockstep_iterations += 1
        merged.occ_requests_unique += int(kmers.size)
        merged.requests.extend(
            OccRequest(packed_kmer=int(kmer), pos=int(pos))
            for kmer, pos in zip(kmers.tolist(), positions.tolist())
        )
    backend.replay_trace(trace, merged)
    return merged


def run_sharded_batch(
    backend: SearchBackend,
    queries: Sequence[str],
    shards: int,
    executor: str = "thread",
) -> BatchResult:
    """Search *queries* across shards; result identical to the serial path."""
    queries = list(queries)
    if shards <= 1 or len(queries) <= 1:
        stats = BatchStats()
        return BatchResult(intervals=backend.search_batch(queries, stats), stats=stats)
    outputs = run_sharded(partial(_search_shard, backend), queries, shards, executor)
    intervals = [interval for shard_intervals, _ in outputs for interval in shard_intervals]
    stats = merge_shard_stats(backend, [shard_stats for _, shard_stats in outputs])
    return BatchResult(intervals=intervals, stats=stats)


class ShardedQueryEngine(QueryEngine):
    """A :class:`QueryEngine` that always runs the sharded parallel path.

    Construction mirrors :class:`QueryEngine` (prebuilt backend, or
    registry name + reference) plus the parallelism knobs.  Every batch
    API (``search_batch``, ``find_batch``, ``count_batch``,
    ``request_stream`` and the single-query wrappers) returns exactly what
    the serial engine would.

    Args:
        backend: a prebuilt backend, or ``None`` to build one by name.
        shards: number of query shards (defaults to the
            ``REPRO_DEFAULT_SHARDS`` environment toggle).
        executor: ``"thread"`` or ``"process"`` (defaults to the
            ``REPRO_DEFAULT_EXECUTOR`` environment toggle).  The process
            executor requires a picklable backend — all registered
            backends are.
        name: registry name used when *backend* is omitted.
        reference: reference string used when *backend* is omitted.
        **kwargs: forwarded to the backend factory.
    """

    def __init__(
        self,
        backend: SearchBackend | None = None,
        *,
        shards: int | None = None,
        executor: str | None = None,
        name: str | None = None,
        reference: str | None = None,
        **kwargs,
    ) -> None:
        shards = default_shards() if shards is None else int(shards)
        if shards < 1:
            raise ValueError("shards must be >= 1")
        executor = default_executor() if executor is None else executor
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; available: {', '.join(EXECUTORS)}"
            )
        super().__init__(
            backend,
            name=name,
            reference=reference,
            shards=shards,
            executor=executor,
            **kwargs,
        )

    def search_batch_per_shard(self, queries: Sequence[str]) -> list[BatchResult]:
        """The per-shard results before merging (introspection/debugging)."""
        outputs = run_sharded(
            partial(_search_shard, self.backend),
            list(queries),
            self.shards,
            self.executor,
        )
        return [
            BatchResult(intervals=intervals, stats=stats) for intervals, stats in outputs
        ]
