"""Request coalescing for batched backward search.

Each lockstep iteration of a batched search issues two Occ requests per
live query — ``(kmer, low)`` and ``(kmer, high)``.  Across a batch many of
those pairs repeat: queries share k-mers (the k-mer working set is tiny
compared to the batch) and queries tracking the same match share interval
bounds.  The paper's accelerator merges duplicate requests on the DRAM
side (Fig. 14/15) so each unique ``(kmer, pos)`` pair is resolved exactly
once per scheduling window; :func:`coalesce_requests` is the software
mirror of that merge, and :class:`BatchStats` records how much traffic it
removed so the ``hw/`` cost model can replay the post-merge stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exma.search import ExmaSearchStats, OccRequest

__all__ = ["BatchStats", "BatchTrace", "CoalescedStep", "coalesce_requests"]


@dataclass(frozen=True)
class CoalescedStep:
    """The unique Occ requests of one lockstep iteration.

    ``kmers``/``positions`` hold each unique ``(kmer, pos)`` pair once,
    sorted by ``(kmer, pos)`` — the k-mer-major order the accelerator's
    stage-1 scheduler wants.  ``inverse`` maps every originally issued
    request slot back to its unique pair, so results computed once per
    unique pair scatter back to all issuers.
    """

    kmers: np.ndarray
    positions: np.ndarray
    inverse: np.ndarray
    issued: int

    @property
    def unique(self) -> int:
        """Number of unique (kmer, pos) pairs."""
        return int(self.kmers.size)

    @property
    def merged(self) -> int:
        """Requests eliminated by coalescing in this step."""
        return self.issued - self.unique

    def scatter(self, unique_values: np.ndarray) -> np.ndarray:
        """Broadcast per-unique-pair results back to every issued request."""
        return unique_values[self.inverse]


def coalesce_requests(kmers: np.ndarray, positions: np.ndarray, span: int) -> CoalescedStep:
    """Merge duplicate ``(kmer, pos)`` requests of one lockstep iteration.

    Args:
        kmers: packed k-mer code per issued request.
        positions: Occ position per issued request, each in ``[0, span)``.
        span: exclusive upper bound on positions (reference length + 1),
            used to pack each pair into one sortable integer key.
    """
    kmers = np.asarray(kmers, dtype=np.int64)
    positions = np.asarray(positions, dtype=np.int64)
    if kmers.shape != positions.shape:
        raise ValueError("kmers and positions must have identical shapes")
    keys = kmers * span + positions
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    return CoalescedStep(
        kmers=unique_keys // span,
        positions=unique_keys % span,
        inverse=inverse,
        issued=int(keys.size),
    )


@dataclass
class BatchTrace:
    """Step-aligned record of the unique requests of one batched search.

    Lockstep step indices are batch-invariant (step *t* consumes the same
    symbol/chunk of every query regardless of which other queries share
    the batch), so per-shard traces of a split batch can be unioned step
    by step to recover exactly the unique request sets the *whole* batch
    would have produced serially.  ``steps`` holds one ``(kmers,
    positions)`` pair of arrays per lockstep iteration; ``tails`` the
    distinct partial-chunk strings resolved before the lockstep loop, in
    first-seen order.  :meth:`repro.engine.backends.SearchBackend
    .replay_trace` turns a merged trace back into serial-exact counters.
    """

    steps: list[tuple[np.ndarray, np.ndarray]] = field(default_factory=list)
    tails: list[str] = field(default_factory=list)


@dataclass
class BatchStats:
    """Counters accumulated while searching one batch of queries.

    The counters mirror :class:`repro.exma.search.ExmaSearchStats` (so the
    existing hardware model and experiment harnesses can consume them)
    plus the batching-specific quantities: lockstep iterations executed,
    requests issued before coalescing, and requests surviving it.
    ``requests`` holds the *coalesced* stream, in schedule order — the
    input :meth:`repro.accel.exma_accelerator.ExmaAccelerator.run` replays.
    """

    queries: int = 0
    lockstep_iterations: int = 0
    iterations: int = 0
    occ_requests_issued: int = 0
    occ_requests_unique: int = 0
    base_reads: int = 0
    increment_entries_read: int = 0
    index_predictions: int = 0
    binary_comparisons: int = 0
    prediction_errors: list[int] = field(default_factory=list)
    requests: list[OccRequest] = field(default_factory=list)
    #: When set, backends record the per-step unique request arrays and
    #: distinct tails here, so a sharded run can be merged back into
    #: serial-exact counters (see :mod:`repro.engine.sharded`).
    trace: "BatchTrace | None" = None

    @property
    def requests_merged(self) -> int:
        """Duplicate requests removed by coalescing across the batch."""
        return self.occ_requests_issued - self.occ_requests_unique

    @property
    def coalescing_factor(self) -> float:
        """Issued-to-unique request ratio (1.0 means nothing merged)."""
        if self.occ_requests_unique == 0:
            return 1.0
        return self.occ_requests_issued / self.occ_requests_unique

    @property
    def mean_error(self) -> float:
        """Mean prediction error across learned-index lookups."""
        if not self.prediction_errors:
            return 0.0
        return sum(self.prediction_errors) / len(self.prediction_errors)

    def record_step(self, step: CoalescedStep) -> None:
        """Account one coalesced lockstep iteration."""
        self.lockstep_iterations += 1
        self.occ_requests_issued += step.issued
        self.occ_requests_unique += step.unique
        self.requests.extend(
            OccRequest(packed_kmer=int(kmer), pos=int(pos))
            for kmer, pos in zip(step.kmers.tolist(), step.positions.tolist())
        )
        if self.trace is not None:
            self.trace.steps.append((step.kmers, step.positions))

    def record_tail(self, tail: str) -> None:
        """Trace one *distinct* partial-chunk tail resolved pre-lockstep.

        Backends call this once per cache-missing tail (the same point
        where they account its resolution cost), so the trace carries the
        shard-distinct tail set needed for an exact cross-shard merge.
        """
        if self.trace is not None:
            self.trace.tails.append(tail)

    def merge(self, other: "BatchStats") -> None:
        """Accumulate another batch's counters into this one.

        This is the *consecutive batches* merge — counters add up because
        the batches were searched independently.  It is NOT the right way
        to combine the per-shard stats of one split batch: duplicate
        requests across shards would double-count the coalescing-dependent
        counters; :func:`repro.engine.sharded.merge_shard_stats` performs
        that merge exactly via the step traces.
        """
        self.queries += other.queries
        self.lockstep_iterations += other.lockstep_iterations
        self.iterations += other.iterations
        self.occ_requests_issued += other.occ_requests_issued
        self.occ_requests_unique += other.occ_requests_unique
        self.base_reads += other.base_reads
        self.increment_entries_read += other.increment_entries_read
        self.index_predictions += other.index_predictions
        self.binary_comparisons += other.binary_comparisons
        self.prediction_errors.extend(other.prediction_errors)
        self.requests.extend(other.requests)

    def to_search_stats(self) -> ExmaSearchStats:
        """Convert to the legacy per-query stats record.

        Lets everything written against :class:`ExmaSearchStats` (the
        accelerator model, the figure harnesses) consume a batched run
        unchanged.
        """
        return ExmaSearchStats(
            iterations=self.iterations,
            occ_lookups=self.occ_requests_unique,
            base_reads=self.base_reads,
            increment_entries_read=self.increment_entries_read,
            index_predictions=self.index_predictions,
            prediction_errors=list(self.prediction_errors),
            requests=list(self.requests),
        )
