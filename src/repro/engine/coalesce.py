"""Request coalescing for batched backward search.

Each lockstep iteration of a batched search issues two Occ requests per
live query — ``(kmer, low)`` and ``(kmer, high)``.  Across a batch many of
those pairs repeat: queries share k-mers (the k-mer working set is tiny
compared to the batch) and queries tracking the same match share interval
bounds.  The paper's accelerator merges duplicate requests on the DRAM
side (Fig. 14/15) so each unique ``(kmer, pos)`` pair is resolved exactly
once per scheduling window; :func:`coalesce_requests` is the software
mirror of that merge, and :class:`BatchStats` records how much traffic it
removed so the ``hw/`` cost model can replay the post-merge stream.

The post-merge stream itself is **columnar**: :class:`RequestStream` keeps
the per-step unique ``(kmer, pos)`` pairs as packed int64 arrays, and the
accelerator's columnar replay (:meth:`repro.accel.exma_accelerator
.ExmaAccelerator.run`) consumes those arrays directly — neither the hot
recording loop nor the replay ever leaves NumPy.
:class:`~repro.exma.search.OccRequest` objects materialise only when a
legacy consumer (``to_search_stats``, the object-path reference replay,
tests) iterates the stream.

For sharded runs, backends additionally record each step's per-unique-
request accounting *contributions* (:class:`StepContribution`: increment
entries, predictions and their errors, binary comparisons) keyed by the
step's packed keys.  Those contributions are what lets
:func:`repro.engine.sharded.merge_shard_stats` rebuild serial-exact
counters by pure array dedupe — no replay pass over the index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..exma.search import ExmaSearchStats, OccRequest

__all__ = [
    "BatchStats",
    "BatchTrace",
    "CoalescedStep",
    "RequestStream",
    "StepContribution",
    "StepTrace",
    "TailContribution",
    "coalesce_requests",
    "pack_requests",
]


def pack_requests(requests: Sequence[OccRequest]) -> tuple[np.ndarray, int]:
    """Pack request objects into one ``kmer * span + pos`` int64 key array.

    The single definition of the packing scheme shared by every consumer
    that turns an object sequence into columns (:meth:`RequestStream
    .extend`, the window buffer, :meth:`~repro.engine.window.WindowedBatch
    .from_requests`): *span* is the exclusive position bound
    ``max(pos) + 1`` (1 for an empty sequence), so ascending key order is
    the lexicographic ``(kmer, pos)`` order.
    """
    if not requests:
        return np.empty(0, dtype=np.int64), 1
    kmers = np.array([request.packed_kmer for request in requests], dtype=np.int64)
    positions = np.array([request.pos for request in requests], dtype=np.int64)
    span = int(positions.max()) + 1
    return kmers * span + positions, span


@dataclass(frozen=True)
class CoalescedStep:
    """The unique Occ requests of one lockstep iteration.

    ``kmers``/``positions`` hold each unique ``(kmer, pos)`` pair once,
    sorted by ``(kmer, pos)`` — the k-mer-major order the accelerator's
    stage-1 scheduler wants.  ``inverse`` maps every originally issued
    request slot back to its unique pair, so results computed once per
    unique pair scatter back to all issuers.  ``keys`` carries the packed
    ``kmer * span + pos`` form of the same pairs (sorted ascending), which
    sharded traces store verbatim so the cross-shard union never has to
    re-pack anything.
    """

    kmers: np.ndarray
    positions: np.ndarray
    inverse: np.ndarray
    issued: int
    keys: np.ndarray
    span: int

    @property
    def unique(self) -> int:
        """Number of unique (kmer, pos) pairs."""
        return int(self.kmers.size)

    @property
    def unique_kmers(self) -> int:
        """Number of distinct k-mers among the unique pairs.

        ``kmers`` is k-mer-major sorted, so distinct values are counted
        from the boundaries without another ``np.unique`` sort.
        """
        if self.kmers.size == 0:
            return 0
        return int(np.count_nonzero(np.diff(self.kmers))) + 1

    @property
    def merged(self) -> int:
        """Requests eliminated by coalescing in this step."""
        return self.issued - self.unique

    def scatter(self, unique_values: np.ndarray) -> np.ndarray:
        """Broadcast per-unique-pair results back to every issued request."""
        return unique_values[self.inverse]


def coalesce_requests(kmers: np.ndarray, positions: np.ndarray, span: int) -> CoalescedStep:
    """Merge duplicate ``(kmer, pos)`` requests of one lockstep iteration.

    Args:
        kmers: packed k-mer code per issued request.
        positions: Occ position per issued request, each in ``[0, span)``.
        span: exclusive upper bound on positions (reference length + 1),
            used to pack each pair into one sortable integer key.
    """
    kmers = np.asarray(kmers, dtype=np.int64)
    positions = np.asarray(positions, dtype=np.int64)
    if kmers.shape != positions.shape:
        raise ValueError("kmers and positions must have identical shapes")
    keys = kmers * span + positions
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    return CoalescedStep(
        kmers=unique_keys // span,
        positions=unique_keys % span,
        inverse=inverse,
        issued=int(keys.size),
        keys=unique_keys,
        span=span,
    )


class RequestStream(Sequence):
    """Columnar post-coalescing request stream with a lazy object view.

    One chunk of packed ``kmer * span + pos`` int64 keys per lockstep
    step, in schedule order — the exact array the coalescer produced, so
    appending a step is O(1) and a traced sharded run ships each step's
    keys over the process-pool pipe **once** (the trace references the
    same array objects; pickle memoises them).  ``kmers``/``positions``
    decompose the keys on demand (cached), and
    :class:`~repro.exma.search.OccRequest` objects are built only when
    something indexes or iterates the stream, cached until it grows.
    """

    __slots__ = ("_key_chunks", "_spans", "_size", "_columns", "_view")

    def __init__(self) -> None:
        self._key_chunks: list[np.ndarray] = []
        self._spans: list[int] = []
        self._size = 0
        self._columns: tuple[np.ndarray, np.ndarray] | None = None
        self._view: list[OccRequest] | None = None

    def append_step(self, keys: np.ndarray, span: int) -> None:
        """Append one step's packed unique keys (stored by reference)."""
        self._key_chunks.append(keys)
        self._spans.append(int(span))
        self._size += int(keys.size)
        self._columns = None
        self._view = None

    def extend(self, other: "RequestStream" | Iterable[OccRequest]) -> None:
        """Concatenate another stream (O(chunks)) or any request iterable."""
        if isinstance(other, RequestStream):
            self._key_chunks.extend(other._key_chunks)
            self._spans.extend(other._spans)
            self._size += other._size
            self._columns = None
            self._view = None
            return
        requests = list(other)
        if requests:
            self.append_step(*pack_requests(requests))

    def chunks(self) -> list[tuple[np.ndarray, int]]:
        """The per-step ``(packed keys, span)`` pairs, arrays by reference.

        The key arrays are never mutated in place after being appended, so
        handing them out by reference is also a snapshot: a consumer — the
        :class:`~repro.engine.window.CoalescingWindow` buffer — can hold
        the chunk list while the producing stats object keeps growing.
        """
        return list(zip(self._key_chunks, self._spans))

    def snapshot(self) -> "RequestStream":
        """A copy decoupled from future growth of this stream.

        The per-step key arrays are shared (the engine never mutates them
        in place); only the chunk bookkeeping is copied, so a consumer —
        e.g. :meth:`repro.engine.window.CoalescingWindow.push` — can hold
        the stream while the producing ``BatchStats`` keeps accumulating.
        """
        copy = RequestStream()
        copy._key_chunks = list(self._key_chunks)
        copy._spans = list(self._spans)
        copy._size = self._size
        return copy

    def _decomposed(self) -> tuple[np.ndarray, np.ndarray]:
        if self._columns is None:
            if not self._key_chunks:
                empty = np.empty(0, dtype=np.int64)
                self._columns = (empty, empty)
            else:
                kmers = np.concatenate(
                    [keys // span for keys, span in zip(self._key_chunks, self._spans)]
                )
                positions = np.concatenate(
                    [keys % span for keys, span in zip(self._key_chunks, self._spans)]
                )
                self._columns = (kmers, positions)
        return self._columns

    @property
    def kmers(self) -> np.ndarray:
        """All k-mer codes, concatenated in schedule order."""
        return self._decomposed()[0]

    @property
    def positions(self) -> np.ndarray:
        """All Occ positions, concatenated in schedule order."""
        return self._decomposed()[1]

    def materialize(self) -> list[OccRequest]:
        """The stream as :class:`OccRequest` objects (cached until it grows)."""
        if self._view is None:
            kmers, positions = self._decomposed()
            self._view = [
                OccRequest(packed_kmer=kmer, pos=pos)
                for kmer, pos in zip(kmers.tolist(), positions.tolist())
            ]
        return self._view

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[OccRequest]:
        return iter(self.materialize())

    def __getitem__(self, index):
        return self.materialize()[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RequestStream):
            return (
                self._size == other._size
                and np.array_equal(self.kmers, other.kmers)
                and np.array_equal(self.positions, other.positions)
            )
        if isinstance(other, (list, tuple)):
            return self.materialize() == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RequestStream({self._size} requests, {len(self._key_chunks)} steps)"


@dataclass(frozen=True)
class StepContribution:
    """Per-unique-request accounting of one coalesced step.

    Each array is aligned with the step's unique requests (sorted
    ``(kmer, pos)`` order); ``None`` means the backend contributes nothing
    to that counter family.  The values depend only on the ``(kmer, pos)``
    pair and the index structure — never on which batch or shard issued
    the request — which is what makes cross-shard dedupe by packed key
    exact:

    * ``entries`` — increment entries read resolving the request;
    * ``predicted`` — mask of requests answered through a learned index
      (each contributes one ``index_predictions``);
    * ``errors`` — prediction error per request (consumed where
      ``predicted`` is set, in key order — the serial append order);
    * ``comparisons`` — binary-search comparisons per request.
    """

    entries: np.ndarray | None = None
    predicted: np.ndarray | None = None
    errors: np.ndarray | None = None
    comparisons: np.ndarray | None = None

    _COLUMNS = ("entries", "predicted", "errors", "comparisons")


@dataclass(frozen=True)
class TailContribution:
    """Accounting owed by one *distinct* partial-chunk tail.

    Tails are resolved once per distinct string before the lockstep loop;
    like step contributions, the costs depend only on the tail and the
    index, so the cross-shard merge keeps the first-seen occurrence and
    drops duplicates.
    """

    base_reads: int = 0
    comparisons: int = 0
    predictions: int = 0
    errors: tuple[int, ...] = ()


@dataclass(frozen=True)
class StepTrace:
    """One lockstep step of a shard trace: packed keys + contributions."""

    keys: np.ndarray
    contribution: StepContribution | None = None


@dataclass
class BatchTrace:
    """Step-aligned record of the unique requests of one batched search.

    Lockstep step indices are batch-invariant (step *t* consumes the same
    symbol/chunk of every query regardless of which other queries share
    the batch), so per-shard traces of a split batch can be unioned step
    by step to recover exactly the unique request sets the *whole* batch
    would have produced serially.  ``steps`` holds one :class:`StepTrace`
    per lockstep iteration — the packed ``kmer * span + pos`` keys exactly
    as the coalescer emitted them, plus the per-request accounting
    contributions; ``tails`` the distinct partial-chunk strings resolved
    before the lockstep loop, in first-seen order, with their costs in the
    aligned ``tail_contributions``.  :func:`repro.engine.sharded
    .merge_shard_stats` turns merged traces back into serial-exact
    counters by pure array dedupe.

    Merge contract (all current backends satisfy it): every step charges
    **one base read per distinct k-mer** in its unique request set, plus
    whatever the contributions say; a backend with a different base-read
    rule must extend :class:`StepContribution` rather than bend this one.
    """

    steps: list[StepTrace] = field(default_factory=list)
    tails: list[str] = field(default_factory=list)
    tail_contributions: list[TailContribution] = field(default_factory=list)


@dataclass
class BatchStats:
    """Counters accumulated while searching one batch of queries.

    The counters mirror :class:`repro.exma.search.ExmaSearchStats` (so the
    existing hardware model and experiment harnesses can consume them)
    plus the batching-specific quantities: lockstep iterations executed,
    requests issued before coalescing, and requests surviving it.
    ``requests`` holds the *coalesced* stream, in schedule order — the
    input :meth:`repro.accel.exma_accelerator.ExmaAccelerator.run` replays
    — as a columnar :class:`RequestStream`.
    """

    queries: int = 0
    lockstep_iterations: int = 0
    iterations: int = 0
    occ_requests_issued: int = 0
    occ_requests_unique: int = 0
    base_reads: int = 0
    increment_entries_read: int = 0
    index_predictions: int = 0
    binary_comparisons: int = 0
    prediction_errors: list[int] = field(default_factory=list)
    requests: RequestStream = field(default_factory=RequestStream)
    #: When set, backends record each step's packed keys and accounting
    #: contributions here, so a sharded run can be merged back into
    #: serial-exact counters (see :mod:`repro.engine.sharded`).
    trace: "BatchTrace | None" = None

    @property
    def requests_merged(self) -> int:
        """Duplicate requests removed by coalescing across the batch."""
        return self.occ_requests_issued - self.occ_requests_unique

    @property
    def coalescing_factor(self) -> float:
        """Issued-to-unique request ratio (1.0 means nothing merged)."""
        if self.occ_requests_unique == 0:
            return 1.0
        return self.occ_requests_issued / self.occ_requests_unique

    @property
    def mean_error(self) -> float:
        """Mean prediction error across learned-index lookups."""
        if not self.prediction_errors:
            return 0.0
        return sum(self.prediction_errors) / len(self.prediction_errors)

    def record_step(
        self, step: CoalescedStep, contribution: StepContribution | None = None
    ) -> None:
        """Account one coalesced lockstep iteration.

        Performs *all* of the step's stats bookkeeping: the stream
        counters, one base read per distinct k-mer (every backend fetches
        a k-mer's base entry / increment list / count row once per step),
        and the per-request *contribution* accounting — increment entries,
        predictions with their errors, binary comparisons.  When a trace
        is attached, the step's packed keys and contribution are recorded
        for the sharded merge.
        """
        self.lockstep_iterations += 1
        self.occ_requests_issued += step.issued
        self.occ_requests_unique += step.unique
        self.base_reads += step.unique_kmers
        # The stream and the trace reference the *same* keys array, so a
        # traced shard pickles each step's requests exactly once.
        self.requests.append_step(step.keys, step.span)
        if contribution is not None:
            self.apply_contribution(contribution)
        if self.trace is not None:
            self.trace.steps.append(StepTrace(keys=step.keys, contribution=contribution))

    def apply_contribution(self, contribution: StepContribution) -> None:
        """Fold one step's per-request accounting into the counters."""
        if contribution.entries is not None:
            self.increment_entries_read += int(contribution.entries.sum())
        if contribution.comparisons is not None:
            self.binary_comparisons += int(contribution.comparisons.sum())
        if contribution.predicted is not None:
            self.index_predictions += int(np.count_nonzero(contribution.predicted))
            if contribution.errors is not None:
                self.prediction_errors.extend(
                    contribution.errors[contribution.predicted].tolist()
                )

    def record_tail(self, tail: str, contribution: TailContribution) -> None:
        """Account one *distinct* partial-chunk tail resolved pre-lockstep.

        Backends call this once per cache-missing tail, with the costs its
        resolution incurred, so the trace carries both the shard-distinct
        tail set and the accounting needed for an exact replay-free merge.
        """
        self.base_reads += contribution.base_reads
        self.binary_comparisons += contribution.comparisons
        self.index_predictions += contribution.predictions
        self.prediction_errors.extend(contribution.errors)
        if self.trace is not None:
            self.trace.tails.append(tail)
            self.trace.tail_contributions.append(contribution)

    def merge(self, other: "BatchStats") -> None:
        """Accumulate another batch's counters into this one.

        This is the *consecutive batches* merge — counters add up because
        the batches were searched independently.  It is NOT the right way
        to combine the per-shard stats of one split batch: duplicate
        requests across shards would double-count the coalescing-dependent
        counters; :func:`repro.engine.sharded.merge_shard_stats` performs
        that merge exactly via the step traces.
        """
        self.queries += other.queries
        self.lockstep_iterations += other.lockstep_iterations
        self.iterations += other.iterations
        self.occ_requests_issued += other.occ_requests_issued
        self.occ_requests_unique += other.occ_requests_unique
        self.base_reads += other.base_reads
        self.increment_entries_read += other.increment_entries_read
        self.index_predictions += other.index_predictions
        self.binary_comparisons += other.binary_comparisons
        self.prediction_errors.extend(other.prediction_errors)
        self.requests.extend(other.requests)

    def to_search_stats(self) -> ExmaSearchStats:
        """Convert to the legacy per-query stats record.

        Lets everything written against :class:`ExmaSearchStats` (the
        accelerator model, the figure harnesses) consume a batched run
        unchanged.  This is the one conversion that materialises the
        columnar request stream into objects.
        """
        return ExmaSearchStats(
            iterations=self.iterations,
            occ_lookups=self.occ_requests_unique,
            base_reads=self.base_reads,
            increment_entries_read=self.increment_entries_read,
            index_predictions=self.index_predictions,
            prediction_errors=list(self.prediction_errors),
            requests=list(self.requests),
        )
