"""Genome-analysis applications: alignment, assembly, annotation, compression."""

from .alignment import AlignerCounters, AlignmentResult, ReadAligner, alignment_accuracy
from .annotation import (
    AnnotationCounters,
    ExactWordAnnotator,
    WordAnnotation,
    words_from_reference,
)
from .assembly import (
    AssemblyCounters,
    Contig,
    Overlap,
    OverlapAssembler,
    error_correct_reads,
    n50,
)
from .compression import (
    CompressionCounters,
    LiteralToken,
    MatchToken,
    ReferenceCompressor,
    compressed_size_bytes,
)
from .pipeline import (
    APPLICATIONS,
    BreakdownModel,
    WorkCounters,
    application_energy,
    application_speedup,
    default_breakdown_model,
    run_application,
)
from .smith_waterman import (
    LocalAlignment,
    ScoringScheme,
    banded_smith_waterman,
    smith_waterman,
)

__all__ = [
    "AlignerCounters",
    "AlignmentResult",
    "ReadAligner",
    "alignment_accuracy",
    "AnnotationCounters",
    "ExactWordAnnotator",
    "WordAnnotation",
    "words_from_reference",
    "AssemblyCounters",
    "Contig",
    "Overlap",
    "OverlapAssembler",
    "error_correct_reads",
    "n50",
    "CompressionCounters",
    "LiteralToken",
    "MatchToken",
    "ReferenceCompressor",
    "compressed_size_bytes",
    "APPLICATIONS",
    "BreakdownModel",
    "WorkCounters",
    "application_energy",
    "application_speedup",
    "default_breakdown_model",
    "run_application",
    "LocalAlignment",
    "ScoringScheme",
    "banded_smith_waterman",
    "smith_waterman",
]
