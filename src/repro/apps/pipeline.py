"""Genome-analysis pipeline model: time breakdown, speedup and energy.

This module ties the application substrates (alignment, assembly,
annotation, compression) to the performance models:

* :func:`run_application` executes one application at reproduction scale
  and collects its *work counters* (bases pushed through FM-Index searches,
  Smith-Waterman cells, auxiliary work).
* :class:`BreakdownModel` converts those counters into CPU execution-time
  components — the Fig. 1 stacked bars (FM-Index vs dynamic programming vs
  other).
* :func:`application_speedup` applies Amdahl's law with a measured FM-Index
  search speedup to produce the Fig. 19 bars.
* :func:`application_energy` produces the Fig. 20 energy comparison from
  the same time components plus the power/energy constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accel.metrics import ApplicationRun
from ..engine.backends import FMIndexBackend
from ..engine.engine import QueryEngine
from ..genome.reads import ErrorProfile, ReadSimulator
from ..genome.sequence import Reference
from ..hw.energy import CPU_POWER_W, DRAM_SYSTEM_POWER_W, EXMA_ACCELERATOR_LEAKAGE_W, SystemEnergyBreakdown
from ..index.fmindex import FMIndex
from .alignment import AlignerCounters, ReadAligner
from .annotation import AnnotationCounters, ExactWordAnnotator, words_from_reference
from .assembly import AssemblyCounters, OverlapAssembler
from .compression import CompressionCounters, ReferenceCompressor

#: Applications evaluated in Figs. 1, 19 and 20.
APPLICATIONS = ("alignment", "assembly", "annotate", "compress")


@dataclass(frozen=True)
class WorkCounters:
    """Technology-independent work extracted from one application run."""

    fm_bases_searched: int
    dp_cells: int
    other_units: int


@dataclass(frozen=True)
class BreakdownModel:
    """Cost model converting work counters into CPU seconds.

    The FM-Index search rate comes from the CPU software model (LISA-21 by
    default, matching the paper's CPU scheme); dynamic-programming and
    auxiliary costs use fixed per-unit rates typical of a 16-core server.
    """

    cpu_search_bases_per_second: float
    dp_cells_per_second: float = 1.0e9
    other_units_per_second: float = 2.0e6

    def breakdown(self, application: str, dataset: str, work: WorkCounters) -> ApplicationRun:
        """Convert *work* into an :class:`ApplicationRun` time breakdown."""
        if self.cpu_search_bases_per_second <= 0:
            raise ValueError("cpu_search_bases_per_second must be positive")
        return ApplicationRun(
            application=application,
            dataset=dataset,
            fm_index_seconds=work.fm_bases_searched / self.cpu_search_bases_per_second,
            dynamic_programming_seconds=work.dp_cells / self.dp_cells_per_second,
            other_seconds=work.other_units / self.other_units_per_second,
        )


#: CPU FM-Index search rate used by the breakdown model, in bases/second.
#: Calibrated to the paper's measured CPU LISA-21 rate (tens of Mbase/s for
#: the whole 16-core machine once software overheads are included) rather
#: than the latency-bound analytic optimum.
PAPER_CPU_SEARCH_BASES_PER_SECOND = 15e6


def default_breakdown_model(
    cpu_search_bases_per_second: float = PAPER_CPU_SEARCH_BASES_PER_SECOND,
) -> BreakdownModel:
    """Breakdown model with the paper-calibrated CPU search rate."""
    return BreakdownModel(cpu_search_bases_per_second=cpu_search_bases_per_second)


def run_application(
    application: str,
    reference: Reference,
    profile: ErrorProfile,
    read_count: int = 30,
    read_length: int = 101,
    seed: int = 0,
    shards: int | None = None,
    executor: str | None = None,
    window: int | None = None,
    window_flushes: "list | None" = None,
) -> WorkCounters:
    """Run one application at reproduction scale and return its work.

    Annotation and compression do not depend on the read error profile (the
    paper evaluates them once per dataset); alignment and assembly use
    reads simulated with *profile*.  ``shards``/``executor`` opt the
    FM-Index-heavy applications (alignment seeding, annotation word
    batches) into the sharded parallel engine path — each holds one
    persistent worker pool for its run — and work counters are identical
    either way.  ``window`` opts the same two applications into recording
    their coalesced request streams through a scheduling window of W
    consecutive batches (see :class:`~repro.engine.window
    .CoalescingWindow`); the flushed
    :class:`~repro.engine.window.WindowedBatch` stream is appended to the
    *window_flushes* list when one is supplied — pass it to
    :meth:`repro.accel.exma_accelerator.ExmaAccelerator.run_stream` to
    replay the application's windowed stream — and the work counters
    again stay identical.  Note the recording cost: with ``window`` set,
    alignment seeding runs the serial recorded pass (``shards`` is
    ignored for seeding; see :class:`~repro.apps.alignment.ReadAligner`).
    """
    if application not in APPLICATIONS:
        raise ValueError(f"unknown application {application!r}")
    fm = FMIndex(reference.sequence)

    if application == "alignment":
        reads = ReadSimulator(reference.sequence, profile, seed=seed).simulate(
            read_length=min(read_length, len(reference.sequence)), count=read_count
        )
        # Long, error-rich reads are seeded with shorter exact matches and
        # extended with a wider band, as long-read aligners do.
        long_read_profile = profile.total > 0.05
        aligner = ReadAligner(
            reference.sequence,
            fm_index=fm,
            min_seed_length=12 if long_read_profile else 15,
            extension_band=24 if long_read_profile else 16,
            shards=shards,
            executor=executor,
            window=window,
        )
        _, counters = aligner.align_batch(reads)
        aligner.flush_window()
        if window_flushes is not None:
            window_flushes.extend(aligner.windowed_flushes)
        return _alignment_work(counters)

    if application == "assembly":
        reads = ReadSimulator(reference.sequence, profile, seed=seed).simulate(
            read_length=min(read_length, len(reference.sequence)),
            count=read_count,
            both_strands=False,
        )
        assembler = OverlapAssembler(min_overlap=max(10, read_length // 5))
        counters = AssemblyCounters()
        assembler.assemble([r.sequence for r in reads], counters)
        # Error correction before assembly costs extra FM-Index searches
        # proportional to total read bases (the FM-Index-based corrector).
        correction_bases = sum(len(r.sequence) for r in reads)
        # Graph construction, transitive reduction and consensus are the
        # assembler's non-search work; account them per read base.
        return WorkCounters(
            fm_bases_searched=counters.bases_searched + correction_bases,
            dp_cells=read_count * read_length * 64,
            other_units=counters.reads + counters.contigs + correction_bases // 4,
        )

    if application == "annotate":
        words = words_from_reference(reference.sequence, word_length=24, stride=max(64, len(reference.sequence) // max(read_count, 1)))
        # Annotation's word set routes through the batched engine in one
        # lockstep pass; alignment's seeding is batched inside ReadAligner.
        annotator = ExactWordAnnotator(
            fm,
            engine=QueryEngine(FMIndexBackend(fm_index=fm), shards=shards, executor=executor),
            window=window,
        )
        counters = AnnotationCounters()
        annotator.annotate(words, counters)
        annotator.flush_window()
        if window_flushes is not None:
            window_flushes.extend(annotator.windowed_flushes)
        return WorkCounters(
            fm_bases_searched=counters.bases_searched,
            dp_cells=0,
            other_units=counters.words,
        )

    # compress
    simulator = ReadSimulator(reference.sequence, profile, seed=seed)
    sequences = [
        r.sequence
        for r in simulator.simulate(
            read_length=min(1000, len(reference.sequence)), count=max(2, read_count // 10), both_strands=False
        )
    ]
    compressor = ReferenceCompressor(fm, reference.sequence)
    counters = CompressionCounters()
    for sequence in sequences:
        compressor.compress(sequence, counters)
    # Token encoding and output I/O scale with the input size.
    return WorkCounters(
        fm_bases_searched=counters.bases_searched,
        dp_cells=0,
        other_units=counters.match_tokens
        + counters.literal_tokens
        + counters.sequences
        + counters.input_bytes // 4,
    )


def _alignment_work(counters: AlignerCounters) -> WorkCounters:
    """Convert aligner counters into technology-independent work."""
    return WorkCounters(
        fm_bases_searched=counters.seeding_bases_searched,
        dp_cells=counters.extension_cells,
        other_units=counters.reads * 4 + counters.seeds,
    )


def application_speedup(run: ApplicationRun, search_speedup: float) -> float:
    """Fig. 19: whole-application speedup given an FM-Index search speedup."""
    return run.speedup_with_search_speedup(search_speedup)


def application_energy(
    run: ApplicationRun,
    search_speedup: float,
    accelerator_dynamic_power_w: float = 0.6,
    dram_power_w: float = DRAM_SYSTEM_POWER_W,
    dram_io_fraction: float = 0.3,
    cpu_power_w: float = CPU_POWER_W,
) -> tuple[SystemEnergyBreakdown, SystemEnergyBreakdown]:
    """Fig. 20: energy of the CPU baseline vs the EXMA-accelerated system.

    Returns ``(cpu_baseline, exma_system)`` breakdowns.  On the baseline
    the CPU burns power for the whole run; with EXMA the FM-Index portion
    runs ``search_speedup`` times faster on the accelerator while the CPU
    only handles the remaining work.
    """
    if search_speedup <= 0:
        raise ValueError("search_speedup must be positive")
    non_fm_seconds = run.dynamic_programming_seconds + run.other_seconds
    baseline_seconds = run.total_seconds
    accel_fm_seconds = run.fm_index_seconds / search_speedup
    accel_total_seconds = non_fm_seconds + accel_fm_seconds

    baseline = SystemEnergyBreakdown(
        dram_chip_j=dram_power_w * (1.0 - dram_io_fraction) * baseline_seconds,
        dram_io_j=dram_power_w * dram_io_fraction * baseline_seconds,
        accelerator_dynamic_j=0.0,
        accelerator_leakage_j=0.0,
        cpu_j=cpu_power_w * baseline_seconds,
    )
    exma = SystemEnergyBreakdown(
        dram_chip_j=dram_power_w * (1.0 - dram_io_fraction) * accel_total_seconds,
        dram_io_j=dram_power_w * dram_io_fraction * accel_total_seconds,
        accelerator_dynamic_j=accelerator_dynamic_power_w * accel_fm_seconds,
        accelerator_leakage_j=EXMA_ACCELERATOR_LEAKAGE_W * accel_fm_seconds,
        cpu_j=cpu_power_w * non_fm_seconds,
    )
    return baseline, exma
