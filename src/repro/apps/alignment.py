"""Seed-and-extend read alignment (BWA-MEM / MA style).

The aligner seeds each read with maximal exact matches found through an
FM-Index-compatible search structure (the 1-step FM-Index, LISA or an EXMA
table — anything exposing ``maximal_exact_matches`` or a backward search),
then extends the best seeds with banded Smith-Waterman around their
reference positions.  Besides producing alignments, it keeps the counters
(bases searched, DP cells computed) that feed the Fig. 1 execution-time
breakdown and the Fig. 19 application-speedup model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.backends import FMIndexBackend
from ..engine.coalesce import BatchStats
from ..engine.engine import WorkerPoolOwner
from ..engine.sharded import (
    default_executor,
    default_shards,
    effective_shards,
    split_shards,
)
from ..engine.window import CoalescingWindow, WindowedBatch
from ..genome.alphabet import reverse_complement
from ..genome.reads import SimulatedRead
from ..index.fmindex import FMIndex, Seed
from .smith_waterman import ScoringScheme, banded_smith_waterman


def _mem_shard(backend: FMIndexBackend, min_length: int, reads: list[str]) -> list[list[Seed]]:
    """One shard's lockstep MEM seeding (module-level so processes can pickle)."""
    return backend.maximal_exact_matches_batch(reads, min_length=min_length)


@dataclass(frozen=True)
class AlignmentResult:
    """Best alignment found for one read."""

    read_name: str
    position: int
    reverse: bool
    score: int
    seed_count: int
    aligned: bool

    @property
    def mapped(self) -> bool:
        """Whether the read produced any alignment."""
        return self.aligned


@dataclass
class AlignerCounters:
    """Work counters accumulated while aligning a batch of reads."""

    reads: int = 0
    seeds: int = 0
    seeding_bases_searched: int = 0
    extension_cells: int = 0
    unmapped: int = 0
    fm_index_iterations: int = 0

    def merge(self, other: "AlignerCounters") -> None:
        """Accumulate another counter set into this one."""
        self.reads += other.reads
        self.seeds += other.seeds
        self.seeding_bases_searched += other.seeding_bases_searched
        self.extension_cells += other.extension_cells
        self.unmapped += other.unmapped
        self.fm_index_iterations += other.fm_index_iterations


class ReadAligner(WorkerPoolOwner):
    """Aligns reads against a reference using FM-Index seeding.

    Args:
        reference: the reference string over ``ACGT``.
        fm_index: a prebuilt :class:`FMIndex`; built from *reference* when
            omitted.
        min_seed_length: shortest exact match accepted as a seed.
        extension_band: Smith-Waterman band width.
        max_seed_hits: reference positions considered per seed (seeds with
            more hits are repetitive and skipped, as BWA-MEM does).
        shards: opt-in parallel seeding — split batch seeding across this
            many workers (per-read MEM state machines are independent, so
            seeds are identical to the serial pass).  ``None`` defers to
            the ``REPRO_DEFAULT_SHARDS`` toggle.
        executor: ``"thread"`` or ``"process"`` pool for *shards*.
        window: scheduling-window capacity W — record each seeding pass's
            coalesced Occ request stream and merge duplicates across W
            consecutive passes through a
            :class:`~repro.engine.window.CoalescingWindow`, producing the
            flushed :class:`~repro.engine.window.WindowedBatch` stream the
            accelerator model replays (``windowed_flushes`` /
            ``flush_window``).  Windowed recording runs the serial
            lockstep seeding pass (the recorded stream must be the exact
            whole-batch stream, which per-shard recording cannot give), so
            ``window`` takes precedence over ``shards`` for seeding.
    """

    def __init__(
        self,
        reference: str,
        fm_index: FMIndex | None = None,
        min_seed_length: int = 15,
        extension_band: int = 16,
        max_seed_hits: int = 8,
        scoring: ScoringScheme | None = None,
        shards: int | None = None,
        executor: str | None = None,
        window: int | None = None,
    ) -> None:
        if min_seed_length <= 0:
            raise ValueError("min_seed_length must be positive")
        if max_seed_hits <= 0:
            raise ValueError("max_seed_hits must be positive")
        self._reference = reference
        self._fm = fm_index or FMIndex(reference)
        self._backend = FMIndexBackend(fm_index=self._fm)
        self._min_seed = min_seed_length
        self._band = extension_band
        self._max_hits = max_seed_hits
        self._scoring = scoring or ScoringScheme()
        if shards is not None and shards < 1:
            raise ValueError("shards must be >= 1")
        self._shards = shards
        self._executor = executor
        self._window = CoalescingWindow(window) if window is not None else None
        self._window_flushes: list[WindowedBatch] = []
        #: Persistent seeding pool (WorkerPoolOwner), created lazily on
        #: the first sharded batch and reused for every subsequent one.
        self._pool = None

    @property
    def fm_index(self) -> FMIndex:
        """The FM-Index used for seeding."""
        return self._fm

    @property
    def backend(self) -> FMIndexBackend:
        """The batched search backend used for batch seeding."""
        return self._backend

    def align_read(
        self, read: str, name: str = "read", counters: AlignerCounters | None = None
    ) -> AlignmentResult:
        """Align one read (both strands) and return the best alignment.

        Thin wrapper over the batched path: seeds come from a lockstep
        batch of the two orientations.
        """
        if not read:
            raise ValueError("read must be non-empty")
        oriented = (read, reverse_complement(read))
        seeds = self._seed_batch(list(oriented))
        return self._align_from_seeds(name, oriented, seeds, counters)

    @property
    def window_capacity(self) -> int | None:
        """The configured scheduling-window W, or ``None``."""
        return self._window.capacity if self._window is not None else None

    @property
    def windowed_flushes(self) -> tuple[WindowedBatch, ...]:
        """Windows flushed so far (cross-pass merged Occ request streams)."""
        return tuple(self._window_flushes)

    def flush_window(self) -> WindowedBatch | None:
        """Force-flush the partial window (end of the read stream)."""
        if self._window is None:
            return None
        flushed = self._window.flush()
        if flushed is not None:
            self._window_flushes.append(flushed)
        return flushed

    def _seed_batch(self, oriented: list[str]) -> list[list[Seed]]:
        """Seed a batch of oriented reads, sharded across workers when asked.

        Batches too small to give every worker at least two reads stay on
        the serial path — per-read ``align_read`` (a 2-string batch) must
        not pay a pool spin-up per call when the environment toggle turns
        sharding on globally.  With a scheduling window configured, the
        pass runs serially with stats recording and its columnar request
        stream is pushed through the window.
        """
        if self._window is not None:
            stats = BatchStats()
            seeds = self._backend.maximal_exact_matches_batch(
                oriented, min_length=self._min_seed, stats=stats
            )
            flushed = self._window.push(stats.requests)
            if flushed is not None:
                self._window_flushes.append(flushed)
            return seeds
        shards = effective_shards(
            self._shards if self._shards is not None else default_shards()
        )
        if shards > 1 and len(oriented) >= 2 * shards:
            executor = self._executor if self._executor is not None else default_executor()
            pool = self._ensure_pool(shards, executor)
            outputs = pool.map_shards(
                _mem_shard, split_shards(oriented, shards), self._min_seed
            )
            return [seeds for shard_seeds in outputs for seeds in shard_seeds]
        return self._backend.maximal_exact_matches_batch(oriented, min_length=self._min_seed)

    def _align_from_seeds(
        self,
        name: str,
        oriented: tuple[str, str],
        oriented_seeds: list[list[Seed]],
        counters: AlignerCounters | None,
    ) -> AlignmentResult:
        """Pick the best extension across both precomputed seed sets."""
        best: tuple[int, int, bool, int] | None = None  # score, pos, reverse, seeds
        for reverse in (False, True):
            read, seeds = oriented[reverse], oriented_seeds[reverse]
            if counters is not None:
                counters.seeds += len(seeds)
                counters.seeding_bases_searched += len(read)
                counters.fm_index_iterations += len(read)
            candidate = self._extend_best(read, seeds, counters)
            if candidate is not None:
                score, position = candidate
                if best is None or score > best[0]:
                    best = (score, position, reverse, len(seeds))
        if counters is not None:
            counters.reads += 1
            if best is None:
                counters.unmapped += 1
        if best is None:
            return AlignmentResult(
                read_name=name, position=-1, reverse=False, score=0, seed_count=0, aligned=False
            )
        score, position, reverse, seed_count = best
        return AlignmentResult(
            read_name=name,
            position=position,
            reverse=reverse,
            score=score,
            seed_count=seed_count,
            aligned=True,
        )

    def _extend_best(
        self, read: str, seeds: list[Seed], counters: AlignerCounters | None
    ) -> tuple[int, int] | None:
        """Extend each usable seed and return the best (score, position)."""
        best: tuple[int, int] | None = None
        for seed in seeds:
            if seed.interval.count > self._max_hits:
                continue
            for ref_pos in self._fm.locate(seed.interval, limit=self._max_hits):
                window_start = max(0, ref_pos - seed.read_start - self._band)
                window_end = min(
                    len(self._reference),
                    ref_pos + (len(read) - seed.read_start) + self._band,
                )
                window = self._reference[window_start:window_end]
                if not window:
                    continue
                alignment = banded_smith_waterman(
                    read, window, band=self._band, scoring=self._scoring
                )
                if counters is not None:
                    counters.extension_cells += alignment.cells_computed
                position = window_start + alignment.target_start
                if best is None or alignment.score > best[0]:
                    best = (alignment.score, position)
        return best

    def align_batch(
        self, reads: list[SimulatedRead]
    ) -> tuple[list[AlignmentResult], AlignerCounters]:
        """Align a batch of simulated reads, returning per-read results.

        Seeding for the whole batch — every read, both orientations — runs
        as one lockstep pass through the batched engine, so the Occ
        request streams of all reads coalesce, as on the accelerator.
        With ``shards`` set, seeding fans out across the worker pool
        (identical seeds either way).  Extension then proceeds per read
        over the precomputed seeds; results are identical to per-read
        :meth:`align_read`.
        """
        counters = AlignerCounters()
        oriented_all: list[str] = []
        for read in reads:
            if not read.sequence:
                raise ValueError("read must be non-empty")
            oriented_all.append(read.sequence)
            oriented_all.append(reverse_complement(read.sequence))
        seeds_all = self._seed_batch(oriented_all)
        results = []
        for i, read in enumerate(reads):
            oriented = (oriented_all[2 * i], oriented_all[2 * i + 1])
            seeds = [seeds_all[2 * i], seeds_all[2 * i + 1]]
            results.append(
                self._align_from_seeds(read.name, oriented, seeds, counters)
            )
        return results, counters


def alignment_accuracy(
    results: list[AlignmentResult], reads: list[SimulatedRead], tolerance: int = 20
) -> float:
    """Fraction of mapped reads placed within *tolerance* of their origin."""
    if len(results) != len(reads):
        raise ValueError("results and reads must align one-to-one")
    if not results:
        return 0.0
    correct = 0
    for result, read in zip(results, reads):
        if result.mapped and abs(result.position - read.true_position) <= tolerance:
            correct += 1
    return correct / len(results)
