"""Reference-based sequence compression using the FM-Index.

The paper's compression workload (Prochazka & Holub, reference [26])
compresses collections of similar biological sequences by expressing each
new sequence as a series of matches against a reference plus literal
mismatching stretches, with the match positions found through FM-Index
searches.  This module implements that scheme: greedy longest-match
factorisation against an FM-Index, a compact token stream, and exact
decompression.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..index.fmindex import FMIndex


@dataclass(frozen=True)
class MatchToken:
    """A copy of ``length`` symbols from ``position`` in the reference."""

    position: int
    length: int


@dataclass(frozen=True)
class LiteralToken:
    """A literal stretch stored verbatim."""

    text: str


Token = MatchToken | LiteralToken


@dataclass
class CompressionCounters:
    """Work counters for one compression run."""

    sequences: int = 0
    bases_searched: int = 0
    match_tokens: int = 0
    literal_tokens: int = 0
    input_bytes: int = 0
    output_bytes: int = 0

    @property
    def compression_ratio(self) -> float:
        """Compressed over original size (smaller is better)."""
        if self.input_bytes == 0:
            return 1.0
        return self.output_bytes / self.input_bytes


#: Encoded size of a match token: position (4 bytes) + length (2 bytes).
MATCH_TOKEN_BYTES = 6

#: Per-literal-token overhead: a length prefix.
LITERAL_TOKEN_OVERHEAD_BYTES = 2


class ReferenceCompressor:
    """Compress sequences against a reference via greedy FM-Index matching.

    Args:
        fm_index: index over the reference.
        reference: the reference string (needed for decompression).
        min_match: shortest reference match worth a token.
        max_match: cap on a single match token's length.
    """

    def __init__(
        self, fm_index: FMIndex, reference: str, min_match: int = 16, max_match: int = 255
    ) -> None:
        if min_match <= 0 or max_match < min_match:
            raise ValueError("require 0 < min_match <= max_match")
        self._fm = fm_index
        self._reference = reference
        self._min_match = min_match
        self._max_match = max_match

    def compress(self, sequence: str, counters: CompressionCounters | None = None) -> list[Token]:
        """Factorise *sequence* into match/literal tokens."""
        if not sequence:
            raise ValueError("sequence must be non-empty")
        tokens: list[Token] = []
        literal: list[str] = []
        i = 0
        n = len(sequence)
        while i < n:
            match = self._longest_match(sequence, i, counters)
            if match is None:
                literal.append(sequence[i])
                i += 1
                continue
            position, length = match
            if literal:
                tokens.append(LiteralToken("".join(literal)))
                literal = []
            tokens.append(MatchToken(position=position, length=length))
            i += length
        if literal:
            tokens.append(LiteralToken("".join(literal)))
        if counters is not None:
            counters.sequences += 1
            counters.input_bytes += n
            counters.match_tokens += sum(1 for t in tokens if isinstance(t, MatchToken))
            counters.literal_tokens += sum(1 for t in tokens if isinstance(t, LiteralToken))
            counters.output_bytes += compressed_size_bytes(tokens)
        return tokens

    def _longest_match(
        self, sequence: str, start: int, counters: CompressionCounters | None
    ) -> tuple[int, int] | None:
        """Longest reference match starting at *start* (None if too short)."""
        best: tuple[int, int] | None = None
        length = self._min_match
        limit = min(self._max_match, len(sequence) - start)
        if limit < self._min_match:
            return None
        # Grow the match while it still occurs in the reference; backward
        # search cost is proportional to the probe length.
        while length <= limit:
            fragment = sequence[start : start + length]
            if counters is not None:
                counters.bases_searched += len(fragment)
            interval = self._fm.backward_search(fragment)
            if interval.empty:
                break
            positions = self._fm.locate(interval, limit=1)
            best = (positions[0], length)
            length += 8
        if best is None:
            return None
        # Refine the final length linearly from the last successful probe.
        position, matched = best
        while (
            matched < limit
            and start + matched < len(sequence)
            and position + matched < len(self._reference)
            and self._reference[position + matched] == sequence[start + matched]
        ):
            matched += 1
        return position, matched

    def decompress(self, tokens: list[Token]) -> str:
        """Rebuild the original sequence from its token stream."""
        pieces = []
        for token in tokens:
            if isinstance(token, MatchToken):
                pieces.append(self._reference[token.position : token.position + token.length])
            else:
                pieces.append(token.text)
        return "".join(pieces)


def compressed_size_bytes(tokens: list[Token]) -> int:
    """Encoded size of a token stream."""
    size = 0
    for token in tokens:
        if isinstance(token, MatchToken):
            size += MATCH_TOKEN_BYTES
        else:
            size += LITERAL_TOKEN_OVERHEAD_BYTES + len(token.text)
    return size
