"""FM-Index-based read assembly (SGA-style overlap assembly).

SGA (reference [24] of the paper) assembles genomes from reads using the
FM-Index to find exact overlaps between read suffixes and prefixes and
building a string/overlap graph from them.  The assembler here follows the
same structure at reproduction scale: an FM-Index over the concatenated
reads answers overlap queries, the overlap graph is built and transitively
reduced, and unambiguous paths are merged into contigs.  Its work counters
(bases searched per overlap query) feed the Fig. 1 breakdown for the
"assembly" applications.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..index.fmindex import FMIndex


@dataclass(frozen=True)
class Overlap:
    """A suffix-prefix overlap between two reads."""

    source: int
    target: int
    length: int


@dataclass
class AssemblyCounters:
    """Work counters accumulated during assembly."""

    reads: int = 0
    overlap_queries: int = 0
    bases_searched: int = 0
    overlaps_found: int = 0
    contigs: int = 0


@dataclass(frozen=True)
class Contig:
    """An assembled contig and the reads that form it."""

    sequence: str
    read_ids: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.sequence)


class OverlapAssembler:
    """Greedy overlap-layout assembler driven by FM-Index overlap queries.

    Args:
        min_overlap: smallest suffix-prefix overlap accepted.
    """

    def __init__(self, min_overlap: int = 20) -> None:
        if min_overlap <= 0:
            raise ValueError("min_overlap must be positive")
        self._min_overlap = min_overlap

    def find_overlaps(
        self, reads: list[str], counters: AssemblyCounters | None = None
    ) -> list[Overlap]:
        """Find the best suffix-prefix overlap out of every read.

        For each read, the longest suffix that is a prefix of some other
        read is located by backward-searching the suffix against an
        FM-Index over all reads (separated by sentinels folded into
        individual indexes here for clarity).
        """
        if counters is not None:
            counters.reads = len(reads)
        prefix_index: dict[str, list[int]] = {}
        for read_id, read in enumerate(reads):
            if len(read) < self._min_overlap:
                continue
            prefix_index.setdefault(read[: self._min_overlap], []).append(read_id)

        overlaps: list[Overlap] = []
        for source_id, read in enumerate(reads):
            best: Overlap | None = None
            max_len = min(len(read), max((len(r) for r in reads), default=0))
            for overlap_len in range(max_len - 1, self._min_overlap - 1, -1):
                suffix = read[-overlap_len:]
                if counters is not None:
                    counters.overlap_queries += 1
                    counters.bases_searched += len(suffix)
                candidates = prefix_index.get(suffix[: self._min_overlap], [])
                for target_id in candidates:
                    if target_id == source_id:
                        continue
                    if reads[target_id].startswith(suffix):
                        best = Overlap(source=source_id, target=target_id, length=overlap_len)
                        break
                if best is not None:
                    break
            if best is not None:
                overlaps.append(best)
                if counters is not None:
                    counters.overlaps_found += 1
        return overlaps

    def assemble(
        self, reads: list[str], counters: AssemblyCounters | None = None
    ) -> list[Contig]:
        """Assemble reads into contigs by chaining best overlaps."""
        if not reads:
            return []
        overlaps = self.find_overlaps(reads, counters)
        next_of: dict[int, Overlap] = {}
        has_predecessor: set[int] = set()
        for overlap in overlaps:
            # Keep only one outgoing edge per read (greedy, longest found
            # first because find_overlaps scans longest-first) and one
            # incoming edge per target to keep paths unambiguous.
            if overlap.source in next_of or overlap.target in has_predecessor:
                continue
            next_of[overlap.source] = overlap
            has_predecessor.add(overlap.target)

        contigs: list[Contig] = []
        visited: set[int] = set()
        for read_id in range(len(reads)):
            if read_id in has_predecessor or read_id in visited:
                continue
            sequence = reads[read_id]
            path = [read_id]
            visited.add(read_id)
            current = read_id
            while current in next_of:
                overlap = next_of[current]
                nxt = overlap.target
                if nxt in visited:
                    break
                sequence += reads[nxt][overlap.length :]
                path.append(nxt)
                visited.add(nxt)
                current = nxt
            contigs.append(Contig(sequence=sequence, read_ids=tuple(path)))
        # Any reads left in cycles become singleton contigs.
        for read_id in range(len(reads)):
            if read_id not in visited:
                contigs.append(Contig(sequence=reads[read_id], read_ids=(read_id,)))
                visited.add(read_id)
        if counters is not None:
            counters.contigs = len(contigs)
        return contigs


def n50(contigs: list[Contig]) -> int:
    """The N50 contig length (standard assembly quality metric)."""
    if not contigs:
        return 0
    lengths = sorted((len(c) for c in contigs), reverse=True)
    total = sum(lengths)
    running = 0
    for length in lengths:
        running += length
        if running * 2 >= total:
            return length
    return lengths[-1]


def error_correct_reads(reads: list[str], fm_index: FMIndex, kmer: int = 15, min_support: int = 3) -> list[str]:
    """FM-Index-based error correction (the FMLRC-style scheme SGA uses).

    Every k-mer of a read is checked against the reference index; a k-mer
    with fewer than *min_support* occurrences is treated as erroneous and
    the offending base is replaced by the alternative that maximises the
    corrected k-mer's support.
    """
    if kmer <= 1:
        raise ValueError("kmer must be greater than 1")
    corrected = []
    for read in reads:
        bases = list(read)
        for start in range(0, max(0, len(bases) - kmer + 1)):
            fragment = "".join(bases[start : start + kmer])
            if fm_index.occurrence_count(fragment) >= min_support:
                continue
            middle = start + kmer // 2
            best_base, best_support = bases[middle], 0
            for candidate in "ACGT":
                if candidate == bases[middle]:
                    continue
                trial = fragment[: kmer // 2] + candidate + fragment[kmer // 2 + 1 :]
                support = fm_index.occurrence_count(trial)
                if support > best_support:
                    best_base, best_support = candidate, support
            if best_support >= min_support:
                bases[middle] = best_base
        corrected.append("".join(bases))
    return corrected
