"""Smith-Waterman local alignment (the seed-extension dynamic programming).

Read alignment follows seed-and-extend: FM-Index seeding finds exact
matches, then the computationally expensive Smith-Waterman algorithm is
invoked only around seeds to handle sequencing errors and genetic
variation.  This module provides a banded affine-free Smith-Waterman used
by the aligner and by the Fig. 1 execution-time breakdown (where it is the
"DynPro" component).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ScoringScheme:
    """Match/mismatch/gap scores for local alignment."""

    match: int = 2
    mismatch: int = -2
    gap: int = -3

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise ValueError("match score must be positive")
        if self.mismatch >= 0 or self.gap >= 0:
            raise ValueError("mismatch and gap penalties must be negative")


@dataclass(frozen=True)
class LocalAlignment:
    """Result of a local alignment."""

    score: int
    query_start: int
    query_end: int
    target_start: int
    target_end: int
    cells_computed: int

    @property
    def query_span(self) -> int:
        """Aligned query length."""
        return self.query_end - self.query_start

    @property
    def target_span(self) -> int:
        """Aligned target length."""
        return self.target_end - self.target_start


def smith_waterman(
    query: str, target: str, scoring: ScoringScheme | None = None
) -> LocalAlignment:
    """Full Smith-Waterman local alignment of *query* against *target*.

    Returns the best-scoring local alignment and the number of dynamic-
    programming cells computed (used by the time-breakdown model).
    """
    scoring = scoring or ScoringScheme()
    if not query or not target:
        raise ValueError("query and target must be non-empty")
    rows, cols = len(query) + 1, len(target) + 1
    matrix = np.zeros((rows, cols), dtype=np.int64)
    best_score, best_cell = 0, (0, 0)

    query_codes = np.frombuffer(query.encode("ascii"), dtype=np.uint8)
    target_codes = np.frombuffer(target.encode("ascii"), dtype=np.uint8)

    for i in range(1, rows):
        match_row = np.where(
            target_codes == query_codes[i - 1], scoring.match, scoring.mismatch
        )
        for j in range(1, cols):
            score = max(
                0,
                matrix[i - 1, j - 1] + match_row[j - 1],
                matrix[i - 1, j] + scoring.gap,
                matrix[i, j - 1] + scoring.gap,
            )
            matrix[i, j] = score
            if score > best_score:
                best_score, best_cell = score, (i, j)

    query_end, target_end = best_cell
    query_start, target_start = _traceback(matrix, query, target, best_cell, scoring)
    return LocalAlignment(
        score=int(best_score),
        query_start=query_start,
        query_end=query_end,
        target_start=target_start,
        target_end=target_end,
        cells_computed=(rows - 1) * (cols - 1),
    )


def _traceback(
    matrix: np.ndarray,
    query: str,
    target: str,
    start_cell: tuple[int, int],
    scoring: ScoringScheme,
) -> tuple[int, int]:
    """Walk back from the best cell to the start of the local alignment."""
    i, j = start_cell
    while i > 0 and j > 0 and matrix[i, j] > 0:
        diagonal = matrix[i - 1, j - 1]
        expected = scoring.match if query[i - 1] == target[j - 1] else scoring.mismatch
        if matrix[i, j] == diagonal + expected:
            i, j = i - 1, j - 1
        elif matrix[i, j] == matrix[i - 1, j] + scoring.gap:
            i -= 1
        elif matrix[i, j] == matrix[i, j - 1] + scoring.gap:
            j -= 1
        else:
            break
    return i, j


def banded_smith_waterman(
    query: str, target: str, band: int = 16, scoring: ScoringScheme | None = None
) -> LocalAlignment:
    """Banded Smith-Waterman restricted to a diagonal band of width *band*.

    Seed extension only needs to explore small deviations around the seed
    diagonal, so production aligners use a band; the cell count drops from
    ``|Q| * |T|`` to roughly ``|Q| * (2 * band + 1)``.
    """
    scoring = scoring or ScoringScheme()
    if band <= 0:
        raise ValueError("band must be positive")
    if not query or not target:
        raise ValueError("query and target must be non-empty")
    rows, cols = len(query) + 1, len(target) + 1
    matrix = np.zeros((rows, cols), dtype=np.int64)
    best_score, best_cell = 0, (0, 0)
    cells = 0

    for i in range(1, rows):
        j_low = max(1, i - band)
        j_high = min(cols, i + band + 1)
        for j in range(j_low, j_high):
            match = scoring.match if query[i - 1] == target[j - 1] else scoring.mismatch
            score = max(
                0,
                matrix[i - 1, j - 1] + match,
                matrix[i - 1, j] + scoring.gap,
                matrix[i, j - 1] + scoring.gap,
            )
            matrix[i, j] = score
            cells += 1
            if score > best_score:
                best_score, best_cell = score, (i, j)

    query_end, target_end = best_cell
    query_start, target_start = _traceback(matrix, query, target, best_cell, scoring)
    return LocalAlignment(
        score=int(best_score),
        query_start=query_start,
        query_end=query_end,
        target_start=target_start,
        target_end=target_end,
        cells_computed=cells,
    )
