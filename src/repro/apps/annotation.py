"""Genome annotation by exact word matching.

The paper's annotation workload is ExactWordMatch (Healy et al., reference
[25]): annotate a genome by finding, for every word of a query set (e.g.
known gene/motif words), all of its exact occurrences in the reference.
The work is FM-Index searches almost exclusively, which is why annotation
shows the largest FM-Index time fraction in Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.backends import FMIndexBackend
from ..engine.engine import QueryEngine
from ..engine.window import CoalescingWindow, WindowedBatch
from ..index.fmindex import FMIndex


@dataclass(frozen=True)
class WordAnnotation:
    """All occurrences of one annotation word in the reference."""

    word: str
    positions: tuple[int, ...]

    @property
    def count(self) -> int:
        """Number of occurrences."""
        return len(self.positions)


@dataclass
class AnnotationCounters:
    """Work counters for one annotation run."""

    words: int = 0
    bases_searched: int = 0
    occurrences: int = 0


class ExactWordAnnotator:
    """Annotates a reference with exact occurrences of query words.

    Word batches route through the batched query engine: one lockstep
    search over the whole word set with Occ-request coalescing, then a
    locate per word.  Results are identical to per-word search.  Passing
    ``shards`` opts the default engine into the sharded parallel path
    (word sets are the repository's largest batches); results stay
    identical to serial, and the engine keeps one persistent worker pool
    across annotate calls rather than spinning a pool per batch.

    Passing ``window`` records each annotate call's coalesced Occ request
    stream into a :class:`~repro.engine.window.CoalescingWindow` of W
    consecutive word batches; the flushed
    :class:`~repro.engine.window.WindowedBatch` stream
    (``windowed_flushes`` / ``flush_window``) is what the windowed
    accelerator pipeline replays.  Annotations are unaffected.
    """

    def __init__(
        self,
        fm_index: FMIndex,
        max_positions_per_word: int = 1000,
        engine: QueryEngine | None = None,
        shards: int | None = None,
        executor: str | None = None,
        window: int | None = None,
    ) -> None:
        if max_positions_per_word <= 0:
            raise ValueError("max_positions_per_word must be positive")
        self._fm = fm_index
        self._engine = engine or QueryEngine(
            FMIndexBackend(fm_index=fm_index), shards=shards, executor=executor
        )
        self._max_positions = max_positions_per_word
        self._window = CoalescingWindow(window) if window is not None else None
        self._window_flushes: list[WindowedBatch] = []

    @property
    def fm_index(self) -> FMIndex:
        """The index searched by this annotator."""
        return self._fm

    @property
    def engine(self) -> QueryEngine:
        """The batched query engine answering word searches."""
        return self._engine

    @property
    def window_capacity(self) -> int | None:
        """The configured scheduling-window W, or ``None``."""
        return self._window.capacity if self._window is not None else None

    @property
    def windowed_flushes(self) -> tuple[WindowedBatch, ...]:
        """Windows flushed so far (cross-batch merged Occ request streams)."""
        return tuple(self._window_flushes)

    def flush_window(self) -> WindowedBatch | None:
        """Force-flush the partial window (end of the word stream)."""
        if self._window is None:
            return None
        flushed = self._window.flush()
        if flushed is not None:
            self._window_flushes.append(flushed)
        return flushed

    def annotate_word(self, word: str, counters: AnnotationCounters | None = None) -> WordAnnotation:
        """Find every exact occurrence of *word* (a batch of one)."""
        return self.annotate([word], counters)[0]

    def annotate(
        self, words: list[str], counters: AnnotationCounters | None = None
    ) -> list[WordAnnotation]:
        """Annotate a batch of words in one lockstep engine pass."""
        positions_per_word, stats = self._engine.find_batch(words, limit=self._max_positions)
        if self._window is not None:
            flushed = self._window.push(stats.requests)
            if flushed is not None:
                self._window_flushes.append(flushed)
        annotations = []
        for word, positions in zip(words, positions_per_word):
            annotation = WordAnnotation(word=word, positions=tuple(positions))
            if counters is not None:
                counters.words += 1
                counters.bases_searched += len(word)
                counters.occurrences += annotation.count
            annotations.append(annotation)
        return annotations


def words_from_reference(reference: str, word_length: int = 24, stride: int = 512) -> list[str]:
    """Sample annotation words directly from a reference.

    Real annotation pipelines match curated word sets; at reproduction
    scale we sample words from the reference itself (so most words have at
    least one hit) with a fixed stride.
    """
    if word_length <= 0 or stride <= 0:
        raise ValueError("word_length and stride must be positive")
    words = []
    for start in range(0, max(0, len(reference) - word_length), stride):
        words.append(reference[start : start + word_length])
    return words
