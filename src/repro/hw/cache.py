"""Set-associative caches for the EXMA accelerator.

The accelerator integrates two on-chip caches (Table I): a 1 MB 8-way
eDRAM *base cache* holding EXMA base entries and a 32 KB 16-way SRAM
*index cache* holding MTL index nodes.  Both are modelled as classic
set-associative LRU caches over abstract line addresses; the 2-stage
scheduling experiments (Fig. 15/16/18) are entirely about how request
ordering changes these caches' hit rates.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class SetAssociativeCache:
    """A set-associative cache with LRU replacement over line addresses.

    Args:
        capacity_bytes: total cache capacity.
        line_bytes: bytes per cache line.
        associativity: ways per set.
    """

    def __init__(self, capacity_bytes: int, line_bytes: int = 64, associativity: int = 8) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise ValueError("capacity, line size and associativity must be positive")
        if capacity_bytes % (line_bytes * associativity) != 0:
            raise ValueError("capacity must be a multiple of line_bytes * associativity")
        self._line_bytes = line_bytes
        self._associativity = associativity
        self._num_sets = capacity_bytes // (line_bytes * associativity)
        self._sets: list[OrderedDict[int, None]] = [OrderedDict() for _ in range(self._num_sets)]
        self.stats = CacheStats()

    @property
    def capacity_bytes(self) -> int:
        """Total capacity in bytes."""
        return self._num_sets * self._associativity * self._line_bytes

    @property
    def line_bytes(self) -> int:
        """Cache line size in bytes."""
        return self._line_bytes

    @property
    def associativity(self) -> int:
        """Ways per set."""
        return self._associativity

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self._num_sets

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self._line_bytes
        return line % self._num_sets, line

    def access(self, address: int) -> bool:
        """Access a byte address; returns True on hit.  Misses allocate."""
        if address < 0:
            raise ValueError("address must be non-negative")
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        if tag in ways:
            ways.move_to_end(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        ways[tag] = None
        if len(ways) > self._associativity:
            ways.popitem(last=False)
        return False

    def contains(self, address: int) -> bool:
        """Whether the line holding *address* is currently cached."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def flush(self) -> None:
        """Invalidate every line (the paper flushes EXMA data from the CPU
        hierarchy before searches start; the accelerator caches start cold)."""
        for ways in self._sets:
            ways.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters without touching contents."""
        self.stats = CacheStats()
