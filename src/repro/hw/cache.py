"""Set-associative caches for the EXMA accelerator.

The accelerator integrates two on-chip caches (Table I): a 1 MB 8-way
eDRAM *base cache* holding EXMA base entries and a 32 KB 16-way SRAM
*index cache* holding MTL index nodes.  Both are modelled as classic
set-associative LRU caches over abstract line addresses; the 2-stage
scheduling experiments (Fig. 15/16/18) are entirely about how request
ordering changes these caches' hit rates.

Two implementations share the semantics:

* :class:`SetAssociativeCache` — the per-access object model, kept as the
  reference the oracle suite replays against;
* :func:`simulate_lru_hits` — the columnar replay's set-grouped array
  simulation of a whole cold-start access sequence at once, exact LRU
  (identical hit mask to calling :meth:`SetAssociativeCache.access` in
  order on a fresh cache).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .jit import jit_recurrence


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class SetAssociativeCache:
    """A set-associative cache with LRU replacement over line addresses.

    Args:
        capacity_bytes: total cache capacity.
        line_bytes: bytes per cache line.
        associativity: ways per set.
    """

    def __init__(self, capacity_bytes: int, line_bytes: int = 64, associativity: int = 8) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise ValueError("capacity, line size and associativity must be positive")
        if capacity_bytes % (line_bytes * associativity) != 0:
            raise ValueError("capacity must be a multiple of line_bytes * associativity")
        self._line_bytes = line_bytes
        self._associativity = associativity
        self._num_sets = capacity_bytes // (line_bytes * associativity)
        self._sets: list[OrderedDict[int, None]] = [OrderedDict() for _ in range(self._num_sets)]
        self.stats = CacheStats()

    @property
    def capacity_bytes(self) -> int:
        """Total capacity in bytes."""
        return self._num_sets * self._associativity * self._line_bytes

    @property
    def line_bytes(self) -> int:
        """Cache line size in bytes."""
        return self._line_bytes

    @property
    def associativity(self) -> int:
        """Ways per set."""
        return self._associativity

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self._num_sets

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self._line_bytes
        return line % self._num_sets, line

    def access(self, address: int) -> bool:
        """Access a byte address; returns True on hit.  Misses allocate."""
        if address < 0:
            raise ValueError("address must be non-negative")
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        if tag in ways:
            ways.move_to_end(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        ways[tag] = None
        if len(ways) > self._associativity:
            ways.popitem(last=False)
        return False

    def contains(self, address: int) -> bool:
        """Whether the line holding *address* is currently cached."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def flush(self) -> None:
        """Invalidate every line (the paper flushes EXMA data from the CPU
        hierarchy before searches start; the accelerator caches start cold)."""
        for ways in self._sets:
            ways.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters without touching contents."""
        self.stats = CacheStats()


def simulate_lru_hits(
    addresses: np.ndarray,
    capacity_bytes: int,
    line_bytes: int = 64,
    associativity: int = 8,
) -> np.ndarray:
    """Hit mask of a cold set-associative LRU cache over a whole sequence.

    Exactly equivalent to constructing a fresh :class:`SetAssociativeCache`
    and calling :meth:`~SetAssociativeCache.access` once per address in
    order — but computed as *set-grouped array processing*:

    * accesses are grouped by set with one stable argsort, and runs of
      the same line within a set collapse first (every access after a
      run's head is a guaranteed hit that leaves the LRU stack unchanged,
      because the line just became most-recently-used);
    * the surviving run heads advance every set's LRU stack together, one
      resident access per set per round, on a ``(sets, ways)`` recency
      matrix whose rows are laid out in descending access-count order so
      each round touches a plain prefix slice.

    The serial dimension is the deepest set's collapsed access count
    instead of the sequence length, so the cost collapses whenever
    traffic spreads over more than a handful of sets.  Degenerate shapes
    (nearly everything landing in one set) fall back to a flat sequential
    pass over the pre-decoded set/tag columns — same exact semantics
    without the per-round array overhead.

    Returns a boolean array aligned with *addresses* (True = hit).
    """
    if capacity_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
        raise ValueError("capacity, line size and associativity must be positive")
    if capacity_bytes % (line_bytes * associativity) != 0:
        raise ValueError("capacity must be a multiple of line_bytes * associativity")
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.size and int(addresses.min()) < 0:
        raise ValueError("address must be non-negative")
    hits = np.empty(addresses.size, dtype=bool)
    if addresses.size == 0:
        return hits

    num_sets = capacity_bytes // (line_bytes * associativity)
    tags = addresses // line_bytes
    set_indices = tags % num_sets

    order = np.argsort(set_indices, kind="stable")
    sorted_sets = set_indices[order]
    sorted_tags = tags[order]

    # Collapse same-line runs within each set's subsequence.
    run_head = np.ones(sorted_tags.size, dtype=bool)
    run_head[1:] = (sorted_tags[1:] != sorted_tags[:-1]) | (
        sorted_sets[1:] != sorted_sets[:-1]
    )
    hit_grouped = np.empty(sorted_tags.size, dtype=bool)
    hit_grouped[~run_head] = True
    head_slots = np.flatnonzero(run_head)
    head_tags = sorted_tags[head_slots]
    head_sets = sorted_sets[head_slots]

    _, group_start, group_size = np.unique(
        head_sets, return_index=True, return_counts=True
    )
    rounds = int(group_size.max())

    if _lru_heads_jit is not None:
        # Compiled flat exact-LRU pass: the same recency update as the
        # round/sequential fallbacks, one scalar loop over the heads in
        # their set-grouped order.  Beats both fallbacks at every shape,
        # and releases the GIL for the epoch-parallel replay workers.
        group_of_head = np.repeat(
            np.arange(group_size.size, dtype=np.int64), group_size
        )
        head_hits = _lru_heads_jit(
            np.ascontiguousarray(head_tags, dtype=np.int64),
            group_of_head,
            int(associativity),
            int(group_size.size),
        )
    elif rounds * 8 > head_tags.size and rounds > 32:
        # Skewed towards few sets: per-round matrices would be narrower
        # than their own dispatch overhead.  Same semantics, flat pass.
        head_hits = np.empty(head_tags.size, dtype=bool)
        _simulate_sequential(head_sets, head_tags, associativity, head_hits)
    else:
        head_hits = _simulate_rounds(
            head_tags, group_start, group_size, associativity, rounds
        )
    hit_grouped[head_slots] = head_hits
    hits[order] = hit_grouped
    return hits


def _lru_heads(
    head_tags: np.ndarray,
    group_of_head: np.ndarray,
    associativity: int,
    group_count: int,
) -> np.ndarray:
    """Exact LRU over collapsed run heads, one scalar pass (numba shape).

    *head_tags*/*group_of_head* are the set-grouped head columns that
    :func:`simulate_lru_hits` builds; each group's heads appear in their
    original access order, so per-group LRU over this order equals
    per-set LRU over the original sequence.  Tags are non-negative, so
    ``-1`` marks an empty way — the same convention as
    :func:`_simulate_rounds`.
    """
    state = np.full((group_count, associativity), -1, dtype=np.int64)
    hits = np.empty(head_tags.size, dtype=np.bool_)
    for index in range(head_tags.size):
        group = group_of_head[index]
        tag = head_tags[index]
        way = associativity - 1
        hit = False
        for probe in range(associativity):
            if state[group, probe] == tag:
                way = probe
                hit = True
                break
        for slot in range(way, 0, -1):
            state[group, slot] = state[group, slot - 1]
        state[group, 0] = tag
        hits[index] = hit
    return hits


#: numba-compiled head-LRU pass, or ``None`` when numba is absent/disabled.
_lru_heads_jit = jit_recurrence(_lru_heads)


def _simulate_rounds(
    head_tags: np.ndarray,
    group_start: np.ndarray,
    group_size: np.ndarray,
    associativity: int,
    rounds: int,
) -> np.ndarray:
    """Advance every set's LRU stack one access per round, vectorized."""
    # Lay the recency matrix out in descending access-count order: the
    # sets still active in round r are then exactly rows [0, active_r),
    # so every round works on prefix slices instead of fancy gathers.
    by_depth = np.argsort(-group_size, kind="stable")
    depth_rank = np.empty(by_depth.size, dtype=np.int64)
    depth_rank[by_depth] = np.arange(by_depth.size)

    group_of_head = np.repeat(np.arange(group_size.size), group_size)
    round_of_head = np.arange(head_tags.size) - np.repeat(group_start, group_size)
    round_major = np.lexsort((depth_rank[group_of_head], round_of_head))
    tags_round_major = head_tags[round_major]
    active_per_round = np.bincount(round_of_head, minlength=rounds)
    bounds = np.concatenate(([0], np.cumsum(active_per_round)))

    # tags are non-negative (addresses are), so -1 marks an empty way.
    state = np.full((group_size.size, associativity), -1, dtype=np.int64)
    shifted = np.empty_like(state)
    ways = np.arange(associativity)
    hit_round_major = np.empty(head_tags.size, dtype=bool)
    for round_index in range(rounds):
        begin, end = bounds[round_index], bounds[round_index + 1]
        active = end - begin
        resident = state[:active]
        tag_now = tags_round_major[begin:end]
        match = resident == tag_now[:, None]
        hit = match.any(axis=1)
        # Hits rotate [0, way] right by one; misses rotate the whole row
        # (LRU eviction), which is the same rotation with way = ways - 1.
        way = np.where(hit, match.argmax(axis=1), associativity - 1)
        shifted[:active, 0] = tag_now
        shifted[:active, 1:] = resident[:, :-1]
        state[:active] = np.where(
            ways[None, :] <= way[:, None], shifted[:active], resident
        )
        hit_round_major[begin:end] = hit
    head_hits = np.empty(head_tags.size, dtype=bool)
    head_hits[round_major] = hit_round_major
    return head_hits


def _simulate_sequential(
    sorted_sets: np.ndarray,
    sorted_tags: np.ndarray,
    associativity: int,
    hits: np.ndarray,
) -> None:
    """Flat exact-LRU pass over set-grouped columns (skew fallback)."""
    stacks: dict[int, OrderedDict[int, None]] = {}
    for position, (set_index, tag) in enumerate(
        zip(sorted_sets.tolist(), sorted_tags.tolist())
    ):
        stack = stacks.get(set_index)
        if stack is None:
            stack = stacks[set_index] = OrderedDict()
        if tag in stack:
            stack.move_to_end(tag)
            hits[position] = True
            continue
        hits[position] = False
        stack[tag] = None
        if len(stack) > associativity:
            stack.popitem(last=False)
