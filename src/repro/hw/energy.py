"""Energy accounting for the EXMA accelerator, the CPU and DRAM.

Table I of the paper gives per-operation energies and areas for each
accelerator component (inference engine, scheduling queue, caches,
de/compression unit, scheduling logic, DMA controller) plus the 223.8 mW
accelerator leakage; McPAT supplies the CPU power and DRAMPower the DRAM
power in the paper.  This module holds those constants and the bookkeeping
used for the Fig. 20 energy-reduction experiment and the Table II
throughput-per-Watt comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ComponentSpec:
    """Area and per-operation energy of one accelerator component."""

    name: str
    area_mm2: float
    energy_per_op_pj: float


#: Table I component inventory of the EXMA accelerator.
EXMA_COMPONENTS = (
    ComponentSpec("inference_engine", area_mm2=0.512, energy_per_op_pj=0.25),
    ComponentSpec("scheduling_queue", area_mm2=0.023, energy_per_op_pj=1.9),
    ComponentSpec("index_cache", area_mm2=0.084, energy_per_op_pj=2.62),
    ComponentSpec("base_cache", area_mm2=0.667, energy_per_op_pj=17.2),
    ComponentSpec("decompress", area_mm2=0.091, energy_per_op_pj=0.21),
    ComponentSpec("sched_and_row", area_mm2=0.035, energy_per_op_pj=1.02),
    ComponentSpec("dma_ctrl", area_mm2=0.21, energy_per_op_pj=3.42),
)

#: Accelerator totals from Table I.
EXMA_ACCELERATOR_AREA_MM2 = 1.62
EXMA_ACCELERATOR_LEAKAGE_W = 0.2238

#: Power of the DDR4 main memory subsystem used for every accelerator in
#: Table II (72 W for the 384 GB, 4-channel configuration).
DRAM_SYSTEM_POWER_W = 72.0

#: CPU baseline power (16-core server-class processor, McPAT estimate).
CPU_POWER_W = 95.0


@dataclass
class EnergyLedger:
    """Accumulates per-component operation counts and converts to joules."""

    op_counts: dict[str, int] = field(default_factory=dict)

    def record(self, component: str, count: int = 1) -> None:
        """Add *count* operations of *component*."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.op_counts[component] = self.op_counts.get(component, 0) + count

    def dynamic_energy_j(self) -> float:
        """Dynamic energy implied by the recorded operation counts.

        Summed in Table-I component order (not dict insertion order), so
        two ledgers with equal counts produce the bit-identical float no
        matter which component a replay happened to record first — the
        columnar and object replays must agree exactly.
        """
        known = {spec.name for spec in EXMA_COMPONENTS}
        for component in self.op_counts:
            if component not in known:
                raise KeyError(f"unknown component {component!r}")
        total_pj = 0.0
        for spec in EXMA_COMPONENTS:
            count = self.op_counts.get(spec.name)
            if count:
                total_pj += count * spec.energy_per_op_pj
        return total_pj * 1e-12

    def leakage_energy_j(self, seconds: float) -> float:
        """Static (leakage) energy over a window of *seconds*."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        return EXMA_ACCELERATOR_LEAKAGE_W * seconds

    def total_energy_j(self, seconds: float) -> float:
        """Dynamic plus leakage energy over a window of *seconds*."""
        return self.dynamic_energy_j() + self.leakage_energy_j(seconds)


@dataclass(frozen=True)
class SystemEnergyBreakdown:
    """Energy of one genome-analysis run, in joules, by component.

    Mirrors the stacked bars of Fig. 20: DRAM chip energy, DRAM interface
    (DDR4 I/O) energy, accelerator dynamic and leakage energy, and the CPU
    energy for the non-FM-Index portion of the application.
    """

    dram_chip_j: float
    dram_io_j: float
    accelerator_dynamic_j: float
    accelerator_leakage_j: float
    cpu_j: float

    @property
    def total_j(self) -> float:
        """Total energy of the run."""
        return (
            self.dram_chip_j
            + self.dram_io_j
            + self.accelerator_dynamic_j
            + self.accelerator_leakage_j
            + self.cpu_j
        )

    def normalised_to(self, baseline_total_j: float) -> float:
        """This run's energy relative to a baseline total."""
        if baseline_total_j <= 0:
            raise ValueError("baseline_total_j must be positive")
        return self.total_j / baseline_total_j
