"""The EXMA scheduling queue: a sorting content-addressable memory.

The accelerator buffers incoming FM-Index requests — (k-mer, pos) pairs —
in a CAM of 512 entries, 128 bits each (Table I).  The CAM supports the
sort operations the 2-stage scheduler needs: order the resident requests by
k-mer (stage 1) or by pos (stage 2).  Each DNA symbol is encoded with
3 bits ($, A, C, G, T), so a 128-bit entry comfortably holds a 15-mer plus
a 32-bit position, matching the paper's sizing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exma.search import OccRequest

#: Bits used to encode one DNA symbol in a CAM entry.
SYMBOL_BITS = 3

#: Bits used for the position field of a CAM entry.
POSITION_BITS = 32


@dataclass(frozen=True)
class CamConfig:
    """Scheduling-queue geometry."""

    entries: int = 512
    entry_bits: int = 128

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.entry_bits <= 0:
            raise ValueError("entries and entry_bits must be positive")

    def max_kmer_length(self) -> int:
        """Longest k-mer an entry can hold alongside its position."""
        return (self.entry_bits - POSITION_BITS) // SYMBOL_BITS

    @property
    def size_bytes(self) -> int:
        """Total CAM storage in bytes."""
        return self.entries * self.entry_bits // 8


class SchedulingQueue:
    """A bounded queue of Occ requests with CAM-style sorting.

    Requests beyond the capacity stay in an overflow list and only enter
    the CAM as entries drain — which is why a 256-entry CAM "cannot fully
    satisfy 2-stage scheduling" (Fig. 22): the scheduler can only reorder
    what is physically resident.
    """

    def __init__(self, config: CamConfig | None = None) -> None:
        self._config = config or CamConfig()
        self._entries: list[OccRequest] = []

    @property
    def config(self) -> CamConfig:
        """The CAM configuration."""
        return self._config

    @property
    def capacity(self) -> int:
        """Maximum number of resident requests."""
        return self._config.entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        """Whether the CAM is at capacity."""
        return len(self._entries) >= self.capacity

    def push(self, request: OccRequest) -> bool:
        """Insert a request; returns False when the CAM is full."""
        if self.full:
            return False
        self._entries.append(request)
        return True

    def extend(self, requests: list[OccRequest]) -> list[OccRequest]:
        """Insert as many requests as fit; returns the overflow."""
        overflow = []
        for request in requests:
            if not self.push(request):
                overflow.append(request)
        return overflow

    def sort_by_kmer(self) -> None:
        """Stage-1 sort: lexicographic by k-mer (packed code order)."""
        self._entries.sort(key=lambda r: r.packed_kmer)

    def sort_by_pos(self) -> None:
        """Stage-2 sort: by position value."""
        self._entries.sort(key=lambda r: r.pos)

    def drain(self) -> list[OccRequest]:
        """Remove and return every resident request in current order."""
        drained = self._entries
        self._entries = []
        return drained

    def peek(self) -> list[OccRequest]:
        """The resident requests in current order (no removal)."""
        return list(self._entries)
