"""The inference engine: Tangram-style processing-element arrays.

The EXMA accelerator adopts the Tangram neural-network accelerator as its
inference engine (Section IV-C1): four 8x8 PE arrays at 800 MHz, each PE an
8-bit multiply-accumulate ALU with a 32-byte register file, sharing a 16 KB
SRAM buffer per array.  The engine evaluates MTL index nodes; because those
models are tiny (a 10-neuron hidden layer plus a linear leaf), two arrays
already reach ~89 % of the four-array throughput (Fig. 22).

The model here converts a per-lookup MAC count into cycles and energy for
an arbitrary number of arrays, which is what the design-space exploration
sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PEArrayConfig:
    """Geometry and per-operation cost of the inference engine."""

    arrays: int = 4
    rows: int = 8
    cols: int = 8
    clock_mhz: float = 800.0
    mac_energy_pj: float = 0.25
    buffer_kb_per_array: int = 16

    def __post_init__(self) -> None:
        if min(self.arrays, self.rows, self.cols) <= 0:
            raise ValueError("array geometry must be positive")
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")

    @property
    def pes_per_array(self) -> int:
        """Processing elements in one array."""
        return self.rows * self.cols

    @property
    def total_pes(self) -> int:
        """Processing elements across all arrays."""
        return self.arrays * self.pes_per_array

    @property
    def macs_per_cycle(self) -> int:
        """Peak multiply-accumulates per cycle."""
        return self.total_pes


@dataclass(frozen=True)
class InferenceCost:
    """Cycles and energy of evaluating one MTL index lookup."""

    macs: int
    cycles: int
    energy_pj: float


class InferenceEngine:
    """Latency/energy model of MTL index inference on the PE arrays."""

    #: MACs to evaluate one shared node: 10 hidden neurons x 2 inputs, the
    #: sigmoid approximations, and the output dot product.
    SHARED_NODE_MACS = 2 * 10 + 10 + 10

    #: MACs for a linear leaf (one multiply-accumulate plus the scale).
    LEAF_MACS = 2

    def __init__(self, config: PEArrayConfig | None = None) -> None:
        self._config = config or PEArrayConfig()

    @property
    def config(self) -> PEArrayConfig:
        """The PE-array configuration."""
        return self._config

    def lookup_cost(self, shared_nodes: int = 1, leaves: int = 1) -> InferenceCost:
        """Cost of one index lookup traversing the given node counts."""
        if shared_nodes < 0 or leaves < 0:
            raise ValueError("node counts must be non-negative")
        macs = shared_nodes * self.SHARED_NODE_MACS + leaves * self.LEAF_MACS
        cycles = max(1, -(-macs // self._config.macs_per_cycle))
        energy = macs * self._config.mac_energy_pj
        return InferenceCost(macs=macs, cycles=cycles, energy_pj=energy)

    def batch_cost(self, lookups: int, shared_nodes: int = 1, leaves: int = 1) -> InferenceCost:
        """Cost of a batch of identical lookups, pipelined across arrays.

        Lookups are independent, so arrays process them concurrently; the
        cycle count is the serialised MAC work divided by the engine's
        MAC/cycle throughput.
        """
        if lookups < 0:
            raise ValueError("lookups must be non-negative")
        single = self.lookup_cost(shared_nodes, leaves)
        total_macs = single.macs * lookups
        cycles = max(1, -(-total_macs // self._config.macs_per_cycle)) if lookups else 0
        return InferenceCost(
            macs=total_macs, cycles=cycles, energy_pj=single.energy_pj * lookups
        )

    def cycles_to_seconds(self, cycles: int) -> float:
        """Convert engine cycles to seconds at the configured clock."""
        return cycles / (self._config.clock_mhz * 1e6)
