"""Request schedulers: FR-FCFS baseline and EXMA's 2-stage scheduling.

Prior FM-Index accelerators schedule requests First-Ready First-Come-
First-Serve, which ignores the data the requests carry.  EXMA's 2-stage
scheduler (Section IV-C2) instead reorders the requests resident in its
CAM:

* stage 1 sorts by k-mer, so consecutively issued requests touch adjacent
  base-array entries and the *base cache* hit rate rises;
* stage 2 sorts by ``pos``, so consecutive MTL-index inferences reuse the
  same index nodes and the *index cache* hit rate rises.

Both schedulers operate on batches bounded by the CAM capacity: requests
that do not fit are scheduled in a later batch, which is what limits the
256-entry CAM configuration in Fig. 22.

The object classes replay the CAM one :class:`~repro.exma.search
.OccRequest` at a time and remain the oracle reference; the columnar
replay uses :func:`scheduled_orders` / :func:`keep_open_flags`, which
compute the identical stage-1/stage-2 orders and page-policy hints for a
whole packed request stream with a handful of ``np.lexsort`` calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Protocol, Sequence

import numpy as np

from ..engine.window import CoalescingWindow
from ..exma.search import OccRequest
from .cam import CamConfig, SchedulingQueue


@dataclass(frozen=True)
class ScheduledBatch:
    """One batch of requests in the order the accelerator will issue them.

    ``stage1`` is the order used for base-cache accesses (after the k-mer
    sort for the 2-stage scheduler); ``stage2`` is the order used for
    index-cache accesses and inference (after the pos sort).  FR-FCFS uses
    the arrival order for both.
    """

    stage1: tuple[OccRequest, ...]
    stage2: tuple[OccRequest, ...]

    def __len__(self) -> int:
        return len(self.stage1)


class FrFcfsScheduler:
    """First-come-first-serve batching (the baseline policy)."""

    def __init__(self, cam_config: CamConfig | None = None) -> None:
        self._cam_config = cam_config or CamConfig()

    @property
    def batch_size(self) -> int:
        """Requests per batch (bounded by the CAM capacity)."""
        return self._cam_config.entries

    def schedule(self, requests: Iterable[OccRequest]) -> Iterator[ScheduledBatch]:
        """Yield batches in arrival order."""
        batch: list[OccRequest] = []
        for request in requests:
            batch.append(request)
            if len(batch) >= self.batch_size:
                ordered = tuple(batch)
                yield ScheduledBatch(stage1=ordered, stage2=ordered)
                batch = []
        if batch:
            ordered = tuple(batch)
            yield ScheduledBatch(stage1=ordered, stage2=ordered)


class TwoStageScheduler:
    """EXMA's 2-stage scheduler backed by the sorting CAM."""

    def __init__(self, cam_config: CamConfig | None = None) -> None:
        self._cam_config = cam_config or CamConfig()

    @property
    def batch_size(self) -> int:
        """Requests per batch (bounded by the CAM capacity)."""
        return self._cam_config.entries

    def schedule(self, requests: Iterable[OccRequest]) -> Iterator[ScheduledBatch]:
        """Yield batches with stage-1 (k-mer) and stage-2 (pos) orderings."""
        queue = SchedulingQueue(self._cam_config)
        pending = list(requests)
        index = 0
        while index < len(pending) or len(queue) > 0:
            while not queue.full and index < len(pending):
                queue.push(pending[index])
                index += 1
            queue.sort_by_kmer()
            stage1 = tuple(queue.peek())
            queue.sort_by_pos()
            stage2 = tuple(queue.drain())
            yield ScheduledBatch(stage1=stage1, stage2=stage2)


class RequestScheduler(Protocol):
    """What both schedulers expose (for windowed scheduling helpers)."""

    def schedule(self, requests: Iterable[OccRequest]) -> Iterator[ScheduledBatch]:
        ...


def schedule_windowed(
    scheduler: RequestScheduler,
    batch_streams: Iterable[Sequence[OccRequest]],
    window: int | CoalescingWindow = 1,
) -> Iterator[ScheduledBatch]:
    """Schedule consecutive batch streams through a coalescing window.

    The object-path twin of the windowed replay, kept for the test suite
    and exploratory use: the window merges the streams array-side, and
    request objects materialise here, at the CAM boundary, as the
    schedulers iterate each flush's lazy ``requests`` view.  Each unique
    ``(k-mer, pos)`` pair of a window is scheduled exactly once (the
    Fig. 15 sweep knob).  *window* may be a capacity or a prebuilt window
    instance.  The production pipeline never takes this path — the
    accelerator's columnar replay orders each flush's packed arrays with
    :func:`scheduled_orders`; for the full pipeline with per-flush
    cycle/energy accounting, see :meth:`repro.accel.exma_accelerator
    .ExmaAccelerator.run_stream`.
    """
    if isinstance(window, int):
        window = CoalescingWindow(window)

    def merged() -> Iterator[OccRequest]:
        for flushed in window.stream(batch_streams):
            yield from flushed.requests

    yield from scheduler.schedule(merged())


def scheduled_orders(
    kmers: np.ndarray,
    positions: np.ndarray,
    cam_entries: int,
    two_stage: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Stage-1/stage-2 issue orders of a whole packed request stream.

    The columnar equivalent of running :class:`FrFcfsScheduler` /
    :class:`TwoStageScheduler` over the stream and concatenating every
    batch's ``stage1``/``stage2`` tuples: returns two index arrays into
    *kmers*/*positions* whose consecutive ``cam_entries``-sized slices are
    the CAM batches in issue order.  The 2-stage orders reproduce the
    sorting CAM exactly — stage 1 is the stable per-batch k-mer sort of
    the arrival order, stage 2 the stable per-batch pos sort of the
    stage-1 order — because :meth:`~repro.hw.cam.SchedulingQueue
    .sort_by_pos` reorders the already k-mer-sorted residents.
    """
    if cam_entries <= 0:
        raise ValueError("cam_entries must be positive")
    count = int(np.asarray(kmers).size)
    arrival = np.arange(count, dtype=np.int64)
    if not two_stage or count == 0:
        return arrival, arrival
    batch_of = arrival // cam_entries
    stage1 = np.lexsort((arrival, kmers, batch_of))
    stage1_rank = np.empty(count, dtype=np.int64)
    stage1_rank[stage1] = arrival
    stage2 = np.lexsort((stage1_rank, positions, batch_of))
    return stage1, stage2


def keep_open_flags(stage2_kmers: np.ndarray, cam_entries: int) -> np.ndarray:
    """Keep-row-open hints for a stream already in stage-2 issue order.

    The columnar equivalent of :func:`pair_requests_by_kmer` applied to
    every CAM batch: slot *i*'s hint is True when a later slot of the
    same batch targets the same k-mer.
    """
    if cam_entries <= 0:
        raise ValueError("cam_entries must be positive")
    stage2_kmers = np.asarray(stage2_kmers)
    count = stage2_kmers.size
    keep = np.zeros(count, dtype=bool)
    if count == 0:
        return keep
    slots = np.arange(count, dtype=np.int64)
    grouped = np.lexsort((slots, stage2_kmers, slots // cam_entries))
    followed = np.zeros(count, dtype=bool)
    followed[:-1] = (stage2_kmers[grouped[1:]] == stage2_kmers[grouped[:-1]]) & (
        grouped[1:] // cam_entries == grouped[:-1] // cam_entries
    )
    keep[grouped] = followed
    return keep


def pair_requests_by_kmer(batch: tuple[OccRequest, ...]) -> list[tuple[OccRequest, bool]]:
    """Annotate each request with a keep-row-open hint (dynamic page policy).

    The EXMA controller keeps a DRAM row open after a request when another
    pending request in the scheduling queue targets the same k-mer (the
    low/high pair of one search iteration).  The hint is True when the
    *next* request with the same k-mer is still pending in the batch.
    """
    remaining: dict[int, int] = {}
    for request in batch:
        remaining[request.packed_kmer] = remaining.get(request.packed_kmer, 0) + 1
    annotated = []
    for request in batch:
        remaining[request.packed_kmer] -= 1
        annotated.append((request, remaining[request.packed_kmer] > 0))
    return annotated
