"""Optional numba JIT gate for the hardware models' scalar recurrences.

PR 5 vectorized everything in the accelerator replay that does not
genuinely chain from one request to the next; what survived are two
scalar recurrences — the DRAM addr/data-bus + bank/stream ready chain in
:meth:`repro.hw.dram.DRAMModel.process_columns` and the exact-LRU recency
update in :func:`repro.hw.cache.simulate_lru_hits`.  Both are pure int64
loops over preallocated arrays, which is exactly the shape ``numba.njit``
compiles well, so this module compiles them when numba is importable and
leaves the tuned pure-Python fallbacks in place when it is not.

The contract is **bit-identical outputs**: the jitted functions run the
same integer arithmetic in the same order as their fallbacks, so the
existing hypothesis oracles (columnar vs. object DRAM/cache models) pin
both paths.  ``nogil=True`` matters beyond single-call latency: it lets
the epoch-parallel replay pool (:mod:`repro.accel.parallel`) scale with
*thread* workers, because the recurrences — the dominant serial
fraction of an epoch — release the GIL while they run.

numba is an optional dependency: the CI image installs it (see
``requirements-ci.txt``), the dev container may not.  Set
``REPRO_NO_NUMBA=1`` to force the pure-Python fallbacks even when numba
is installed — one CI leg runs the quick suite that way so the fallback
path stays covered.
"""

from __future__ import annotations

import os
from typing import Callable

__all__ = ["HAVE_NUMBA", "NO_NUMBA_ENV", "jit_recurrence", "numba_disabled"]

#: When set truthy, numba is ignored even if importable: every recurrence
#: runs its pure-Python fallback.  Lets CI pin the fallback path and lets
#: operators rule numba out when debugging.
NO_NUMBA_ENV = "REPRO_NO_NUMBA"


def numba_disabled() -> bool:
    """Whether ``REPRO_NO_NUMBA`` forces the pure-Python fallbacks."""
    return os.environ.get(NO_NUMBA_ENV, "").lower() in ("1", "true", "yes", "on")


try:
    if numba_disabled():
        raise ImportError("numba disabled via " + NO_NUMBA_ENV)
    from numba import njit as _njit  # type: ignore[import-not-found]

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - depends on the environment
    _njit = None
    HAVE_NUMBA = False


def jit_recurrence(fn: Callable) -> Callable | None:
    """Compile *fn* with ``njit(cache=True, nogil=True)``, or ``None``.

    Returns ``None`` when numba is absent or disabled, so call sites
    dispatch with a plain ``is not None`` check and keep their fallback
    loop as the only other branch.  ``cache=True`` persists the compiled
    artifact next to the source, so process-pool replay workers do not
    each pay the compile; ``nogil=True`` lets thread-pool replay workers
    overlap the recurrences.
    """
    if not HAVE_NUMBA:
        return None
    return _njit(cache=True, nogil=True)(fn)
