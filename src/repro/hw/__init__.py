"""Hardware substrate: DRAM, caches, CAM, schedulers, PE arrays, energy."""

from .cache import CacheStats, SetAssociativeCache, simulate_lru_hits
from .cam import CamConfig, SchedulingQueue
from .dram import (
    BURST_BYTES,
    DDR4Config,
    DRAMEnergyModel,
    DRAMModel,
    DRAMStats,
    MemoryRequest,
    MemoryTrace,
    PagePolicy,
    rows_for_bytes,
)
from .energy import (
    CPU_POWER_W,
    DRAM_SYSTEM_POWER_W,
    EXMA_ACCELERATOR_AREA_MM2,
    EXMA_ACCELERATOR_LEAKAGE_W,
    EXMA_COMPONENTS,
    ComponentSpec,
    EnergyLedger,
    SystemEnergyBreakdown,
)
from .pe_array import InferenceCost, InferenceEngine, PEArrayConfig
from .scheduler import (
    FrFcfsScheduler,
    ScheduledBatch,
    TwoStageScheduler,
    keep_open_flags,
    pair_requests_by_kmer,
    scheduled_orders,
)

__all__ = [
    "CacheStats",
    "SetAssociativeCache",
    "simulate_lru_hits",
    "CamConfig",
    "SchedulingQueue",
    "BURST_BYTES",
    "DDR4Config",
    "DRAMEnergyModel",
    "DRAMModel",
    "DRAMStats",
    "MemoryRequest",
    "MemoryTrace",
    "PagePolicy",
    "rows_for_bytes",
    "CPU_POWER_W",
    "DRAM_SYSTEM_POWER_W",
    "EXMA_ACCELERATOR_AREA_MM2",
    "EXMA_ACCELERATOR_LEAKAGE_W",
    "EXMA_COMPONENTS",
    "ComponentSpec",
    "EnergyLedger",
    "SystemEnergyBreakdown",
    "InferenceCost",
    "InferenceEngine",
    "PEArrayConfig",
    "FrFcfsScheduler",
    "ScheduledBatch",
    "TwoStageScheduler",
    "keep_open_flags",
    "pair_requests_by_kmer",
    "scheduled_orders",
]
