"""Transaction-level DDR4 main-memory timing model.

The paper evaluates every accelerator against the same DDR4-2400 main
memory (Table I: 4 channels, 3 DIMMs/channel, 4 ranks/DIMM, 16 chips/rank,
2 KB rows, tRCD-tCAS-tRP = 16-16-16) and argues entirely in terms of row
activations, row-buffer hits, data-bus occupancy and address-bus
contention.  This model captures exactly those effects:

* per-bank row-buffer state with open-, close- and *dynamic*-page policies
  (the EXMA controller keeps a row open only while a second request to the
  same k-mer is pending — Section IV-C3);
* a per-channel command/address bus where every PRE/ACT/RD command takes
  one slot, which is what throttles MEDAL's chip-level parallelism
  (Fig. 7);
* a per-channel data bus whose busy fraction is the bandwidth-utilisation
  metric of Fig. 21;
* activation / read / precharge / background energy in the style of
  DRAMPower.

The model is intentionally transaction-level, not cycle-accurate gem5 +
DRAMsim2; DESIGN.md records this substitution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from .jit import jit_recurrence

#: DDR4 burst length in bytes for a 64-bit channel (BL8).
BURST_BYTES = 64


def _bus_recurrence(
    banks: np.ndarray,
    streams: np.ndarray,
    commands: np.ndarray,
    latencies: np.ndarray,
    bursts: np.ndarray,
    bumps: np.ndarray,
    bank_count: int,
    stream_count: int,
) -> int:
    """The serial bus/bank/stream timing chain over precomputed columns.

    Written as a plain int64 scalar loop so numba can compile it
    (``nogil``, so thread-pool replay workers overlap here); the integer
    arithmetic is identical to the tolist-based fallback loop in
    :meth:`DRAMModel.process_columns`, so both produce the same cycle
    count bit for bit.
    """
    bank_ready = np.zeros(bank_count, dtype=np.int64)
    stream_ready = np.zeros(stream_count, dtype=np.int64)
    addr_bus_free = 0
    data_bus_free = 0
    for index in range(banks.size):
        bank = banks[index]
        stream = streams[index]
        issue = bank_ready[bank]
        pending = stream_ready[stream]
        if pending > issue:
            issue = pending
        if addr_bus_free > issue:
            issue = addr_bus_free
        addr_bus_free = issue + commands[index]
        data_start = issue + latencies[index]
        if data_bus_free > data_start:
            data_start = data_bus_free
        data_end = data_start + bursts[index]
        data_bus_free = data_end
        bank_ready[bank] = data_end + bumps[index]
        stream_ready[stream] = data_end
    return data_bus_free


#: numba-compiled recurrence, or ``None`` when numba is absent/disabled.
_bus_recurrence_jit = jit_recurrence(_bus_recurrence)


class PagePolicy(enum.Enum):
    """Row-buffer management policy."""

    CLOSE = "close"
    OPEN = "open"
    DYNAMIC = "dynamic"


@dataclass(frozen=True)
class DDR4Config:
    """Geometry and timing of the DDR4-2400 main memory (Table I)."""

    channels: int = 4
    dimms_per_channel: int = 3
    ranks_per_dimm: int = 4
    chips_per_rank: int = 16
    bank_groups_per_rank: int = 2
    banks_per_group: int = 2
    row_bytes: int = 2048
    trcd: int = 16
    tcas: int = 16
    trp: int = 16
    clock_mhz: float = 1200.0
    bus_bytes_per_cycle: int = 16  # 64-bit bus, double data rate
    address_bus_bits: int = 17

    def __post_init__(self) -> None:
        if min(
            self.channels,
            self.dimms_per_channel,
            self.ranks_per_dimm,
            self.chips_per_rank,
            self.bank_groups_per_rank,
            self.banks_per_group,
            self.row_bytes,
        ) <= 0:
            raise ValueError("all geometry parameters must be positive")
        if min(self.trcd, self.tcas, self.trp) < 0:
            raise ValueError("timings must be non-negative")

    @property
    def banks_per_channel(self) -> int:
        """Independently schedulable banks on one channel."""
        return (
            self.dimms_per_channel
            * self.ranks_per_dimm
            * self.bank_groups_per_rank
            * self.banks_per_group
        )

    @property
    def peak_bandwidth_bytes_per_cycle(self) -> float:
        """Aggregate peak data-bus bandwidth across channels."""
        return self.channels * self.bus_bytes_per_cycle

    @property
    def peak_bandwidth_gbs(self) -> float:
        """Aggregate peak bandwidth in GB/s."""
        return self.peak_bandwidth_bytes_per_cycle * self.clock_mhz * 1e6 / 1e9

    @property
    def total_capacity_gb(self) -> int:
        """Main-memory capacity in GB (Table I lists 384 GB)."""
        return 384

    def burst_cycles(self, nbytes: int) -> int:
        """Data-bus cycles needed to transfer *nbytes*."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        return max(1, -(-nbytes // self.bus_bytes_per_cycle))


@dataclass(frozen=True)
class DRAMEnergyModel:
    """Per-event DRAM energy in nanojoules (DRAMPower-style constants)."""

    activate_nj: float = 2.7
    precharge_nj: float = 1.7
    read_per_64b_nj: float = 4.2
    write_per_64b_nj: float = 4.6
    background_nw_per_cycle: float = 35.0

    def access_energy_nj(self, activations: int, reads_64b: int, precharges: int, cycles: int) -> float:
        """Total energy for a window of activity."""
        return (
            activations * self.activate_nj
            + precharges * self.precharge_nj
            + reads_64b * self.read_per_64b_nj
            + cycles * self.background_nw_per_cycle * 1e-3
        )


@dataclass(frozen=True)
class MemoryRequest:
    """One DRAM read request.

    ``row`` is a global row identifier; the model derives channel and bank
    from it.  ``nbytes`` is the payload actually needed by the requester
    (the data bus still moves whole bursts).  ``keep_open_hint`` is set by
    the EXMA controller when a second request to the same row is already
    pending (dynamic page policy); ``stream`` identifies the independent
    request stream (query) the request belongs to, which determines how
    much latency can be overlapped.
    """

    row: int
    nbytes: int = BURST_BYTES
    keep_open_hint: bool = False
    stream: int = 0


@dataclass
class DRAMStats:
    """Aggregate results of replaying a request trace."""

    requests: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    activations: int = 0
    precharges: int = 0
    bytes_transferred: int = 0
    data_bus_busy_cycles: int = 0
    address_bus_busy_cycles: int = 0
    total_cycles: int = 0
    energy_nj: float = 0.0

    @property
    def row_hit_rate(self) -> float:
        """Fraction of requests that hit an open row."""
        if self.requests == 0:
            return 0.0
        return self.row_hits / self.requests

    @property
    def bandwidth_utilization(self) -> float:
        """Fraction of data-bus cycles carrying useful data (Fig. 21)."""
        if self.total_cycles == 0:
            return 0.0
        return min(1.0, self.data_bus_busy_cycles / self.total_cycles)

    def seconds(self, clock_mhz: float) -> float:
        """Wall-clock time of the window at the given DRAM clock."""
        if clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")
        return self.total_cycles / (clock_mhz * 1e6)


@dataclass
class MemoryTrace:
    """A DRAM request trace as aligned column arrays.

    The columnar twin of ``list[MemoryRequest]``: one int64/bool column per
    request field, in issue order.  The accelerator's replay builds one
    trace per run with pure array arithmetic (no request objects), shards
    it across channels by row, and hands each shard to
    :meth:`DRAMModel.process_columns`.
    """

    rows: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    nbytes: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    keep_open: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=bool))
    streams: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    def __len__(self) -> int:
        return int(self.rows.size)

    @classmethod
    def from_requests(cls, requests: "list[MemoryRequest]") -> "MemoryTrace":
        """Pack an object trace into columns (tests and adapters)."""
        return cls(
            rows=np.fromiter((r.row for r in requests), np.int64, len(requests)),
            nbytes=np.fromiter((r.nbytes for r in requests), np.int64, len(requests)),
            keep_open=np.fromiter(
                (r.keep_open_hint for r in requests), bool, len(requests)
            ),
            streams=np.fromiter((r.stream for r in requests), np.int64, len(requests)),
        )

    def take(self, indices: np.ndarray) -> "MemoryTrace":
        """The sub-trace at *indices*, order preserved (channel sharding)."""
        return MemoryTrace(
            rows=self.rows[indices],
            nbytes=self.nbytes[indices],
            keep_open=self.keep_open[indices],
            streams=self.streams[indices],
        )

    def split_channels(self, channels: int) -> "list[MemoryTrace]":
        """Shard by ``row % channels``, preserving per-channel issue order."""
        if channels <= 0:
            raise ValueError("channels must be positive")
        assignment = self.rows % channels
        return [self.take(np.flatnonzero(assignment == c)) for c in range(channels)]


@dataclass
class _BankState:
    open_row: int | None = None
    ready_cycle: int = 0


class DRAMModel:
    """Replays an ordered stream of :class:`MemoryRequest` on one channel.

    The model serialises command and data bus usage, lets banks overlap
    their row-cycle latencies, and applies the configured page policy.
    Only one channel is modelled explicitly; the accelerator layer shards
    traffic across channels and aggregates.
    """

    def __init__(
        self,
        config: DDR4Config | None = None,
        page_policy: PagePolicy = PagePolicy.CLOSE,
        energy_model: DRAMEnergyModel | None = None,
        chip_level_parallelism: bool = False,
    ) -> None:
        self._config = config or DDR4Config()
        self._policy = page_policy
        self._energy = energy_model or DRAMEnergyModel()
        self._chip_parallel = chip_level_parallelism

    @property
    def config(self) -> DDR4Config:
        """The DDR4 configuration in use."""
        return self._config

    @property
    def page_policy(self) -> PagePolicy:
        """The configured page policy."""
        return self._policy

    def process(self, requests: list[MemoryRequest]) -> DRAMStats:
        """Replay *requests* in order and return aggregate statistics."""
        cfg = self._config
        stats = DRAMStats()
        banks = [_BankState() for _ in range(cfg.banks_per_channel)]
        addr_bus_free = 0
        data_bus_free = 0
        stream_ready: dict[int, int] = {}

        for request in requests:
            if request.nbytes <= 0:
                raise ValueError("request nbytes must be positive")
            bank_index = request.row % cfg.banks_per_channel
            bank = banks[bank_index]
            stats.requests += 1

            earliest = max(bank.ready_cycle, stream_ready.get(request.stream, 0))

            # Command sequence and its address-bus slots.
            commands = 1  # RD / partial-row column access
            latency = cfg.tcas
            if bank.open_row is None:
                commands += 1  # ACT
                latency += cfg.trcd
                stats.row_misses += 1
                stats.activations += 1
            elif bank.open_row == request.row:
                stats.row_hits += 1
            else:
                commands += 2  # PRE + ACT
                latency += cfg.trp + cfg.trcd
                stats.row_conflicts += 1
                stats.activations += 1
                stats.precharges += 1

            # MEDAL-style chip-level parallelism issues one command pair per
            # chip access; the partial-row payload is smaller but the
            # shared 17-bit address bus still carries every command.
            issue = max(earliest, addr_bus_free)
            addr_bus_free = issue + commands
            stats.address_bus_busy_cycles += commands

            burst = cfg.burst_cycles(request.nbytes)
            data_start = max(issue + latency, data_bus_free)
            data_end = data_start + burst
            data_bus_free = data_end
            stats.data_bus_busy_cycles += burst
            stats.bytes_transferred += request.nbytes

            # Page-policy handling decides the bank's next state.
            close_now = self._should_close(request)
            if close_now:
                bank.open_row = None
                bank.ready_cycle = data_end + cfg.trp
                stats.precharges += 1
            else:
                bank.open_row = request.row
                bank.ready_cycle = data_end

            stream_ready[request.stream] = data_end
            stats.total_cycles = max(stats.total_cycles, data_end)

        reads_64b = max(1, stats.bytes_transferred // BURST_BYTES)
        stats.energy_nj = self._energy.access_energy_nj(
            stats.activations, reads_64b, stats.precharges, stats.total_cycles
        )
        return stats

    def process_columns(self, trace: MemoryTrace) -> DRAMStats:
        """Replay a columnar trace; identical statistics to :meth:`process`.

        Everything that does not genuinely chain from one request to the
        next is vectorized up front: bank assignment, the page-policy
        close decision, the row hit/miss/conflict classification (each
        bank's next state is a pure function of its previous request's row
        and close decision, so one stable per-bank groupby decides every
        request at once), command counts, latencies and burst cycles.
        What remains is the timing recurrence itself — the address-bus and
        data-bus scalars plus the per-bank/per-stream ready cycles that
        actually carry between requests — executed as one tight pass over
        the precomputed columns.
        """
        cfg = self._config
        stats = DRAMStats()
        count = len(trace)
        if count == 0:
            stats.energy_nj = self._energy.access_energy_nj(0, 1, 0, 0)
            return stats
        nbytes = trace.nbytes
        if int(nbytes.min()) <= 0:
            raise ValueError("request nbytes must be positive")

        banks = trace.rows % cfg.banks_per_channel
        if self._policy is PagePolicy.CLOSE:
            closes = np.ones(count, dtype=bool)
        elif self._policy is PagePolicy.OPEN:
            closes = np.zeros(count, dtype=bool)
        else:
            closes = ~trace.keep_open

        # Per-bank previous-request classification: a bank presents an
        # open row to request i exactly when its previous request exists
        # and did not close, and the row matches.
        order = np.argsort(banks, kind="stable")
        rows_grouped = trace.rows[order]
        same_bank = np.zeros(count, dtype=bool)
        same_bank[1:] = banks[order][1:] == banks[order][:-1]
        open_row = np.zeros(count, dtype=bool)
        open_row[1:] = same_bank[1:] & ~closes[order][:-1]
        same_row = np.zeros(count, dtype=bool)
        same_row[1:] = rows_grouped[1:] == rows_grouped[:-1]
        hit_grouped = open_row & same_row
        conflict_grouped = open_row & ~same_row
        hits = np.empty(count, dtype=bool)
        conflicts = np.empty(count, dtype=bool)
        hits[order] = hit_grouped
        conflicts[order] = conflict_grouped
        misses = ~hits & ~conflicts

        commands = 1 + misses + 2 * conflicts
        latency = cfg.tcas + cfg.trcd * (misses | conflicts) + cfg.trp * conflicts
        bursts = np.maximum(1, -(-nbytes // cfg.bus_bytes_per_cycle))
        ready_bumps = cfg.trp * closes

        stats.requests = count
        stats.row_hits = int(hits.sum())
        stats.row_misses = int(misses.sum())
        stats.row_conflicts = int(conflicts.sum())
        stats.activations = stats.row_misses + stats.row_conflicts
        stats.precharges = stats.row_conflicts + int(closes.sum())
        stats.bytes_transferred = int(nbytes.sum())
        stats.data_bus_busy_cycles = int(bursts.sum())
        stats.address_bus_busy_cycles = int(commands.sum())

        # The genuinely serial recurrence: issue slots on the shared
        # address bus, data beats on the shared data bus, and the ready
        # cycles of the bank and stream each request belongs to.  The
        # jitted path runs the same int64 arithmetic compiled (and GIL-
        # free); the fallback keeps the tolist/zip loop, which beats
        # numpy scalar indexing in pure Python.
        stream_count = int(trace.streams.max()) + 1
        if _bus_recurrence_jit is not None:
            data_bus_free = int(
                _bus_recurrence_jit(
                    np.ascontiguousarray(banks, dtype=np.int64),
                    np.ascontiguousarray(trace.streams, dtype=np.int64),
                    np.ascontiguousarray(commands, dtype=np.int64),
                    np.ascontiguousarray(latency, dtype=np.int64),
                    np.ascontiguousarray(bursts, dtype=np.int64),
                    np.ascontiguousarray(ready_bumps, dtype=np.int64),
                    cfg.banks_per_channel,
                    stream_count,
                )
            )
        else:
            bank_ready = [0] * cfg.banks_per_channel
            stream_ready = [0] * stream_count
            addr_bus_free = 0
            data_bus_free = 0
            for bank, stream, command_count, request_latency, burst, bump in zip(
                banks.tolist(),
                trace.streams.tolist(),
                commands.tolist(),
                latency.tolist(),
                bursts.tolist(),
                ready_bumps.tolist(),
            ):
                issue = bank_ready[bank]
                pending = stream_ready[stream]
                if pending > issue:
                    issue = pending
                if addr_bus_free > issue:
                    issue = addr_bus_free
                addr_bus_free = issue + command_count
                data_start = issue + request_latency
                if data_bus_free > data_start:
                    data_start = data_bus_free
                data_end = data_start + burst
                data_bus_free = data_end
                bank_ready[bank] = data_end + bump
                stream_ready[stream] = data_end

        stats.total_cycles = data_bus_free
        reads_64b = max(1, stats.bytes_transferred // BURST_BYTES)
        stats.energy_nj = self._energy.access_energy_nj(
            stats.activations, reads_64b, stats.precharges, stats.total_cycles
        )
        return stats

    def _should_close(self, request: MemoryRequest) -> bool:
        """Whether the row is precharged right after this access."""
        if self._policy is PagePolicy.CLOSE:
            return True
        if self._policy is PagePolicy.OPEN:
            return False
        return not request.keep_open_hint


def rows_for_bytes(offset: int, nbytes: int, row_bytes: int) -> list[int]:
    """Row identifiers touched by a byte range (scalar reference helper).

    The columnar replay expands whole byte-range columns at once instead
    (see ``_expand_row_spans`` in :mod:`repro.accel.exma_accelerator`);
    this scalar form remains as the specification the tests check.
    """
    if nbytes <= 0:
        raise ValueError("nbytes must be positive")
    if row_bytes <= 0:
        raise ValueError("row_bytes must be positive")
    first = offset // row_bytes
    last = (offset + nbytes - 1) // row_bytes
    return list(range(first, last + 1))
