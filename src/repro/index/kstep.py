"""k-step FM-Index: search k DNA symbols per iteration.

The k-step FM-Index (Chacon et al., reference [36] of the paper) enlarges
the alphabet from :math:`\\Sigma` to :math:`\\Sigma^k` so each backward
search iteration consumes a k-mer instead of a single symbol, cutting the
number of memory accesses per query from ``2|Q|`` to ``2|Q|/k``.  The cost
is an exponentially growing Occ table — Eq. 2 of the paper, reproduced by
:func:`kstep_size_bytes` and used directly for Fig. 6(b).

The functional implementation here builds the enlarged-alphabet Occ/Count
structures on top of the plain suffix array: the rank of a k-mer-prefixed
suffix interval is computed exactly as in the 1-step case but with k-mer
comparisons.  Queries whose length is not a multiple of k fall back to
single-symbol steps for the leftover prefix, matching the reference
implementation's behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..genome.alphabet import SENTINEL
from .fmindex import Interval
from .suffix_array import suffix_array

#: Alphabet size used by the paper's size formula (A, C, G, T).
SIGMA = 4


def kstep_size_bytes(
    genome_length: int, k: int, bucket_width: int = 64
) -> int:
    """Eq. 2 of the paper: k-step FM-Index size in bytes.

    ``F = ceil(log2 |G|) * |G| * |Sigma|^k / (8 d) + |G| * ceil(log2(|Sigma|^k + 1)) / 8``
    """
    if genome_length <= 0:
        raise ValueError("genome_length must be positive")
    if k <= 0:
        raise ValueError("k must be positive")
    if bucket_width <= 0:
        raise ValueError("bucket_width must be positive")
    log_g = math.ceil(math.log2(genome_length))
    markers = log_g * genome_length * (SIGMA**k) / (8 * bucket_width)
    bwt = genome_length * math.ceil(math.log2(SIGMA**k + 1)) / 8
    return int(markers + bwt)


@dataclass
class KStepStats:
    """Counters for one k-step backward search."""

    iterations: int = 0
    occ_lookups: int = 0


class KStepFMIndex:
    """k-step FM-Index over a DNA reference.

    The implementation keeps the sorted suffix array and answers
    ``Occ(kmer, i)`` queries by counting, within the first ``i`` rows of
    the BW-matrix, how many rows are preceded by ``kmer`` — which is the
    enlarged-alphabet generalisation of the 1-step Occ table.  For the
    simulated genome sizes used in experiments this is exact and fast
    enough; the paper-scale storage cost is modelled analytically by
    :func:`kstep_size_bytes`.
    """

    def __init__(self, reference: str, k: int, bucket_width: int = 64) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if not reference:
            raise ValueError("reference must be non-empty")
        self._k = k
        self._bucket_width = bucket_width
        text = reference if reference.endswith(SENTINEL) else reference + SENTINEL
        self._text = text
        self._n = len(text)
        self._sa = suffix_array(text)
        # Sorted array of the k symbols preceding each suffix (circularly),
        # i.e. the k-step generalisation of the BWT column, stored per row.
        self._preceding = self._build_preceding_kmers()
        # Per-k-mer sorted row lists, so Occ(kmer, i) is a binary search.
        self._rows_by_kmer: dict[str, np.ndarray] = {}
        for row, kmer in enumerate(self._preceding):
            self._rows_by_kmer.setdefault(kmer, []).append(row)  # type: ignore[arg-type]
        self._rows_by_kmer = {
            kmer: np.array(rows, dtype=np.int64) for kmer, rows in self._rows_by_kmer.items()
        }

    def _build_preceding_kmers(self) -> list[str]:
        """For each BW-matrix row, the k symbols circularly preceding it."""
        text = self._text
        n = self._n
        k = self._k
        doubled = text + text
        preceding = []
        for pos in self._sa:
            start = (int(pos) - k) % n
            preceding.append(doubled[start : start + k])
        return preceding

    @property
    def k(self) -> int:
        """Number of DNA symbols consumed per search iteration."""
        return self._k

    @property
    def reference_length(self) -> int:
        """Length of the sentinel-terminated reference."""
        return self._n

    def full_interval(self) -> Interval:
        """The interval covering every BW-matrix row."""
        return Interval(0, self._n)

    def _count_kmer(self, kmer: str) -> int:
        """Count(kmer): rows of the BW-matrix starting with a smaller k-mer."""
        # Rows are sorted by suffix, so rows whose suffix starts with a
        # k-mer lexicographically smaller than *kmer* form a prefix of the
        # matrix.  Binary search over suffix prefixes.
        lo, hi = 0, self._n
        while lo < hi:
            mid = (lo + hi) // 2
            if self._suffix_prefix(mid) < kmer:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _suffix_prefix(self, row: int) -> str:
        """First k symbols of the suffix at *row* (sentinel-padded)."""
        pos = int(self._sa[row])
        prefix = self._text[pos : pos + self._k]
        if len(prefix) < self._k:
            prefix = prefix + SENTINEL * (self._k - len(prefix))
        return prefix

    def _occ_kmer(self, kmer: str, position: int, stats: KStepStats | None) -> int:
        """Occ(kmer, i): rows < i whose preceding k symbols equal *kmer*."""
        if stats is not None:
            stats.occ_lookups += 1
        rows = self._rows_by_kmer.get(kmer)
        if rows is None:
            return 0
        return int(np.searchsorted(rows, position, side="left"))

    def extend_backward(
        self, interval: Interval, kmer: str, stats: KStepStats | None = None
    ) -> Interval:
        """One k-step backward-search step consuming *kmer*."""
        if len(kmer) != self._k:
            raise ValueError(f"expected a {self._k}-mer, got {kmer!r}")
        count = self._count_kmer(kmer)
        low = count + self._occ_kmer(kmer, interval.low, stats)
        high = count + self._occ_kmer(kmer, interval.high, stats)
        return Interval(low, high)

    def backward_search(self, query: str, stats: KStepStats | None = None) -> Interval:
        """Backward search consuming k symbols per iteration.

        A leftover prefix shorter than k is handled with a direct binary
        search over suffixes prefixed by the partial query, matching how
        reference k-step implementations finish odd-length queries.
        """
        if not query:
            raise ValueError("query must be non-empty")
        interval = self.full_interval()
        pos = len(query)
        while pos >= self._k:
            kmer = query[pos - self._k : pos]
            interval = self.extend_backward(interval, kmer, stats)
            if stats is not None:
                stats.iterations += 1
            pos -= self._k
            if interval.empty:
                return interval
        if pos > 0:
            interval = self._refine_with_prefix(query[:pos], interval, stats)
        return interval

    def _refine_with_prefix(
        self, prefix: str, interval: Interval, stats: KStepStats | None
    ) -> Interval:
        """Narrow *interval* to rows whose suffix starts with prefix+current."""
        # The current interval covers rows whose suffixes start with the
        # already-matched portion of the query.  Prepending a partial
        # prefix p (|p| < k) keeps rows r such that the suffix starting at
        # SA[r] - |p| begins with p followed by the matched portion; count
        # them via the preceding-k-mer column.
        if stats is not None:
            stats.iterations += 1
            stats.occ_lookups += 2
        plen = len(prefix)
        matched_rows = []
        for row in range(interval.low, interval.high):
            preceding = self._preceding[row]
            if preceding[self._k - plen :] == prefix:
                matched_rows.append(row)
        if not matched_rows:
            return Interval(interval.low, interval.low)
        # Map each surviving row to the row of the extended match.
        extended_rows = []
        for row in matched_rows:
            pos = (int(self._sa[row]) - plen) % self._n
            extended_rows.append(self._row_of_position(pos))
        extended_rows.sort()
        return Interval(extended_rows[0], extended_rows[-1] + 1)

    def _row_of_position(self, position: int) -> int:
        """BW-matrix row whose suffix starts at *position*."""
        # Inverse suffix array lookup.
        if not hasattr(self, "_isa"):
            isa = np.empty(self._n, dtype=np.int64)
            isa[self._sa] = np.arange(self._n)
            self._isa = isa
        return int(self._isa[position])

    def occurrence_count(self, query: str) -> int:
        """Number of occurrences of *query* in the reference."""
        return self.backward_search(query).count

    def locate(self, interval: Interval) -> list[int]:
        """Reference positions for a BW-matrix interval."""
        if interval.empty:
            return []
        return sorted(int(self._sa[row]) for row in range(interval.low, interval.high))

    def find(self, query: str) -> list[int]:
        """All reference positions where *query* occurs (sorted)."""
        return self.locate(self.backward_search(query))

    def iterations_for_query(self, query_length: int) -> int:
        """Number of backward-search iterations a query of this length needs."""
        full, leftover = divmod(query_length, self._k)
        return full + (1 if leftover else 0)
