"""Suffix array construction.

The FM-Index, LISA's IP-BWT and the EXMA table are all derived from the
suffix array (equivalently, the sorted rows of the Burrows-Wheeler matrix)
of the sentinel-terminated reference.  This module implements the
prefix-doubling (Manber-Myers) algorithm with numpy radix-style sorting,
which is O(n log n) and comfortably handles the multi-megabase synthetic
references used in the experiments, plus a naive O(n^2 log n) constructor
kept as a cross-check oracle for tests.
"""

from __future__ import annotations

import numpy as np

from ..genome.alphabet import SENTINEL, encode


def _ensure_terminated(text: str) -> str:
    """Append the sentinel if *text* does not already end with it."""
    if not text:
        raise ValueError("text must be non-empty")
    if SENTINEL in text[:-1]:
        raise ValueError("sentinel may only appear at the end of the text")
    return text if text.endswith(SENTINEL) else text + SENTINEL


def suffix_array(text: str) -> np.ndarray:
    """Build the suffix array of *text* (sentinel-terminated).

    Returns an ``int64`` array ``sa`` such that ``sa[i]`` is the starting
    position of the i-th lexicographically smallest suffix.  The sentinel
    is appended automatically when missing.
    """
    terminated = _ensure_terminated(text)
    codes = encode(terminated).astype(np.int64)
    n = codes.size

    rank = codes.copy()
    order = np.argsort(rank, kind="stable")
    k = 1
    tmp = np.empty(n, dtype=np.int64)
    while True:
        # Rank pairs (rank[i], rank[i + k]) with -1 beyond the end.
        second = np.full(n, -1, dtype=np.int64)
        second[: n - k] = rank[k:]
        # Sort by (rank, second) using lexsort (last key is primary).
        order = np.lexsort((second, rank))
        tmp[order[0]] = 0
        prev = order[:-1]
        curr = order[1:]
        changed = (rank[curr] != rank[prev]) | (second[curr] != second[prev])
        tmp[curr] = np.cumsum(changed)
        rank, tmp = tmp.copy(), rank
        if rank[order[-1]] == n - 1:
            break
        k *= 2
    return order.astype(np.int64)


def naive_suffix_array(text: str) -> np.ndarray:
    """Reference O(n^2 log n) suffix array used as a test oracle."""
    terminated = _ensure_terminated(text)
    suffixes = sorted(range(len(terminated)), key=lambda i: terminated[i:])
    return np.array(suffixes, dtype=np.int64)


def inverse_suffix_array(sa: np.ndarray) -> np.ndarray:
    """Return ``isa`` such that ``isa[sa[i]] == i``."""
    sa = np.asarray(sa, dtype=np.int64)
    isa = np.empty_like(sa)
    isa[sa] = np.arange(sa.size, dtype=np.int64)
    return isa


def lcp_array(text: str, sa: np.ndarray | None = None) -> np.ndarray:
    """Longest-common-prefix array via Kasai's algorithm.

    ``lcp[i]`` is the length of the longest common prefix of the suffixes
    at ranks ``i-1`` and ``i`` (``lcp[0]`` is 0).  Used by the assembly
    substrate for overlap detection sanity checks.
    """
    terminated = _ensure_terminated(text)
    if sa is None:
        sa = suffix_array(terminated)
    sa = np.asarray(sa, dtype=np.int64)
    n = sa.size
    isa = inverse_suffix_array(sa)
    lcp = np.zeros(n, dtype=np.int64)
    h = 0
    for i in range(n):
        rank = isa[i]
        if rank > 0:
            j = sa[rank - 1]
            while i + h < n and j + h < n and terminated[i + h] == terminated[j + h]:
                h += 1
            lcp[rank] = h
            if h > 0:
                h -= 1
        else:
            h = 0
    return lcp
