"""Sampled suffix array for the ``locate`` step.

The final step of every FM-Index search converts BW-matrix rows back to
reference positions via ``SA[row]`` (line 7 of Fig. 3(d)).  Storing the
full suffix array costs ``|G| * ceil(log2 |G|)`` bits; production indexes
sample every r-th entry and recover the rest by walking the LF mapping.
This module provides that sampled structure plus its analytic size model,
which contributes the "SA" series of Fig. 10(a).
"""

from __future__ import annotations

import math

import numpy as np


class SampledSuffixArray:
    """Suffix-array samples at a fixed rank interval.

    Args:
        sa: the full suffix array.
        sample_rate: keep every ``sample_rate``-th entry (by rank).
    """

    def __init__(self, sa: np.ndarray, sample_rate: int = 32) -> None:
        if sample_rate <= 0:
            raise ValueError("sample_rate must be positive")
        sa = np.asarray(sa, dtype=np.int64)
        if sa.ndim != 1 or sa.size == 0:
            raise ValueError("sa must be a non-empty 1-D array")
        self._sample_rate = sample_rate
        self._n = int(sa.size)
        self._samples = sa[::sample_rate].copy()

    @property
    def sample_rate(self) -> int:
        """Rank distance between retained samples."""
        return self._sample_rate

    @property
    def sample_count(self) -> int:
        """Number of retained samples."""
        return int(self._samples.size)

    def is_sampled(self, row: int) -> bool:
        """Whether ``SA[row]`` is stored directly."""
        self._check_row(row)
        return row % self._sample_rate == 0

    def get_sampled(self, row: int) -> int:
        """Return ``SA[row]`` for a sampled row; raise otherwise."""
        if not self.is_sampled(row):
            raise KeyError(f"row {row} is not sampled (rate {self._sample_rate})")
        return int(self._samples[row // self._sample_rate])

    def _check_row(self, row: int) -> None:
        if row < 0 or row >= self._n:
            raise IndexError(f"row {row} out of range [0, {self._n})")

    def storage_bytes(self) -> int:
        """Bytes used by the retained samples (8 bytes per entry)."""
        return self.sample_count * 8


def sampled_sa_size_bytes(genome_length: int, sample_rate: int = 32) -> int:
    """Analytic sampled-SA size for a paper-scale genome."""
    if genome_length <= 0:
        raise ValueError("genome_length must be positive")
    if sample_rate <= 0:
        raise ValueError("sample_rate must be positive")
    entries = math.ceil((genome_length + 1) / sample_rate)
    bytes_per_entry = math.ceil(math.ceil(math.log2(genome_length + 1)) / 8)
    return entries * bytes_per_entry
