"""Burrows-Wheeler transform.

The BWT of a sentinel-terminated reference is the last column of the
Burrows-Wheeler matrix (all rotations sorted lexicographically); the i-th
BWT symbol is the symbol preceding the i-th smallest suffix.  Everything in
the repository builds on the suffix-array formulation rather than
materialising the full matrix.
"""

from __future__ import annotations

import numpy as np

from ..genome.alphabet import FULL_ALPHABET, SENTINEL
from .suffix_array import suffix_array


def bwt_from_suffix_array(text: str, sa: np.ndarray) -> str:
    """Compute the BWT of a sentinel-terminated *text* given its SA."""
    if not text.endswith(SENTINEL):
        raise ValueError("text must be sentinel-terminated")
    sa = np.asarray(sa, dtype=np.int64)
    if sa.size != len(text):
        raise ValueError("suffix array length does not match text length")
    chars = []
    for pos in sa:
        chars.append(text[pos - 1] if pos > 0 else text[-1])
    return "".join(chars)


def bwt(text: str) -> str:
    """Compute the BWT of *text*, appending the sentinel when missing."""
    terminated = text if text.endswith(SENTINEL) else text + SENTINEL
    return bwt_from_suffix_array(terminated, suffix_array(terminated))


def inverse_bwt(transformed: str) -> str:
    """Invert a BWT string back to the original sentinel-terminated text.

    Uses the standard last-to-first column mapping.  The result includes
    the trailing sentinel.
    """
    if transformed.count(SENTINEL) != 1:
        raise ValueError("BWT string must contain exactly one sentinel")
    n = len(transformed)
    codes = np.array([FULL_ALPHABET.index(c) for c in transformed], dtype=np.int64)
    # first[i]: rank of transformed[i] within the sorted first column.
    order = np.argsort(codes, kind="stable")
    lf = np.empty(n, dtype=np.int64)
    lf[order] = np.arange(n)
    # Walk the LF mapping starting from the row whose BWT symbol precedes
    # the sentinel-terminated text's first rotation (the row of '$' in the
    # first column is row 0).
    out = []
    row = int(np.flatnonzero(codes == 0)[0])
    row = int(lf[row])
    for _ in range(n):
        out.append(transformed[row])
        row = int(lf[row])
    text = "".join(reversed(out))
    # Rotate so the sentinel ends the string.
    sentinel_at = text.index(SENTINEL)
    return text[sentinel_at + 1 :] + text[: sentinel_at + 1]


def run_length_encode(transformed: str) -> list[tuple[str, int]]:
    """Run-length encode a BWT string.

    Genomic BWTs are highly runny; this is used by the compression
    application and by storage-size reporting.
    """
    if not transformed:
        return []
    runs: list[tuple[str, int]] = []
    current = transformed[0]
    count = 1
    for symbol in transformed[1:]:
        if symbol == current:
            count += 1
        else:
            runs.append((current, count))
            current, count = symbol, 1
    runs.append((current, count))
    return runs
