"""1-step FM-Index: Occ/Count tables, bucket storage, backward search.

This is the conventional FM-Index the paper uses as its CPU/accelerator
baseline algorithm (``FM-1``): the BWT of the sentinel-terminated
reference, a ``Count`` table, an ``Occ`` table sampled into buckets of
width ``d`` (markers interleaved with BWT buckets, Fig. 3(f)), and the
backward-search loop of Fig. 3(d) that processes one DNA symbol per
iteration with two ``Occ`` lookups (``low`` and ``high``).

Searches can record a :class:`SearchTrace` of every Occ-bucket access,
which the hardware layer turns into DRAM row activations — this is what
produces the "197 distinct rows out of 200 iterations" behaviour of
Fig. 6(a).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..genome.alphabet import FULL_ALPHABET, SENTINEL, encode
from .suffix_array import suffix_array
from .bwt import bwt_from_suffix_array

#: Default Occ sampling bucket width (markers every d BWT positions).
DEFAULT_BUCKET_WIDTH = 64


@dataclass(frozen=True)
class Interval:
    """A half-open BW-matrix interval ``[low, high)``.

    Empty intervals (``low >= high``) mean the query does not occur.
    """

    low: int
    high: int

    @property
    def empty(self) -> bool:
        """True when the interval matches nothing."""
        return self.low >= self.high

    @property
    def count(self) -> int:
        """Number of occurrences represented by the interval."""
        return max(0, self.high - self.low)


@dataclass
class SearchTrace:
    """Memory accesses recorded during one backward search.

    ``bucket_accesses`` holds the Occ-bucket index touched by each Occ
    lookup, in issue order.  ``iterations`` counts backward-search steps
    (one per symbol for FM-1).  The hardware layer maps bucket indices to
    DRAM rows to evaluate row-buffer locality.
    """

    bucket_accesses: list[int] = field(default_factory=list)
    iterations: int = 0

    def record(self, bucket: int) -> None:
        """Record one Occ-bucket access."""
        self.bucket_accesses.append(bucket)

    @property
    def access_count(self) -> int:
        """Total number of Occ lookups issued."""
        return len(self.bucket_accesses)


@dataclass(frozen=True)
class Seed:
    """A maximal exact match of a read substring against the reference."""

    read_start: int
    read_end: int
    interval: Interval

    @property
    def length(self) -> int:
        """Length of the matched substring."""
        return self.read_end - self.read_start


class FMIndex:
    """Conventional 1-step FM-Index over a DNA reference.

    Args:
        reference: reference string over ``ACGT`` (sentinel appended
            internally).
        bucket_width: Occ sampling distance ``d`` (Fig. 3(f)).
        sa_sample_rate: keep every ``sa_sample_rate``-th suffix-array entry
            for ``locate``; 1 keeps the full SA.
    """

    def __init__(
        self,
        reference: str,
        bucket_width: int = DEFAULT_BUCKET_WIDTH,
        sa_sample_rate: int = 1,
    ) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        if sa_sample_rate <= 0:
            raise ValueError("sa_sample_rate must be positive")
        if not reference:
            raise ValueError("reference must be non-empty")

        text = reference if reference.endswith(SENTINEL) else reference + SENTINEL
        self._text = text
        self._sa = suffix_array(text)
        self._bwt = bwt_from_suffix_array(text, self._sa)
        self._bwt_codes = encode(self._bwt)
        self._n = len(text)
        self._bucket_width = bucket_width
        self._sa_sample_rate = sa_sample_rate

        self._count = self._build_count()
        self._occ_markers = self._build_occ_markers()
        self._occ_prefix: np.ndarray | None = None
        if sa_sample_rate == 1:
            self._sa_samples = self._sa
        else:
            self._sa_samples = self._sa[::sa_sample_rate]

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    def _build_count(self) -> np.ndarray:
        """Count(s): number of symbols lexicographically smaller than s."""
        totals = np.bincount(self._bwt_codes, minlength=len(FULL_ALPHABET))
        return np.concatenate(([0], np.cumsum(totals)[:-1])).astype(np.int64)

    def _build_occ_markers(self) -> np.ndarray:
        """Occ markers sampled every ``bucket_width`` BWT positions.

        ``markers[b, s]`` is ``Occ(s, b * bucket_width)``.
        """
        n_buckets = (self._n + self._bucket_width - 1) // self._bucket_width + 1
        markers = np.zeros((n_buckets, len(FULL_ALPHABET)), dtype=np.int64)
        running = np.zeros(len(FULL_ALPHABET), dtype=np.int64)
        for i in range(self._n):
            if i % self._bucket_width == 0:
                markers[i // self._bucket_width] = running
            running[self._bwt_codes[i]] += 1
        markers[-1] = running
        return markers

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def reference_length(self) -> int:
        """Length of the sentinel-terminated reference."""
        return self._n

    @property
    def bwt(self) -> str:
        """The BWT string of the reference."""
        return self._bwt

    @property
    def bucket_width(self) -> int:
        """Occ sampling distance ``d``."""
        return self._bucket_width

    @property
    def bucket_count(self) -> int:
        """Number of Occ/BWT buckets in the index."""
        return (self._n + self._bucket_width - 1) // self._bucket_width

    @property
    def suffix_array_(self) -> np.ndarray:
        """The full suffix array (read-only view)."""
        return self._sa

    # ------------------------------------------------------------------ #
    # Core FM-Index operations
    # ------------------------------------------------------------------ #

    def count(self, symbol: str) -> int:
        """Count(s): symbols in the BWT lexicographically smaller than s."""
        return int(self._count[FULL_ALPHABET.index(symbol)])

    def occ(self, symbol: str, position: int, trace: SearchTrace | None = None) -> int:
        """Occ(s, i): occurrences of *symbol* in ``BWT[0:position]``."""
        if position < 0 or position > self._n:
            raise ValueError(f"position {position} out of range [0, {self._n}]")
        code = FULL_ALPHABET.index(symbol)
        bucket = position // self._bucket_width
        if trace is not None:
            trace.record(bucket)
        base = int(self._occ_markers[bucket, code])
        start = bucket * self._bucket_width
        if position > start:
            base += int(np.count_nonzero(self._bwt_codes[start:position] == code))
        return base

    def occ_prefix_sums(self) -> np.ndarray:
        """Dense cumulative Occ table for vectorized batched lookups.

        ``occ_prefix_sums()[pos, code]`` equals ``Occ(symbol, pos)``.  This
        is the batched engine's mirror of the bucketed Occ of Fig. 3(f):
        the simulated hardware still models ``bucket_width``-sampled
        markers through :meth:`occ` and :class:`SearchTrace`, while the
        lockstep core answers all live queries' lookups with one
        fancy-indexing gather instead of a Python loop.  Built lazily,
        cached for the index lifetime; costs
        ``(n + 1) * |alphabet| * 4`` bytes.
        """
        if self._occ_prefix is None:
            prefix = np.zeros((self._n + 1, len(FULL_ALPHABET)), dtype=np.int32)
            for code in range(len(FULL_ALPHABET)):
                np.cumsum(self._bwt_codes == code, out=prefix[1:, code])
            self._occ_prefix = prefix
        return self._occ_prefix

    @property
    def count_table(self) -> np.ndarray:
        """Count(s) for every symbol code, indexable by encoded symbol."""
        return self._count

    def full_interval(self) -> Interval:
        """The interval covering every BW-matrix row."""
        return Interval(0, self._n)

    def extend_backward(
        self, interval: Interval, symbol: str, trace: SearchTrace | None = None
    ) -> Interval:
        """One backward-search step: prepend *symbol* to the match."""
        count = self.count(symbol)
        low = count + self.occ(symbol, interval.low, trace)
        high = count + self.occ(symbol, interval.high, trace)
        return Interval(low, high)

    def backward_search(self, query: str, trace: SearchTrace | None = None) -> Interval:
        """Find the BW-matrix interval of all occurrences of *query*.

        Implements the loop of Fig. 3(d): iterate symbols from the last to
        the first, shrinking ``(low, high)``; an empty interval aborts.
        """
        if not query:
            raise ValueError("query must be non-empty")
        interval = self.full_interval()
        for symbol in reversed(query):
            interval = self.extend_backward(interval, symbol, trace)
            if trace is not None:
                trace.iterations += 1
            if interval.empty:
                return interval
        return interval

    def locate(self, interval: Interval, limit: int | None = None) -> list[int]:
        """Convert a BW-matrix interval to reference positions via the SA."""
        if interval.empty:
            return []
        stop = interval.high if limit is None else min(interval.high, interval.low + limit)
        positions = []
        for row in range(interval.low, stop):
            positions.append(self._locate_row(row))
        return sorted(positions)

    def _locate_row(self, row: int) -> int:
        """Resolve one BW-matrix row to a reference position."""
        if self._sa_sample_rate == 1:
            return int(self._sa[row])
        steps = 0
        current = row
        while current % self._sa_sample_rate != 0:
            symbol = self._bwt[current]
            code = FULL_ALPHABET.index(symbol)
            current = int(self._count[code]) + self.occ(symbol, current)
            steps += 1
        return (int(self._sa_samples[current // self._sa_sample_rate]) + steps) % self._n

    def find(self, query: str, limit: int | None = None) -> list[int]:
        """All reference positions where *query* occurs (sorted)."""
        return self.locate(self.backward_search(query), limit=limit)

    def occurrence_count(self, query: str) -> int:
        """Number of occurrences of *query* in the reference."""
        return self.backward_search(query).count

    # ------------------------------------------------------------------ #
    # Seeding
    # ------------------------------------------------------------------ #

    def maximal_exact_matches(self, read: str, min_length: int = 10) -> list[Seed]:
        """Greedy maximal exact matches used as alignment seeds.

        Starting from the read's last position, extend a match backward as
        far as the interval stays non-empty, emit the maximal match if long
        enough, then restart just before the failing position.  This is the
        backward-search approximation of BWA-MEM's SMEM seeding: seeds do
        not overlap and each is maximal to the left.
        """
        seeds: list[Seed] = []
        end = len(read)
        while end > 0:
            interval = self.full_interval()
            start = end
            last_good = None
            while start > 0:
                symbol = read[start - 1]
                if symbol not in FULL_ALPHABET or symbol == SENTINEL:
                    break
                nxt = self.extend_backward(interval, symbol)
                if nxt.empty:
                    break
                interval = nxt
                start -= 1
                last_good = interval
            if last_good is not None and end - start >= min_length:
                seeds.append(Seed(read_start=start, read_end=end, interval=last_good))
            # Restart before the current seed (non-overlapping seeds).
            end = start if start < end else end - 1
        return list(reversed(seeds))

    # ------------------------------------------------------------------ #
    # Size model
    # ------------------------------------------------------------------ #

    def storage_bytes(self) -> int:
        """Bytes occupied by the simulated index (BWT + markers + SA)."""
        bwt_bits = self._n * 3
        marker_bytes = self._occ_markers.size * 8
        sa_bytes = self._sa_samples.size * 8
        return bwt_bits // 8 + marker_bytes + sa_bytes


def fm_index_size_bytes(genome_length: int, bucket_width: int = DEFAULT_BUCKET_WIDTH) -> int:
    """Analytic FM-1 size for a genome of *genome_length* bases.

    Follows Eq. 2 of the paper with k = 1: markers of
    ``ceil(log2 |G|) * |G| * |Sigma| / (8 d)`` bytes plus the packed BWT of
    ``|G| * ceil(log2(|Sigma| + 1)) / 8`` bytes.
    """
    from .kstep import kstep_size_bytes

    return kstep_size_bytes(genome_length, k=1, bucket_width=bucket_width)
