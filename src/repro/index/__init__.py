"""Index substrate: suffix arrays, BWT, FM-Index (1-step and k-step)."""

from .bwt import bwt, bwt_from_suffix_array, inverse_bwt, run_length_encode
from .fmindex import (
    DEFAULT_BUCKET_WIDTH,
    FMIndex,
    Interval,
    SearchTrace,
    Seed,
    fm_index_size_bytes,
)
from .kstep import KStepFMIndex, KStepStats, kstep_size_bytes
from .sampled_sa import SampledSuffixArray, sampled_sa_size_bytes
from .suffix_array import inverse_suffix_array, lcp_array, naive_suffix_array, suffix_array

__all__ = [
    "bwt",
    "bwt_from_suffix_array",
    "inverse_bwt",
    "run_length_encode",
    "DEFAULT_BUCKET_WIDTH",
    "FMIndex",
    "Interval",
    "SearchTrace",
    "Seed",
    "fm_index_size_bytes",
    "KStepFMIndex",
    "KStepStats",
    "kstep_size_bytes",
    "SampledSuffixArray",
    "sampled_sa_size_bytes",
    "inverse_suffix_array",
    "lcp_array",
    "naive_suffix_array",
    "suffix_array",
]
