"""Deterministic fault injection for the serving and replay stack.

The ROADMAP north-star is an always-on service, and an always-on service
is defined as much by its failure behaviour as by its throughput.  This
module is the *controlled* way to exercise that behaviour: a seeded
registry of injection points threaded through
:class:`~repro.serving.service.ServingConfig` (and the ``serve`` /
``experiment chaos`` CLI), so a chaos run is exactly as reproducible as
a benchmark run.

Injection **sites** are the four places the serving stack crosses a
failure domain:

* ``engine.search`` — the lockstep batch search inside
  :meth:`~repro.serving.workers.BatcherWorker.run_batch`;
* ``replay.flush`` — the accelerator flush replay
  (:meth:`~repro.serving.service.QueryService._replay_with_retry`);
* ``pool.submit`` — a :class:`~repro.accel.parallel.ParallelReplay`
  submission to the shared worker pool (where a *kill* fault takes down
  an actual process-pool worker with ``os._exit``);
* ``worker.loop`` — the top of a batcher worker's serve loop (where a
  *kill* fault crashes the worker thread itself, exercising supervision
  and respawn).

Each site's probes draw from an independent, seeded RNG stream, so the
decision sequence at a site depends only on ``(seed, site, probe
index)`` — never on wall-clock time or on what the other sites did.
With a single batcher worker a chaos run is fully deterministic; with
several, the *set* of injected faults per site is (which probe lands on
which query depends on thread scheduling, as in any real outage).

Fault **kinds**:

* ``raise`` — raise :class:`InjectedFault` at the probe (a transient
  error the supervision layer must absorb);
* ``delay`` — sleep ``delay_s`` at the probe (a stall, for timeout
  paths);
* ``kill`` — take the executing worker down: a batcher thread raises
  :class:`WorkerKilled` (crash + respawn), a process-pool worker is
  ``os._exit``'d (broken pool + rebuild/degrade ladder).

Specs trigger either probabilistically (``rate``) or on exact probe
indices (``at=(2, 5)``) — the latter is what makes failure-edge tests
schedulable instead of flaky.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "SITE_LOOP",
    "SITE_REPLAY",
    "SITE_SEARCH",
    "SITE_SUBMIT",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "WorkerKilled",
    "parse_fault_spec",
]

#: The four injection sites, in pipeline order.
SITE_SEARCH = "engine.search"
SITE_REPLAY = "replay.flush"
SITE_SUBMIT = "pool.submit"
SITE_LOOP = "worker.loop"
FAULT_SITES = (SITE_SEARCH, SITE_REPLAY, SITE_SUBMIT, SITE_LOOP)

#: Supported fault kinds.
FAULT_KINDS = ("raise", "delay", "kill")


class InjectedFault(RuntimeError):
    """A fault raised by the injection registry (kind ``raise``).

    Deliberately a plain ``RuntimeError`` subclass: the supervision layer
    must treat it exactly like any other unexpected exception — nothing
    in the recovery path is allowed to special-case "this one is fake".
    """

    def __init__(self, site: str, probe: int) -> None:
        super().__init__(f"injected fault at {site} (probe #{probe})")
        self.site = site
        self.probe = probe


class WorkerKilled(InjectedFault):
    """A *kill* fault: the executing worker must go down, not retry.

    Raised for thread-based workers (a process-pool worker is taken down
    with ``os._exit`` instead).  Recovery paths re-raise it past their
    transient-fault handling so it reaches the supervision layer.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: *kind* at *site*, triggered by rate or schedule.

    Args:
        site: one of :data:`FAULT_SITES`.
        kind: one of :data:`FAULT_KINDS`.
        rate: per-probe trigger probability in [0, 1].
        at: exact probe indices (0-based, per site) that trigger — the
            deterministic alternative (or complement) to ``rate``.
        delay_s: sleep length for ``delay`` faults.
    """

    site: str
    kind: str
    rate: float = 0.0
    at: tuple[int, ...] = ()
    delay_s: float = 0.01

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; available: {', '.join(FAULT_SITES)}"
            )
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; available: {', '.join(FAULT_KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("fault rate must be in [0, 1]")
        object.__setattr__(self, "at", tuple(int(index) for index in self.at))
        if any(index < 0 for index in self.at):
            raise ValueError("fault schedule indices must be >= 0")
        if self.rate == 0.0 and not self.at:
            raise ValueError("fault spec needs a rate > 0 or explicit probe indices")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse the CLI spec grammar ``SITE:KIND:RATE[:DELAY]``.

    ``RATE`` is either a probability (``0.2``) or an ``@``-prefixed
    comma-list of exact probe indices (``@2,5``).  ``DELAY`` (seconds)
    only matters for ``delay`` faults.  Examples::

        replay.flush:raise:0.2      # 20% of flush replays raise
        worker.loop:kill:@3         # kill the worker at loop probe 3
        engine.search:delay:0.05:1  # 5% of searches stall 1s
    """
    parts = text.split(":")
    if len(parts) not in (3, 4):
        raise ValueError(
            f"bad fault spec {text!r}; expected SITE:KIND:RATE[:DELAY] "
            f"(RATE a probability or @index,index,...)"
        )
    site, kind, when = parts[0], parts[1], parts[2]
    delay_s = float(parts[3]) if len(parts) == 4 else 0.01
    if when.startswith("@"):
        at = tuple(int(piece) for piece in when[1:].split(",") if piece)
        if not at:
            raise ValueError(f"bad fault spec {text!r}: empty @index list")
        return FaultSpec(site=site, kind=kind, at=at, delay_s=delay_s)
    return FaultSpec(site=site, kind=kind, rate=float(when), delay_s=delay_s)


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible chaos scenario: fault specs plus the RNG seed.

    Immutable (and hence safely shareable through the frozen
    :class:`~repro.serving.service.ServingConfig`); the mutable runtime
    state — probe counters, RNG streams — lives in the
    :class:`FaultInjector` each service builds from its plan.  An empty
    plan is legal and injects nothing: the chaos harness uses it to pin
    the fault-free path against a run with no injector at all.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"FaultPlan specs must be FaultSpec, got {spec!r}")

    @classmethod
    def parse(cls, texts: "list[str] | tuple[str, ...]", seed: int = 0) -> "FaultPlan":
        """Build a plan from CLI ``--inject`` spec strings."""
        return cls(specs=tuple(parse_fault_spec(text) for text in texts), seed=seed)

    def for_site(self, site: str) -> tuple[FaultSpec, ...]:
        """The specs registered at *site*, in declaration order."""
        return tuple(spec for spec in self.specs if spec.site == site)


class FaultInjector:
    """Runtime evaluator of a :class:`FaultPlan` — seeded, thread-safe.

    Each site keeps a probe counter and its own
    ``numpy.random.default_rng`` stream (seeded from the plan seed and
    the site's position in :data:`FAULT_SITES`), so decisions at one
    site never perturb another's sequence.  ``decide`` returns the
    triggered spec (or ``None``) and leaves acting on it to the call
    site; ``fire`` is the common wrapper that raises / sleeps in place.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        self._lock = threading.Lock()
        self._specs = {site: plan.for_site(site) for site in FAULT_SITES}
        self._rngs = {
            site: np.random.default_rng(plan.seed + 1_000_003 * index)
            for index, site in enumerate(FAULT_SITES)
        }
        self._probes = {site: 0 for site in FAULT_SITES}
        self._injected = {site: 0 for site in FAULT_SITES}

    @property
    def plan(self) -> FaultPlan:
        """The immutable scenario this injector evaluates."""
        return self._plan

    @property
    def probes(self) -> dict[str, int]:
        """Probe counts per site (a snapshot copy)."""
        with self._lock:
            return dict(self._probes)

    @property
    def injected(self) -> dict[str, int]:
        """Injected-fault counts per site (a snapshot copy)."""
        with self._lock:
            return dict(self._injected)

    @property
    def total_injected(self) -> int:
        """Faults injected across all sites."""
        with self._lock:
            return sum(self._injected.values())

    def decide(self, site: str) -> FaultSpec | None:
        """Advance *site*'s probe counter; return the triggered spec, if any.

        The first matching spec wins (declaration order).  A ``rate``
        spec consumes one RNG draw per probe whether or not it triggers,
        keeping the decision sequence a pure function of the probe index.
        """
        if site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {site!r}")
        with self._lock:
            probe = self._probes[site]
            self._probes[site] = probe + 1
            hit: FaultSpec | None = None
            rng = self._rngs[site]
            for spec in self._specs[site]:
                triggered = probe in spec.at
                if spec.rate > 0.0 and rng.random() < spec.rate:
                    triggered = True
                if triggered and hit is None:
                    hit = spec
            if hit is not None:
                self._injected[site] += 1
        return hit

    def fire(self, site: str) -> None:
        """Probe *site* and act in place: raise, sleep, or do nothing.

        ``raise`` faults raise :class:`InjectedFault`; ``kill`` faults
        raise :class:`WorkerKilled` (the thread-worker interpretation —
        pool submission sites use :meth:`decide` and ``os._exit`` the
        pool worker themselves); ``delay`` faults sleep.
        """
        spec = self.decide(site)
        if spec is None:
            return
        probe = self._probes[site] - 1
        if spec.kind == "delay":
            time.sleep(spec.delay_s)
            return
        if spec.kind == "kill":
            raise WorkerKilled(site, probe)
        raise InjectedFault(site, probe)
