"""FASTA / FASTQ input and output.

Minimal, dependency-free readers and writers covering the formats the
pipeline touches: references are stored as FASTA, simulated reads as FASTQ
(with quality strings derived from the simulator's per-base error
probabilities).  The parsers are deliberately strict — malformed records
raise :class:`FormatError` rather than being silently skipped — because a
truncated reference would invalidate every downstream index.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from .alphabet import validate


class FormatError(ValueError):
    """Raised when a FASTA/FASTQ stream is malformed."""


@dataclass(frozen=True)
class FastaRecord:
    """A single FASTA record: a name line and its sequence."""

    name: str
    sequence: str


@dataclass(frozen=True)
class FastqRecord:
    """A single FASTQ record: name, sequence, and a quality string."""

    name: str
    sequence: str
    quality: str

    def __post_init__(self) -> None:
        if len(self.sequence) != len(self.quality):
            raise FormatError(
                f"sequence/quality length mismatch for read {self.name!r}: "
                f"{len(self.sequence)} vs {len(self.quality)}"
            )


def _open_for_read(path: str | Path) -> TextIO:
    return open(Path(path), "r", encoding="ascii")


def parse_fasta(stream: Iterable[str]) -> Iterator[FastaRecord]:
    """Parse FASTA records from an iterable of lines."""
    name: str | None = None
    chunks: list[str] = []
    for raw in stream:
        line = raw.rstrip("\n")
        if not line:
            continue
        if line.startswith(">"):
            if name is not None:
                yield FastaRecord(name=name, sequence="".join(chunks))
            name = line[1:].strip()
            if not name:
                raise FormatError("FASTA header with empty name")
            chunks = []
        else:
            if name is None:
                raise FormatError("FASTA sequence data before any header")
            chunks.append(line.strip().upper())
    if name is not None:
        yield FastaRecord(name=name, sequence="".join(chunks))


def read_fasta(path: str | Path) -> list[FastaRecord]:
    """Read all FASTA records from *path*."""
    with _open_for_read(path) as handle:
        return list(parse_fasta(handle))


def write_fasta(path: str | Path, records: Iterable[FastaRecord], width: int = 70) -> None:
    """Write FASTA *records* to *path*, wrapping sequences at *width*."""
    if width <= 0:
        raise ValueError("width must be positive")
    with open(Path(path), "w", encoding="ascii") as handle:
        for record in records:
            handle.write(f">{record.name}\n")
            seq = record.sequence
            for i in range(0, len(seq), width):
                handle.write(seq[i : i + width] + "\n")


def parse_fastq(stream: Iterable[str]) -> Iterator[FastqRecord]:
    """Parse FASTQ records from an iterable of lines."""
    lines = iter(stream)
    while True:
        try:
            header = next(lines).rstrip("\n")
        except StopIteration:
            return
        if not header:
            continue
        if not header.startswith("@"):
            raise FormatError(f"expected '@' header line, got {header!r}")
        try:
            sequence = next(lines).rstrip("\n")
            plus = next(lines).rstrip("\n")
            quality = next(lines).rstrip("\n")
        except StopIteration as exc:
            raise FormatError("truncated FASTQ record") from exc
        if not plus.startswith("+"):
            raise FormatError(f"expected '+' separator line, got {plus!r}")
        yield FastqRecord(name=header[1:].strip(), sequence=sequence.upper(), quality=quality)


def read_fastq(path: str | Path) -> list[FastqRecord]:
    """Read all FASTQ records from *path*."""
    with _open_for_read(path) as handle:
        return list(parse_fastq(handle))


def write_fastq(path: str | Path, records: Iterable[FastqRecord]) -> None:
    """Write FASTQ *records* to *path*."""
    with open(Path(path), "w", encoding="ascii") as handle:
        for record in records:
            handle.write(f"@{record.name}\n{record.sequence}\n+\n{record.quality}\n")


def validate_reference_record(record: FastaRecord) -> None:
    """Check that a FASTA record is a usable DNA reference."""
    if not record.sequence:
        raise FormatError(f"reference {record.name!r} has an empty sequence")
    validate(record.sequence)
