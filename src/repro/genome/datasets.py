"""Paper dataset stand-ins: human, picea glauca, pinus lambertiana.

The paper's reference genomes (human 3 Gbp, picea 20 Gbp, pinus 31 Gbp)
cannot be processed at full scale in pure Python.  Each dataset here is a
*profile*: the paper-scale length (used by the analytic data-structure size
models), plus the statistics used to synthesise a scaled stand-in sequence
(GC content and repeat structure, which determine FM-Index access patterns
and increment distributions).  Picea and pinus are conifer genomes that are
notoriously repeat-rich, which is why the paper observes their EXMA/MTL
behaviour differs from human; the profiles reflect that.
"""

from __future__ import annotations

from dataclasses import dataclass

from .sequence import Reference, RepeatProfile, random_genome

#: Paper-scale genome lengths in base pairs.
HUMAN_PAPER_LENGTH = 3_000_000_000
PICEA_PAPER_LENGTH = 20_000_000_000
PINUS_PAPER_LENGTH = 31_000_000_000

#: Default simulated length used when a caller does not override it.  Large
#: enough for heavy-tailed k-mer statistics, small enough for CI.
DEFAULT_SIMULATED_LENGTH = 200_000


@dataclass(frozen=True)
class DatasetProfile:
    """Statistics used to synthesise a stand-in for one paper dataset."""

    name: str
    paper_length: int
    gc: float
    repeat_profile: RepeatProfile
    description: str

    def build(self, simulated_length: int = DEFAULT_SIMULATED_LENGTH, seed: int = 0) -> Reference:
        """Synthesise a scaled reference following this profile."""
        sequence = random_genome(
            simulated_length,
            gc=self.gc,
            repeat_profile=self.repeat_profile,
            seed=seed,
        )
        return Reference(
            name=self.name,
            sequence=sequence,
            paper_length=self.paper_length,
            description=self.description,
        )


HUMAN = DatasetProfile(
    name="human",
    paper_length=HUMAN_PAPER_LENGTH,
    gc=0.41,
    repeat_profile=RepeatProfile(
        repeat_fraction=0.45, repeat_unit_length=300, tandem_fraction=0.03, tandem_unit_length=4
    ),
    description="Homo sapiens stand-in (3 Gbp at paper scale)",
)

PICEA = DatasetProfile(
    name="picea",
    paper_length=PICEA_PAPER_LENGTH,
    gc=0.38,
    repeat_profile=RepeatProfile(
        repeat_fraction=0.65, repeat_unit_length=500, tandem_fraction=0.05, tandem_unit_length=3
    ),
    description="Picea glauca stand-in (20 Gbp at paper scale, repeat-rich conifer)",
)

PINUS = DatasetProfile(
    name="pinus",
    paper_length=PINUS_PAPER_LENGTH,
    gc=0.38,
    repeat_profile=RepeatProfile(
        repeat_fraction=0.75, repeat_unit_length=600, tandem_fraction=0.06, tandem_unit_length=3
    ),
    description="Pinus lambertiana stand-in (31 Gbp at paper scale, repeat-rich conifer)",
)

#: All three evaluation datasets keyed by name, in the paper's order.
DATASETS = {"human": HUMAN, "picea": PICEA, "pinus": PINUS}


def build_dataset(
    name: str, simulated_length: int = DEFAULT_SIMULATED_LENGTH, seed: int = 0
) -> Reference:
    """Build a scaled stand-in reference for a named paper dataset."""
    try:
        profile = DATASETS[name]
    except KeyError as exc:
        raise KeyError(f"unknown dataset {name!r}; expected one of {sorted(DATASETS)}") from exc
    return profile.build(simulated_length=simulated_length, seed=seed)


def build_all_datasets(
    simulated_length: int = DEFAULT_SIMULATED_LENGTH, seed: int = 0
) -> dict[str, Reference]:
    """Build all three evaluation datasets at the same simulated length."""
    return {
        name: profile.build(simulated_length=simulated_length, seed=seed + i)
        for i, (name, profile) in enumerate(DATASETS.items())
    }
