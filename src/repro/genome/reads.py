"""Read simulators with the paper's sequencing error profiles.

The paper generates 101-bp short reads with DWGSim and 1-kbp long reads
with PBSIM, using the error profiles (name, mismatch%, insertion%,
deletion%, total%):

* Illumina:  0.18 / 0.01 / 0.01 /  0.2
* PacBio:    1.50 / 9.02 / 4.49 / 15.01
* ONT 2D:   16.50 / 5.10 / 8.40 / 30.0

This module provides the same functionality: sample read start positions
uniformly over a reference (to a target coverage), optionally from either
strand, and corrupt each read with per-base substitution / insertion /
deletion probabilities matching the chosen profile.  Each read records its
true origin so alignment accuracy can be checked downstream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .alphabet import DNA_ALPHABET, reverse_complement
from .io import FastqRecord


@dataclass(frozen=True)
class ErrorProfile:
    """Per-base error rates for one sequencing technology."""

    name: str
    mismatch: float
    insertion: float
    deletion: float

    def __post_init__(self) -> None:
        for rate in (self.mismatch, self.insertion, self.deletion):
            if not 0.0 <= rate < 1.0:
                raise ValueError("error rates must be within [0, 1)")

    @property
    def total(self) -> float:
        """Total per-base error rate."""
        return self.mismatch + self.insertion + self.deletion


#: Error profiles exactly as reported in the paper's methodology section.
ILLUMINA = ErrorProfile("Illumina", mismatch=0.0018, insertion=0.0001, deletion=0.0001)
PACBIO = ErrorProfile("PacBio", mismatch=0.0150, insertion=0.0902, deletion=0.0449)
ONT_2D = ErrorProfile("ONT2D", mismatch=0.1650, insertion=0.0510, deletion=0.0840)

PROFILES = {p.name: p for p in (ILLUMINA, PACBIO, ONT_2D)}

#: Default read lengths used in the paper's evaluation.
SHORT_READ_LENGTH = 101
LONG_READ_LENGTH = 1000


@dataclass(frozen=True)
class SimulatedRead:
    """A simulated read together with its ground-truth origin."""

    name: str
    sequence: str
    true_position: int
    reverse: bool
    profile: str

    def to_fastq(self) -> FastqRecord:
        """Convert to a FASTQ record with a flat quality string."""
        return FastqRecord(name=self.name, sequence=self.sequence, quality="I" * len(self.sequence))


class ReadSimulator:
    """Samples error-corrupted reads from a reference sequence.

    Mirrors DWGSim for short reads and PBSIM for long reads: the error
    *profile* decides the per-base substitution/insertion/deletion
    probabilities, and *coverage* decides how many reads are produced
    (``coverage * len(reference) / read_length``).
    """

    def __init__(self, reference: str, profile: ErrorProfile, seed: int | None = 0) -> None:
        if not reference:
            raise ValueError("reference must be non-empty")
        self._reference = reference
        self._profile = profile
        self._rng = np.random.default_rng(seed)

    @property
    def profile(self) -> ErrorProfile:
        """The error profile reads are generated with."""
        return self._profile

    def simulate(
        self,
        read_length: int = SHORT_READ_LENGTH,
        count: int | None = None,
        coverage: float | None = None,
        both_strands: bool = True,
    ) -> list[SimulatedRead]:
        """Simulate reads.

        Exactly one of *count* or *coverage* must be provided.  Reads that
        would extend beyond the reference end are not generated; the
        reference must be at least *read_length* long.
        """
        if (count is None) == (coverage is None):
            raise ValueError("provide exactly one of count or coverage")
        if read_length <= 0:
            raise ValueError("read_length must be positive")
        ref_len = len(self._reference)
        if read_length > ref_len:
            raise ValueError("read_length exceeds reference length")
        if coverage is not None:
            if coverage <= 0:
                raise ValueError("coverage must be positive")
            count = max(1, int(round(coverage * ref_len / read_length)))
        assert count is not None
        if count <= 0:
            raise ValueError("count must be positive")

        reads = []
        max_start = ref_len - read_length
        starts = self._rng.integers(0, max_start + 1, size=count)
        for i, start in enumerate(starts):
            fragment = self._reference[start : start + read_length]
            reverse = bool(both_strands and self._rng.random() < 0.5)
            if reverse:
                fragment = reverse_complement(fragment)
            corrupted = self._corrupt(fragment)
            reads.append(
                SimulatedRead(
                    name=f"{self._profile.name.lower()}_read_{i}",
                    sequence=corrupted,
                    true_position=int(start),
                    reverse=reverse,
                    profile=self._profile.name,
                )
            )
        return reads

    def _corrupt(self, fragment: str) -> str:
        """Apply the error profile to one fragment."""
        rng = self._rng
        profile = self._profile
        out: list[str] = []
        for base in fragment:
            r = rng.random()
            if r < profile.deletion:
                continue
            r -= profile.deletion
            if r < profile.insertion:
                out.append(DNA_ALPHABET[rng.integers(4)])
            r -= profile.insertion
            if r < profile.mismatch:
                choices = [b for b in DNA_ALPHABET if b != base]
                out.append(choices[rng.integers(3)])
            else:
                out.append(base)
        if not out:
            out.append(fragment[0])
        return "".join(out)


def simulate_short_reads(
    reference: str, coverage: float = 1.0, seed: int | None = 0
) -> list[SimulatedRead]:
    """Convenience wrapper: Illumina-profile 101-bp reads."""
    simulator = ReadSimulator(reference, ILLUMINA, seed=seed)
    return simulator.simulate(read_length=SHORT_READ_LENGTH, coverage=coverage)


def simulate_long_reads(
    reference: str,
    profile: ErrorProfile = PACBIO,
    coverage: float = 1.0,
    read_length: int = LONG_READ_LENGTH,
    seed: int | None = 0,
) -> list[SimulatedRead]:
    """Convenience wrapper: PacBio/ONT-profile long reads."""
    read_length = min(read_length, len(reference))
    simulator = ReadSimulator(reference, profile, seed=seed)
    return simulator.simulate(read_length=read_length, coverage=coverage)
