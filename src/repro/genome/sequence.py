"""Synthetic reference genomes.

The paper evaluates on the human (3 Gbp), picea glauca (20 Gbp) and pinus
lambertiana (31 Gbp) genomes.  Those are far too large for a pure-Python
cycle-level reproduction, so this module generates *synthetic* references
whose local statistics (GC content, repeat density, tandem/interspersed
repeat structure) follow per-dataset profiles; the absolute length is a
parameter.  The data-structure size figures at paper scale are computed
analytically elsewhere (see ``repro.index.kstep`` and ``repro.exma.table``).

A reference is a plain Python string over ``ACGT`` wrapped in
:class:`Reference`, which also carries a name and the paper-scale length it
stands in for, so experiment harnesses can report both the simulated and
the extrapolated numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .alphabet import DNA_ALPHABET, gc_content, validate


@dataclass(frozen=True)
class RepeatProfile:
    """Parameters controlling the repeat structure of a synthetic genome.

    Attributes:
        repeat_fraction: fraction of the genome covered by copies of
            repeat elements (interspersed repeats, e.g. LINE/SINE-like).
        repeat_unit_length: length of each repeat element.
        tandem_fraction: fraction of the genome covered by short tandem
            repeats (microsatellite-like).
        tandem_unit_length: period of the tandem repeats.
    """

    repeat_fraction: float = 0.3
    repeat_unit_length: int = 300
    tandem_fraction: float = 0.03
    tandem_unit_length: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.repeat_fraction <= 0.95:
            raise ValueError("repeat_fraction must be within [0, 0.95]")
        if not 0.0 <= self.tandem_fraction <= 0.5:
            raise ValueError("tandem_fraction must be within [0, 0.5]")
        if self.repeat_unit_length <= 0 or self.tandem_unit_length <= 0:
            raise ValueError("repeat unit lengths must be positive")


@dataclass(frozen=True)
class Reference:
    """A reference genome plus metadata.

    Attributes:
        name: short dataset name (e.g. ``"human"``).
        sequence: the reference string over ``ACGT``.
        paper_length: the length (in bp) of the genome this reference
            stands in for in the paper (3e9 for human, etc.).  Used by the
            analytic size models; equals ``len(sequence)`` when the
            reference is not a stand-in.
        description: free-form description.
    """

    name: str
    sequence: str
    paper_length: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        validate(self.sequence)
        if not self.sequence:
            raise ValueError("reference sequence must be non-empty")
        if self.paper_length == 0:
            object.__setattr__(self, "paper_length", len(self.sequence))

    def __len__(self) -> int:
        return len(self.sequence)

    @property
    def gc(self) -> float:
        """GC content of the simulated sequence."""
        return gc_content(self.sequence)

    @property
    def scale_factor(self) -> float:
        """Ratio between the paper-scale genome and the simulated one."""
        return self.paper_length / len(self.sequence)


def random_genome(
    length: int,
    gc: float = 0.41,
    repeat_profile: RepeatProfile | None = None,
    seed: int | None = 0,
) -> str:
    """Generate a random genome with a given GC content and repeat profile.

    The generator first draws i.i.d. bases with the requested GC content,
    then overwrites a ``repeat_fraction`` of the genome with copies of a
    small library of repeat elements and a ``tandem_fraction`` with short
    tandem repeats.  The result has the bursty, self-similar structure that
    makes FM-Index increment distributions heavy-tailed (Fig. 11/12 of the
    paper) without requiring real genome downloads.

    Args:
        length: genome length in bases.
        gc: target GC fraction.
        repeat_profile: repeat structure; defaults to a human-like profile.
        seed: RNG seed (``None`` for nondeterministic output).

    Returns:
        A string of length *length* over ``ACGT``.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    if not 0.0 < gc < 1.0:
        raise ValueError("gc must be within (0, 1)")
    profile = repeat_profile or RepeatProfile()
    rng = np.random.default_rng(seed)

    at = (1.0 - gc) / 2.0
    gc_half = gc / 2.0
    probs = np.array([at, gc_half, gc_half, at])  # A, C, G, T
    codes = rng.choice(4, size=length, p=probs)

    # Interspersed repeats: pick a small library of elements and paste
    # copies at random positions.
    unit = min(profile.repeat_unit_length, max(1, length // 4))
    n_repeat_bases = int(length * profile.repeat_fraction)
    if n_repeat_bases >= unit and unit > 0:
        library_size = max(1, min(8, n_repeat_bases // (unit * 4)))
        library = [rng.choice(4, size=unit, p=probs) for _ in range(library_size)]
        n_copies = n_repeat_bases // unit
        for _ in range(n_copies):
            element = library[rng.integers(len(library))]
            start = int(rng.integers(0, max(1, length - unit)))
            codes[start : start + unit] = element[: length - start]

    # Tandem repeats: short periodic stretches.
    t_unit = profile.tandem_unit_length
    n_tandem_bases = int(length * profile.tandem_fraction)
    if n_tandem_bases >= t_unit * 4:
        stretch = t_unit * 16
        n_stretches = max(1, n_tandem_bases // stretch)
        for _ in range(n_stretches):
            motif = rng.choice(4, size=t_unit, p=probs)
            start = int(rng.integers(0, max(1, length - stretch)))
            span = min(stretch, length - start)
            tiled = np.tile(motif, span // t_unit + 1)[:span]
            codes[start : start + span] = tiled

    bases = np.array(list(DNA_ALPHABET))
    return "".join(bases[codes])


@dataclass
class VariantModel:
    """Simple model of genetic variation between individuals.

    The paper quotes an overall human population variation of ~0.1 %.  The
    model introduces substitutions and short indels at the given rates and
    is used to derive donor genomes from which reads are sampled, so that
    alignment exercises both sequencing error and true variation.
    """

    substitution_rate: float = 0.001
    insertion_rate: float = 0.0001
    deletion_rate: float = 0.0001
    max_indel_length: int = 3
    seed: int | None = 1

    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        for rate in (self.substitution_rate, self.insertion_rate, self.deletion_rate):
            if not 0.0 <= rate < 1.0:
                raise ValueError("variation rates must be within [0, 1)")
        self._rng = np.random.default_rng(self.seed)

    def apply(self, sequence: str) -> str:
        """Return a donor genome derived from *sequence* with variants."""
        rng = self._rng
        out: list[str] = []
        i = 0
        n = len(sequence)
        bases = DNA_ALPHABET
        while i < n:
            r = rng.random()
            if r < self.deletion_rate:
                i += int(rng.integers(1, self.max_indel_length + 1))
                continue
            if r < self.deletion_rate + self.insertion_rate:
                ins_len = int(rng.integers(1, self.max_indel_length + 1))
                out.append("".join(bases[rng.integers(4)] for _ in range(ins_len)))
            if rng.random() < self.substitution_rate:
                original = sequence[i]
                choices = [b for b in bases if b != original]
                out.append(choices[rng.integers(3)])
            else:
                out.append(sequence[i])
            i += 1
        return "".join(out) if out else sequence
