"""DNA alphabet utilities.

The paper works over the DNA alphabet ``{A, C, G, T}`` plus the sentinel
``$`` that terminates a reference in the Burrows-Wheeler transform.  The
sentinel is lexicographically the smallest symbol.  This module centralises
symbol encoding, k-mer packing/unpacking, and reverse complementation so
that every other subsystem (FM-Index, LISA, EXMA tables, read simulators)
agrees on one representation.

Two encodings are used throughout the repository:

* ``encode`` / ``decode`` map ``$ACGT`` to the integers ``0..4`` (the
  sentinel is 0 so that lexicographic order of encoded arrays equals
  lexicographic order of the strings).
* ``pack_kmer`` / ``unpack_kmer`` map a k-mer over ``ACGT`` (no sentinel)
  to an integer in ``[0, 4**k)`` using 2 bits per symbol, matching the
  enlarged alphabet :math:`\\Sigma^k` used by k-step FM-Index and by EXMA
  tables.
"""

from __future__ import annotations

import numpy as np

#: The DNA alphabet, in lexicographic order, excluding the sentinel.
DNA_ALPHABET = "ACGT"

#: Sentinel symbol terminating a reference; lexicographically smallest.
SENTINEL = "$"

#: Full ordered alphabet used by the BWT ($ < A < C < G < T).
FULL_ALPHABET = SENTINEL + DNA_ALPHABET

_CHAR_TO_CODE = {c: i for i, c in enumerate(FULL_ALPHABET)}
_CODE_TO_CHAR = np.array(list(FULL_ALPHABET))

_DNA_TO_2BIT = {c: i for i, c in enumerate(DNA_ALPHABET)}
_2BIT_TO_DNA = np.array(list(DNA_ALPHABET))

#: Byte-value lookup table driving the vectorized :func:`encode`; 0xFF
#: marks bytes outside the ``$ACGT`` alphabet.
_BYTE_TO_CODE = np.full(256, 0xFF, dtype=np.uint8)
for _char, _code in _CHAR_TO_CODE.items():
    _BYTE_TO_CODE[ord(_char)] = _code

_COMPLEMENT = {"A": "T", "C": "G", "G": "C", "T": "A", SENTINEL: SENTINEL, "N": "N"}


class AlphabetError(ValueError):
    """Raised when a sequence contains symbols outside the DNA alphabet."""


def validate(sequence: str, allow_sentinel: bool = False) -> None:
    """Raise :class:`AlphabetError` if *sequence* contains invalid symbols."""
    allowed = set(DNA_ALPHABET)
    if allow_sentinel:
        allowed.add(SENTINEL)
    bad = set(sequence) - allowed
    if bad:
        raise AlphabetError(f"invalid DNA symbols: {sorted(bad)!r}")


def encode(sequence: str) -> np.ndarray:
    """Encode a string over ``$ACGT`` into ``uint8`` codes 0..4.

    The sentinel encodes to 0, so ``np.sort`` and comparisons on encoded
    arrays agree with lexicographic string order.  Encoding is one table
    gather over the raw bytes, so batched callers (the engine backends
    encode every query of a batch) stay off the per-character Python path.
    """
    try:
        raw = np.frombuffer(sequence.encode("ascii"), dtype=np.uint8)
    except UnicodeEncodeError as exc:
        raise AlphabetError(f"invalid DNA symbol: {sequence[exc.start]!r}") from exc
    codes = _BYTE_TO_CODE[raw]
    if codes.size and int(codes.max()) == 0xFF:
        bad = sequence[int(np.argmax(codes == 0xFF))]
        raise AlphabetError(f"invalid DNA symbol: {bad!r}")
    return codes


def decode(codes: np.ndarray) -> str:
    """Decode ``uint8`` codes 0..4 back into a ``$ACGT`` string."""
    codes = np.asarray(codes)
    if codes.size == 0:
        return ""
    if codes.max(initial=0) >= len(FULL_ALPHABET):
        raise AlphabetError("code out of range for the $ACGT alphabet")
    return "".join(_CODE_TO_CHAR[codes])


def reverse_complement(sequence: str) -> str:
    """Return the reverse complement of a DNA sequence."""
    return "".join(_COMPLEMENT[c] for c in reversed(sequence))


def pack_kmer(kmer: str) -> int:
    """Pack a k-mer over ``ACGT`` into an integer in ``[0, 4**k)``.

    Packing preserves lexicographic order: ``pack_kmer(a) < pack_kmer(b)``
    iff ``a < b`` for equal-length k-mers.
    """
    value = 0
    for c in kmer:
        try:
            value = (value << 2) | _DNA_TO_2BIT[c]
        except KeyError as exc:
            raise AlphabetError(f"invalid k-mer symbol: {exc.args[0]!r}") from exc
    return value


def unpack_kmer(value: int, k: int) -> str:
    """Inverse of :func:`pack_kmer` for a k-mer of length *k*."""
    if value < 0 or value >= 4**k:
        raise ValueError(f"packed k-mer {value} out of range for k={k}")
    symbols = []
    for shift in range((k - 1) * 2, -1, -2):
        symbols.append(_2BIT_TO_DNA[(value >> shift) & 0b11])
    return "".join(symbols)


def iter_kmers(sequence: str, k: int):
    """Yield all overlapping k-mers of *sequence* (no sentinel)."""
    if k <= 0:
        raise ValueError("k must be positive")
    for i in range(len(sequence) - k + 1):
        yield sequence[i : i + k]


def kmer_count(k: int) -> int:
    """Number of distinct k-mers over the 4-letter DNA alphabet."""
    if k < 0:
        raise ValueError("k must be non-negative")
    return 4**k


def gc_content(sequence: str) -> float:
    """Fraction of G/C symbols in *sequence* (0.0 for empty input)."""
    if not sequence:
        return 0.0
    gc = sum(1 for c in sequence if c in "GC")
    return gc / len(sequence)
