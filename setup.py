import setuptools; setuptools.setup()
