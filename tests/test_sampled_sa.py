"""Unit tests for repro.index.sampled_sa."""

from __future__ import annotations

import numpy as np
import pytest

from repro.genome.sequence import random_genome
from repro.index.sampled_sa import SampledSuffixArray, sampled_sa_size_bytes
from repro.index.suffix_array import suffix_array


@pytest.fixture(scope="module")
def sa() -> np.ndarray:
    return suffix_array(random_genome(500, seed=1))


class TestSampledSuffixArray:
    def test_sample_count(self, sa):
        sampled = SampledSuffixArray(sa, sample_rate=8)
        assert sampled.sample_count == (len(sa) + 7) // 8

    def test_sampled_rows_return_exact_values(self, sa):
        sampled = SampledSuffixArray(sa, sample_rate=4)
        for row in range(0, len(sa), 4):
            assert sampled.get_sampled(row) == sa[row]

    def test_unsampled_row_raises(self, sa):
        sampled = SampledSuffixArray(sa, sample_rate=4)
        with pytest.raises(KeyError):
            sampled.get_sampled(1)

    def test_is_sampled(self, sa):
        sampled = SampledSuffixArray(sa, sample_rate=3)
        assert sampled.is_sampled(0)
        assert sampled.is_sampled(3)
        assert not sampled.is_sampled(4)

    def test_out_of_range_row_raises(self, sa):
        sampled = SampledSuffixArray(sa, sample_rate=4)
        with pytest.raises(IndexError):
            sampled.is_sampled(len(sa))

    def test_rate_one_keeps_everything(self, sa):
        sampled = SampledSuffixArray(sa, sample_rate=1)
        assert sampled.sample_count == len(sa)

    def test_invalid_rate_raises(self, sa):
        with pytest.raises(ValueError):
            SampledSuffixArray(sa, sample_rate=0)

    def test_empty_sa_raises(self):
        with pytest.raises(ValueError):
            SampledSuffixArray(np.array([]), sample_rate=2)

    def test_storage_bytes(self, sa):
        sampled = SampledSuffixArray(sa, sample_rate=8)
        assert sampled.storage_bytes() == sampled.sample_count * 8


class TestSizeModel:
    def test_size_shrinks_with_rate(self):
        assert sampled_sa_size_bytes(10**9, 64) < sampled_sa_size_bytes(10**9, 8)

    def test_full_sa_size_for_human(self):
        size_gb = sampled_sa_size_bytes(3 * 10**9, 1) / 1024**3
        assert 10 < size_gb < 14

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            sampled_sa_size_bytes(0, 8)
        with pytest.raises(ValueError):
            sampled_sa_size_bytes(100, 0)
