"""The optional numba fast paths and their pure-Python fallbacks.

:mod:`repro.hw.jit` compiles the two surviving scalar recurrences — the
DRAM bus/bank/stream timing chain and the exact-LRU head pass — when
numba is importable, and hands back ``None`` otherwise so the call sites
keep their tuned numpy fallbacks.  The contract is **bit-identical
outputs** on both paths; the jit-vs-fallback comparisons here only run
where numba exists (the CI image), while the gate/dispatch tests run
everywhere (the dev container has no numba, which is itself a covered
configuration).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw import cache as hw_cache
from repro.hw import dram as hw_dram
from repro.hw import jit as hw_jit


class TestNumbaGate:
    @pytest.mark.parametrize(
        "raw, expected",
        [("1", True), ("true", True), ("YES", True), ("on", True), ("", False)],
    )
    def test_disable_env_truthy_values(self, monkeypatch, raw, expected):
        monkeypatch.setenv(hw_jit.NO_NUMBA_ENV, raw)
        assert hw_jit.numba_disabled() is expected

    def test_disable_env_unset_or_falsy(self, monkeypatch):
        monkeypatch.delenv(hw_jit.NO_NUMBA_ENV, raising=False)
        assert not hw_jit.numba_disabled()
        monkeypatch.setenv(hw_jit.NO_NUMBA_ENV, "0")
        assert not hw_jit.numba_disabled()

    def test_jit_recurrence_matches_have_numba(self):
        """jit_recurrence returns a compiled callable iff numba loaded."""
        compiled = hw_jit.jit_recurrence(lambda x: x)
        assert (compiled is not None) == hw_jit.HAVE_NUMBA

    def test_module_level_jits_consistent(self):
        """The dram/cache modules hold a jit exactly when numba loaded."""
        assert (hw_dram._bus_recurrence_jit is not None) == hw_jit.HAVE_NUMBA
        assert (hw_cache._lru_heads_jit is not None) == hw_jit.HAVE_NUMBA


def _bus_columns(rng, n=400, bank_count=8, stream_count=5):
    return (
        np.ascontiguousarray(rng.integers(0, bank_count, n), dtype=np.int64),
        np.ascontiguousarray(rng.integers(0, stream_count, n), dtype=np.int64),
        np.ascontiguousarray(rng.integers(1, 6, n), dtype=np.int64),
        np.ascontiguousarray(rng.integers(1, 48, n), dtype=np.int64),
        np.ascontiguousarray(rng.integers(1, 9, n), dtype=np.int64),
        np.ascontiguousarray(rng.integers(0, 20, n), dtype=np.int64),
        bank_count,
        stream_count,
    )


@pytest.mark.skipif(not hw_jit.HAVE_NUMBA, reason="numba absent or disabled")
class TestJitEqualsFallback:
    """Where numba exists, the compiled recurrences must be bit-identical
    to the pure-Python originals on arbitrary valid columns."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bus_recurrence(self, seed):
        args = _bus_columns(np.random.default_rng(seed))
        assert int(hw_dram._bus_recurrence_jit(*args)) == int(
            hw_dram._bus_recurrence(*args)
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_lru_heads(self, seed):
        rng = np.random.default_rng(seed)
        group_count, associativity = 6, 4
        head_tags = np.ascontiguousarray(rng.integers(0, 12, 300), dtype=np.int64)
        group_of_head = np.ascontiguousarray(
            rng.integers(0, group_count, 300), dtype=np.int64
        )
        jit_hits = hw_cache._lru_heads_jit(
            head_tags, group_of_head, associativity, group_count
        )
        py_hits = hw_cache._lru_heads(
            head_tags, group_of_head, associativity, group_count
        )
        assert np.array_equal(jit_hits, py_hits)


class TestPublicDispatch:
    """Whichever path is active, the public entry points agree with the
    object-model references (belt over the hypothesis oracles)."""

    def test_simulate_lru_hits_vs_reference_cache(self):
        rng = np.random.default_rng(7)
        addresses = rng.integers(0, 4096, 500) * 8
        hits = hw_cache.simulate_lru_hits(
            addresses, capacity_bytes=2048, line_bytes=64, associativity=4
        )
        reference = hw_cache.SetAssociativeCache(
            capacity_bytes=2048, line_bytes=64, associativity=4
        )
        expected = np.array([reference.access(int(a)) for a in addresses])
        assert np.array_equal(hits, expected)
