"""Design-space exploration suite: ConfigPoint validation, the Pareto
frontier's permutation invariance, grid parsing, and the end-to-end
harness contract (baseline equals ``run``, frontier re-derivable), plus
the registered ``dse`` CI gate over a freshly written record.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import ExmaAcceleratorConfig
from repro.accel.configspace import (
    AXES,
    ConfigPoint,
    baseline_point,
    enumerate_grid,
    parse_grid,
    pareto_frontier,
    point_from_dict,
    point_to_dict,
)
from repro.experiments import run_dse, write_dse_json
from repro.hw.dram import PagePolicy

#: Cache geometry fields that must be powers of two.
GEOMETRY_FIELDS = (
    "base_cache_sets",
    "base_cache_ways",
    "index_cache_sets",
    "index_cache_ways",
)

non_power_of_two = st.integers(min_value=2, max_value=1 << 14).filter(
    lambda value: value & (value - 1) != 0
)

objective_vectors = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=-6, max_value=0),
        st.integers(min_value=-6, max_value=0),
    ),
    min_size=1,
    max_size=12,
)


class TestConfigPointValidation:
    @pytest.mark.parametrize("field_name", GEOMETRY_FIELDS)
    @given(value=non_power_of_two)
    @settings(max_examples=30, deadline=None)
    def test_rejects_non_power_of_two_geometry(self, field_name, value):
        with pytest.raises(ValueError):
            ConfigPoint(**{field_name: value})

    @pytest.mark.parametrize("field_name", GEOMETRY_FIELDS)
    @given(exponent=st.integers(min_value=0, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_accepts_power_of_two_geometry(self, field_name, exponent):
        point = ConfigPoint(**{field_name: 1 << exponent})
        assert getattr(point, field_name) == 1 << exponent

    @pytest.mark.parametrize("field_name", ("cam_entries", "window"))
    @pytest.mark.parametrize("value", (0, -1, -512))
    def test_rejects_non_positive_counts(self, field_name, value):
        with pytest.raises(ValueError):
            ConfigPoint(**{field_name: value})

    def test_baseline_is_table1(self):
        assert baseline_point().accelerator_config() == ExmaAcceleratorConfig()

    def test_roundtrips_through_dict(self):
        for point in enumerate_grid(parse_grid("cam=64,512;page=close,dynamic")):
            assert point_from_dict(point_to_dict(point)) == point


class TestParetoFrontier:
    @given(vectors=objective_vectors, permutation=st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_membership_invariant_under_permutation(self, vectors, permutation):
        """Permutation oracle: which *vectors* survive must not depend on
        the order they were offered in (ties never dominate, so equal
        vectors all survive together)."""
        shuffled = list(vectors)
        permutation.shuffle(shuffled)
        original = sorted(vectors[i] for i in pareto_frontier(vectors))
        reordered = sorted(shuffled[i] for i in pareto_frontier(shuffled))
        assert original == reordered

    @given(vectors=objective_vectors)
    @settings(max_examples=40, deadline=None)
    def test_frontier_is_nonempty_and_undominated(self, vectors):
        indices = pareto_frontier(vectors)
        assert indices, "a non-empty input always has a maximum"
        for i in indices:
            for other in vectors:
                if other != vectors[i]:
                    assert not all(o >= c for o, c in zip(other, vectors[i]))

    def test_dominated_point_is_dropped(self):
        vectors = [(2.0, -1.0, -1.0), (1.0, -2.0, -1.0), (3.0, -1.0, -1.0)]
        assert pareto_frontier(vectors) == [2]


class TestGridParsing:
    def test_parses_every_axis(self):
        grid = parse_grid(
            "cam=64,128;base_sets=16;base_ways=4,8;index_sets=4;index_ways=4;"
            "page=close,dynamic;mtl=default,16;window=1,2"
        )
        assert set(grid) == set(AXES)
        assert grid["page"] == (PagePolicy.CLOSE, PagePolicy.DYNAMIC)
        assert grid["mtl"] == (None, 16)

    def test_rejects_unknown_axis(self):
        with pytest.raises(ValueError):
            parse_grid("cam=64;rowbuffer=2")

    def test_deduplicates_preserving_order(self):
        assert parse_grid("cam=128,64,128")["cam"] == (128, 64)

    def test_enumerate_includes_every_combination(self):
        points = enumerate_grid(parse_grid("cam=64,128;window=1,2"))
        assert len(points) == 4
        assert {(p.cam_entries, p.window) for p in points} == {
            (64, 1), (64, 2), (128, 1), (128, 2)
        }


def _load_ci_gates():
    path = pathlib.Path(__file__).resolve().parent.parent / "scripts" / "ci_gates.py"
    spec = importlib.util.spec_from_file_location("ci_gates", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def toy_dse():
    return run_dse(
        genome_length=4000,
        query_count=120,
        query_length=32,
        batches=3,
        mtl_epochs=10,
        grid="cam=64,128;window=1,2",
        workers=2,
    )


class TestDseHarness:
    def test_baseline_reproduces_run(self, toy_dse):
        assert toy_dse.baseline_matches_run

    def test_frontier_nonempty_and_rederivable(self, toy_dse):
        assert toy_dse.frontier
        assert all(point.rederived_equal for point in toy_dse.frontier)

    def test_frontier_rows_are_undominated(self, toy_dse):
        vectors = [row.objectives() for row in toy_dse.rows]
        frontier = {toy_dse.rows[i].label for i in pareto_frontier(vectors)}
        assert {point.label for point in toy_dse.frontier} == frontier
        assert set(toy_dse.frontier_labels) == frontier

    def test_exactly_one_baseline_row(self, toy_dse):
        assert sum(1 for row in toy_dse.rows if row.baseline) == 1

    def test_dse_gate_passes_on_written_record(self, toy_dse, tmp_path, capsys):
        record_path = tmp_path / "dse.json"
        write_dse_json(str(record_path), toy_dse)
        ci_gates = _load_ci_gates()
        assert ci_gates.main(["ci_gates.py", "--gate", f"dse={record_path}"]) == 0
        assert "OK [dse]" in capsys.readouterr().out

    def test_dse_gate_rejects_tampered_frontier(self, toy_dse, tmp_path, capsys):
        record_path = tmp_path / "dse.json"
        record = write_dse_json(str(record_path), toy_dse)
        # Claim an extra, dominated row is on the frontier: the gate's
        # local Pareto recomputation must catch the mismatch.
        off = next(row for row in record["rows"] if not row["on_frontier"])
        off["on_frontier"] = True
        record["frontier"].append(
            {
                "label": off["label"],
                "mbase_per_second": off["mbase_per_second"],
                "energy_per_base_nj": off["energy_per_base_nj"],
                "area_mm2": off["area_mm2"],
                "rederived_equal": True,
            }
        )
        record_path.write_text(json.dumps(record))
        ci_gates = _load_ci_gates()
        assert ci_gates.main(["ci_gates.py", "--gate", f"dse={record_path}"]) == 1
        assert "recomputed Pareto set" in capsys.readouterr().err
