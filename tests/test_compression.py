"""Unit tests for CHAIN and BΔI compression (repro.exma.chain / .bdi)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exma import bdi, chain

sorted_arrays = st.lists(
    st.integers(min_value=0, max_value=2**31 - 1), min_size=1, max_size=200
).map(sorted)


class TestChain:
    def test_roundtrip_simple(self):
        values = np.array([10, 12, 15, 30, 31])
        assert np.array_equal(chain.decompress(chain.compress(values)), values)

    def test_roundtrip_multi_line(self):
        values = np.arange(0, 1000, 3)
        assert np.array_equal(chain.decompress(chain.compress(values)), values)

    def test_sorted_data_compresses_well(self):
        values = np.arange(0, 64000, 7)  # small deltas (7)
        assert chain.compression_ratio(values) < 0.5

    def test_sparse_data_compresses_less(self):
        rng = np.random.default_rng(0)
        values = np.sort(rng.integers(0, 2**30, size=2048))
        dense = np.arange(2048)
        assert chain.compression_ratio(values) > chain.compression_ratio(dense)

    def test_ratio_of_constant_deltas(self):
        values = np.arange(16, dtype=np.int64)
        line = chain.compress_line(values)
        assert line.delta_bytes == 1
        assert line.compressed_bytes == chain.ENTRY_BYTES + 15

    def test_empty_line_raises(self):
        with pytest.raises(ValueError):
            chain.compress_line(np.array([], dtype=np.int64))

    def test_empty_array(self):
        assert chain.decompress([]).size == 0
        assert chain.compression_ratio(np.array([])) == 1.0

    def test_invalid_entries_per_line(self):
        with pytest.raises(ValueError):
            chain.compress(np.arange(10), entries_per_line=0)

    def test_uncompressed_size(self):
        assert chain.uncompressed_size_bytes(np.arange(10)) == 10 * chain.ENTRY_BYTES

    def test_compressed_size_never_larger_than_8_bytes_per_entry(self):
        rng = np.random.default_rng(1)
        values = np.sort(rng.integers(0, 2**40, size=512))
        assert chain.compressed_size_bytes(values) <= values.size * 8 + chain.ENTRY_BYTES * 32

    @given(sorted_arrays)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, values):
        array = np.array(values, dtype=np.int64)
        assert np.array_equal(chain.decompress(chain.compress(array)), array)


class TestBdi:
    def test_roundtrip_simple(self):
        values = np.array([1000, 1004, 1010, 990])
        assert np.array_equal(bdi.decompress(bdi.compress(values)), values)

    def test_roundtrip_multi_line(self):
        values = np.arange(100, 1000, 5)
        assert np.array_equal(bdi.decompress(bdi.compress(values)), values)

    def test_clustered_values_compress(self):
        values = np.array([10_000 + d for d in range(8)])
        line = bdi.compress_line(values)
        assert line.compressed and line.delta_bytes == 1

    def test_scattered_values_do_not_compress(self):
        values = np.array([0, 2**40, 2**41, 2**42, 1, 2, 3, 4])
        line = bdi.compress_line(values)
        assert not line.compressed
        assert line.compressed_bytes == 8 * bdi.SECTION_BYTES

    def test_empty_line_raises(self):
        with pytest.raises(ValueError):
            bdi.compress_line(np.array([], dtype=np.int64))

    def test_invalid_sections_per_line(self):
        with pytest.raises(ValueError):
            bdi.compress(np.arange(10), sections_per_line=0)

    def test_empty_array(self):
        assert bdi.decompress([]).size == 0
        assert bdi.compression_ratio(np.array([])) == 1.0

    @given(sorted_arrays)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, values):
        array = np.array(values, dtype=np.int64)
        assert np.array_equal(bdi.decompress(bdi.compress(array)), array)


class TestChainVsBdi:
    """The Fig. 23 claim: CHAIN compresses sorted increments better than BΔI."""

    def test_chain_beats_bdi_on_sorted_increments(self):
        rng = np.random.default_rng(2)
        # Sorted row numbers spread over a large range, like EXMA increments.
        # Compare absolute compressed bytes for the same values: CHAIN's
        # consecutive deltas are smaller than BΔI's deltas-to-base, so it
        # needs fewer bytes per value.
        increments = np.sort(rng.choice(3_000_000, size=4096, replace=False))
        chain_bytes_per_value = chain.compressed_size_bytes(increments) / increments.size
        bdi_bytes_per_value = bdi.compressed_size_bytes(increments) / increments.size
        assert chain_bytes_per_value < bdi_bytes_per_value

    def test_both_are_lossless_on_same_data(self):
        increments = np.sort(np.random.default_rng(3).choice(10**6, size=1024, replace=False))
        assert np.array_equal(chain.decompress(chain.compress(increments)), increments)
        assert np.array_equal(bdi.decompress(bdi.compress(increments)), increments)
