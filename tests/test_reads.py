"""Unit tests for repro.genome.reads (read simulators, error profiles)."""

from __future__ import annotations

import pytest

from repro.genome.reads import (
    ILLUMINA,
    ONT_2D,
    PACBIO,
    PROFILES,
    ErrorProfile,
    ReadSimulator,
    simulate_long_reads,
    simulate_short_reads,
)
from repro.genome.sequence import random_genome


@pytest.fixture(scope="module")
def reference() -> str:
    return random_genome(3000, seed=21)


class TestErrorProfiles:
    def test_paper_profiles_registered(self):
        assert set(PROFILES) == {"Illumina", "PacBio", "ONT2D"}

    def test_illumina_total_rate(self):
        assert ILLUMINA.total == pytest.approx(0.002)

    def test_pacbio_total_rate(self):
        assert PACBIO.total == pytest.approx(0.1501)

    def test_ont_total_rate(self):
        assert ONT_2D.total == pytest.approx(0.30)

    def test_error_ordering_matches_paper(self):
        assert ILLUMINA.total < PACBIO.total < ONT_2D.total

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            ErrorProfile("bad", mismatch=1.5, insertion=0.0, deletion=0.0)


class TestReadSimulator:
    def test_count_mode(self, reference):
        reads = ReadSimulator(reference, ILLUMINA, seed=0).simulate(read_length=101, count=7)
        assert len(reads) == 7

    def test_coverage_mode(self, reference):
        reads = ReadSimulator(reference, ILLUMINA, seed=0).simulate(read_length=100, coverage=2.0)
        total_bases = sum(len(r.sequence) for r in reads)
        assert total_bases == pytest.approx(2 * len(reference), rel=0.2)

    def test_both_count_and_coverage_raises(self, reference):
        with pytest.raises(ValueError):
            ReadSimulator(reference, ILLUMINA).simulate(read_length=50, count=5, coverage=1.0)

    def test_neither_count_nor_coverage_raises(self, reference):
        with pytest.raises(ValueError):
            ReadSimulator(reference, ILLUMINA).simulate(read_length=50)

    def test_read_length_exceeding_reference_raises(self, reference):
        with pytest.raises(ValueError):
            ReadSimulator(reference, ILLUMINA).simulate(read_length=len(reference) + 1, count=1)

    def test_reads_record_true_positions(self, reference):
        reads = ReadSimulator(reference, ILLUMINA, seed=1).simulate(read_length=80, count=10)
        for read in reads:
            assert 0 <= read.true_position <= len(reference) - 80

    def test_error_free_reads_match_reference(self, reference):
        profile = ErrorProfile("perfect", 0.0, 0.0, 0.0)
        reads = ReadSimulator(reference, profile, seed=2).simulate(
            read_length=60, count=10, both_strands=False
        )
        for read in reads:
            assert read.sequence == reference[read.true_position : read.true_position + 60]

    def test_illumina_reads_mostly_match(self, reference):
        reads = ReadSimulator(reference, ILLUMINA, seed=3).simulate(
            read_length=100, count=20, both_strands=False
        )
        mismatches = sum(
            1
            for read in reads
            if read.sequence != reference[read.true_position : read.true_position + 100]
        )
        assert mismatches < len(reads)

    def test_ont_reads_heavily_corrupted(self, reference):
        reads = ReadSimulator(reference, ONT_2D, seed=4).simulate(
            read_length=200, count=10, both_strands=False
        )
        exact = sum(
            1
            for read in reads
            if read.sequence == reference[read.true_position : read.true_position + 200]
        )
        assert exact == 0

    def test_deterministic_with_seed(self, reference):
        a = ReadSimulator(reference, PACBIO, seed=5).simulate(read_length=100, count=5)
        b = ReadSimulator(reference, PACBIO, seed=5).simulate(read_length=100, count=5)
        assert [r.sequence for r in a] == [r.sequence for r in b]

    def test_reverse_strand_flag_set(self, reference):
        reads = ReadSimulator(reference, ILLUMINA, seed=6).simulate(read_length=80, count=40)
        assert any(r.reverse for r in reads) and any(not r.reverse for r in reads)

    def test_empty_reference_raises(self):
        with pytest.raises(ValueError):
            ReadSimulator("", ILLUMINA)

    def test_fastq_conversion(self, reference):
        read = ReadSimulator(reference, ILLUMINA, seed=7).simulate(read_length=50, count=1)[0]
        record = read.to_fastq()
        assert record.name == read.name
        assert len(record.quality) == len(record.sequence)


class TestConvenienceWrappers:
    def test_short_reads_wrapper(self, reference):
        reads = simulate_short_reads(reference, coverage=0.5, seed=8)
        assert all(r.profile == "Illumina" for r in reads)
        assert all(abs(len(r.sequence) - 101) <= 5 for r in reads)

    def test_long_reads_wrapper(self, reference):
        reads = simulate_long_reads(reference, profile=PACBIO, coverage=0.5, seed=9)
        assert all(r.profile == "PacBio" for r in reads)

    def test_long_reads_cap_to_reference(self):
        genome = random_genome(400, seed=10)
        reads = simulate_long_reads(genome, coverage=1.0, read_length=1000, seed=11)
        assert all(len(r.sequence) <= 600 for r in reads)
