"""Shared fixtures: small deterministic references and prebuilt indexes.

Expensive structures (suffix arrays, FM-Indexes, EXMA tables, trained MTL
indexes) are built once per session on small references so the whole suite
stays fast while still exercising real construction code.
"""

from __future__ import annotations

import pytest

from repro.exma.mtl_index import MTLIndex
from repro.exma.table import ExmaTable
from repro.genome.sequence import random_genome
from repro.index.fmindex import FMIndex


@pytest.fixture(scope="session")
def small_reference() -> str:
    """A 2 kbp deterministic reference with human-like repeat structure."""
    return random_genome(2000, seed=42)


@pytest.fixture(scope="session")
def tiny_reference() -> str:
    """A 300 bp reference for brute-force comparisons."""
    return random_genome(300, seed=7)


@pytest.fixture(scope="session")
def fm_index(small_reference: str) -> FMIndex:
    """FM-Index over the small reference."""
    return FMIndex(small_reference)


@pytest.fixture(scope="session")
def exma_table(small_reference: str) -> ExmaTable:
    """EXMA table (k=4) over the small reference."""
    return ExmaTable(small_reference, k=4)


@pytest.fixture(scope="session")
def mtl_index(exma_table: ExmaTable) -> MTLIndex:
    """A small trained MTL index over the session EXMA table."""
    return MTLIndex(exma_table, model_threshold=8, samples_per_kmer=32, epochs=60, seed=0)


# Shared helpers (brute_force_find, query generators) live in
# ``repro.testing`` — import them explicitly; conftest.py holds fixtures
# only, so tests/ and benchmarks/ can never race for the ``conftest``
# module name again.
