"""Cross-module integration tests.

These tests tie the substrates together the way the paper's system does:
one reference, several search structures, the accelerator model on top, and
the applications driving them — asserting that every layer agrees with the
ground truth and with each other.
"""

from __future__ import annotations

import pytest

from repro.testing import brute_force_find
from repro.accel.config import exma_full_config
from repro.accel.exma_accelerator import ExmaAccelerator
from repro.apps.alignment import ReadAligner, alignment_accuracy
from repro.exma.mtl_index import MTLIndex
from repro.exma.search import ExmaSearch
from repro.exma.table import ExmaTable
from repro.genome.datasets import build_dataset
from repro.genome.reads import ILLUMINA, ReadSimulator
from repro.index.fmindex import FMIndex
from repro.index.kstep import KStepFMIndex
from repro.lisa.search import LisaIndex

pytestmark = pytest.mark.slow  # drives every layer end-to-end


@pytest.fixture(scope="module")
def pipeline_reference() -> str:
    return build_dataset("human", simulated_length=5000, seed=9).sequence


@pytest.fixture(scope="module")
def all_indexes(pipeline_reference):
    table = ExmaTable(pipeline_reference, k=4)
    return {
        "fm": FMIndex(pipeline_reference),
        "kstep": KStepFMIndex(pipeline_reference, k=4),
        "lisa": LisaIndex(pipeline_reference, k=4, use_learned_index=True),
        "exma": ExmaSearch(
            table, index=MTLIndex(table, model_threshold=16, samples_per_kmer=32, epochs=50)
        ),
    }


class TestAllSearchStructuresAgree:
    """Every search structure must return identical occurrence counts."""

    @pytest.mark.parametrize("length", [5, 8, 12, 16, 21])
    def test_occurrence_counts_agree(self, all_indexes, pipeline_reference, length):
        for start in range(0, 4000, 457):
            query = pipeline_reference[start : start + length]
            expected = len(brute_force_find(pipeline_reference, query))
            counts = {name: idx.occurrence_count(query) for name, idx in all_indexes.items()}
            assert set(counts.values()) == {expected}, (query, counts)

    def test_located_positions_agree(self, all_indexes, pipeline_reference):
        query = pipeline_reference[1000:1018]
        expected = brute_force_find(pipeline_reference, query)
        assert all_indexes["fm"].find(query) == expected
        assert all_indexes["kstep"].find(query) == expected
        assert all_indexes["lisa"].find(query) == expected
        assert all_indexes["exma"].find(query) == expected


class TestSeedingToAcceleratorPipeline:
    """Reads -> seeding queries -> EXMA requests -> accelerator statistics."""

    def test_full_pipeline(self, pipeline_reference):
        table = ExmaTable(pipeline_reference, k=4)
        mtl = MTLIndex(table, model_threshold=16, samples_per_kmer=32, epochs=50, seed=1)
        search = ExmaSearch(table, index=mtl)
        reads = ReadSimulator(pipeline_reference, ILLUMINA, seed=2).simulate(
            read_length=60, count=10
        )
        queries = [read.sequence[:32] for read in reads]
        requests, stats = search.request_stream(queries)
        assert stats.iterations >= len(queries)

        config = exma_full_config().with_overrides(
            base_cache_bytes=4096, index_cache_bytes=1024, cam_entries=64
        )
        result = ExmaAccelerator(table, mtl, config).run(requests, name="pipeline")
        assert result.requests == len(requests)
        assert result.throughput.mbase_per_second > 0
        assert result.dram.requests > 0
        # Dynamic page policy must find at least some row-buffer hits on the
        # paired low/high lookups.
        assert result.dram.row_hits >= 0

    def test_alignment_on_top_of_fm_index(self, pipeline_reference):
        reads = ReadSimulator(pipeline_reference, ILLUMINA, seed=3).simulate(
            read_length=70, count=8
        )
        aligner = ReadAligner(pipeline_reference)
        results, counters = aligner.align_batch(reads)
        assert counters.reads == 8
        assert alignment_accuracy(results, reads, tolerance=30) >= 0.5


class TestScalingConsistency:
    """Size models and simulated structures must tell one consistent story."""

    def test_exma_smaller_than_kstep_at_same_k(self):
        from repro.exma.table import exma_size_breakdown
        from repro.index.kstep import kstep_size_bytes

        genome_length = 3_000_000_000
        exma_total = exma_size_breakdown(genome_length, 15).total
        kstep_total = kstep_size_bytes(genome_length, 15)
        assert exma_total < kstep_total

    def test_simulated_table_matches_analytic_entry_count(self, pipeline_reference):
        table = ExmaTable(pipeline_reference, k=4)
        # The analytic model counts one increment per genome position; the
        # simulated table drops only the k sentinel-crossing rows.
        assert abs(table.increments.size - len(pipeline_reference)) <= table.k
