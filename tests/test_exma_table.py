"""Unit tests for repro.exma.table (the EXMA table)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exma.table import ExmaTable, exma_size_breakdown
from repro.genome.alphabet import pack_kmer
from repro.genome.datasets import HUMAN_PAPER_LENGTH


class TestConstruction:
    def test_invalid_k_raises(self, small_reference):
        with pytest.raises(ValueError):
            ExmaTable(small_reference, k=0)

    def test_empty_reference_raises(self):
        with pytest.raises(ValueError):
            ExmaTable("", k=2)

    def test_kmer_count_is_4_to_k(self, exma_table):
        assert exma_table.kmer_count == 4**4

    def test_max_sentinel_value(self, exma_table, small_reference):
        assert exma_table.max_sentinel == len(small_reference) + 2

    def test_reference_length_includes_sentinel(self, exma_table, small_reference):
        assert exma_table.reference_length == len(small_reference) + 1


class TestIncrementsAndBases:
    def test_total_increments_counts_dna_kmers(self, exma_table, small_reference):
        # Every position whose preceding k-mer avoids the sentinel produces
        # exactly one increment: n + 1 rows minus the k sentinel-crossing
        # rows minus the sentinel row itself... equivalently len - k + 1
        # interior occurrences plus the wrap-free tail.
        assert exma_table.increments.size == len(small_reference) - exma_table.k + 1

    def test_increment_lists_sorted(self, exma_table):
        for packed in exma_table.present_kmers()[:50]:
            increments = exma_table.increments_of(packed)
            assert np.all(np.diff(increments) > 0)

    def test_frequencies_match_substring_counts(self, exma_table, small_reference):
        for kmer in ("ACGT", "GGCC", small_reference[10:14], small_reference[503:507]):
            expected = sum(
                1
                for i in range(len(small_reference) - 4 + 1)
                if small_reference[i : i + 4] == kmer
            )
            assert exma_table.frequency(kmer) == expected

    def test_absent_kmer_base_is_max(self, exma_table, small_reference):
        frequencies = exma_table.frequencies()
        absent = int(np.flatnonzero(frequencies == 0)[0]) if np.any(frequencies == 0) else None
        if absent is None:
            pytest.skip("every 4-mer occurs in this reference")
        assert exma_table.base(absent) == exma_table.max_sentinel
        assert exma_table.increments_of(absent).size == 0

    def test_bases_point_to_contiguous_blocks(self, exma_table):
        cursor = 0
        frequencies = exma_table.frequencies()
        for packed in range(exma_table.kmer_count):
            if frequencies[packed] == 0:
                continue
            assert exma_table.base(packed) == cursor
            cursor += int(frequencies[packed])
        assert cursor == exma_table.increments.size

    def test_frequencies_sum_to_increments(self, exma_table):
        assert int(exma_table.frequencies().sum()) == exma_table.increments.size


class TestOccAndCount:
    def test_occ_zero_at_position_zero(self, exma_table):
        for packed in exma_table.present_kmers()[:20]:
            assert exma_table.occ(packed, 0) == 0

    def test_occ_full_range_equals_frequency(self, exma_table):
        for packed in exma_table.present_kmers()[:20]:
            assert exma_table.occ(packed, exma_table.reference_length) == exma_table.frequency(
                packed
            )

    def test_occ_monotone_in_position(self, exma_table):
        packed = exma_table.present_kmers()[0]
        values = [exma_table.occ(packed, pos) for pos in range(0, exma_table.reference_length, 97)]
        assert values == sorted(values)

    def test_occ_out_of_range_raises(self, exma_table):
        with pytest.raises(ValueError):
            exma_table.occ(exma_table.present_kmers()[0], -1)

    def test_count_plus_occ_matches_fm_interval(self, exma_table, fm_index, small_reference):
        # For a full-interval step the EXMA (Count, Count + freq) interval
        # must equal the FM-Index interval of the same k-mer.
        for start in range(0, 900, 131):
            kmer = small_reference[start : start + 4]
            interval = fm_index.backward_search(kmer)
            count = exma_table.count(kmer)
            assert count == interval.low
            assert count + exma_table.frequency(kmer) == interval.high

    def test_occ_linear_matches_occ(self, exma_table, small_reference):
        packed = pack_kmer(small_reference[40:44])
        for pos in (0, 50, 500, 1500):
            exact = exma_table.occ(packed, pos)
            linear, reads = exma_table.occ_linear(packed, pos, start=0)
            assert linear == exact
            assert reads >= 1

    def test_occ_linear_from_wrong_start_still_correct(self, exma_table, small_reference):
        packed = pack_kmer(small_reference[200:204])
        count = exma_table.frequency(packed)
        exact = exma_table.occ(packed, 800)
        linear, _ = exma_table.occ_linear(packed, 800, start=count)
        assert linear == exact

    def test_wrong_kmer_length_raises(self, exma_table):
        with pytest.raises(ValueError):
            exma_table.occ("ACG", 0)

    def test_packed_out_of_range_raises(self, exma_table):
        with pytest.raises(ValueError):
            exma_table.frequency(4**4)


class TestPrefixInterval:
    def test_matches_fm_index(self, exma_table, fm_index, small_reference):
        for length in (1, 2, 3):
            for start in range(0, 600, 149):
                prefix = small_reference[start : start + length]
                low, high = exma_table.prefix_interval(prefix)
                fm_interval = fm_index.backward_search(prefix)
                assert (low, high) == (fm_interval.low, fm_interval.high)

    def test_invalid_length_raises(self, exma_table):
        with pytest.raises(ValueError):
            exma_table.prefix_interval("")
        with pytest.raises(ValueError):
            exma_table.prefix_interval("ACGTA")


class TestLocateAndStrings:
    def test_locate_returns_sorted_positions(self, exma_table):
        positions = exma_table.locate(5, 15)
        assert positions == sorted(positions)
        assert len(positions) == 10

    def test_locate_empty_interval(self, exma_table):
        assert exma_table.locate(7, 7) == []

    def test_kmer_string_roundtrip(self, exma_table):
        assert exma_table.kmer_string(pack_kmer("GATC")) == "GATC"

    def test_storage_bytes_positive(self, exma_table):
        assert exma_table.storage_bytes() > 0


class TestSizeModel:
    def test_increments_are_12gb_for_human(self):
        breakdown = exma_size_breakdown(HUMAN_PAPER_LENGTH, 15)
        assert 11 < breakdown.increments / 1024**3 < 13

    def test_bases_grow_4x_per_step(self):
        b15 = exma_size_breakdown(HUMAN_PAPER_LENGTH, 15).bases
        b16 = exma_size_breakdown(HUMAN_PAPER_LENGTH, 16).bases
        assert b16 == pytest.approx(4 * b15)

    def test_15_step_total_near_paper_value(self):
        total_gb = exma_size_breakdown(HUMAN_PAPER_LENGTH, 15).total / 1024**3
        assert 25 < total_gb < 35  # paper reports 29.5 GB

    def test_16_step_adds_about_12gb(self):
        t15 = exma_size_breakdown(HUMAN_PAPER_LENGTH, 15).total
        t16 = exma_size_breakdown(HUMAN_PAPER_LENGTH, 16).total
        assert 10 < (t16 - t15) / 1024**3 < 15

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            exma_size_breakdown(0, 15)
        with pytest.raises(ValueError):
            exma_size_breakdown(100, 0)


class TestSmallReferenceEdgeCases:
    def test_reference_shorter_than_k(self):
        table = ExmaTable("ACG", k=5)
        assert table.increments.size == 0

    def test_k_equal_reference_length(self):
        table = ExmaTable("ACGTA", k=5)
        assert table.increments.size <= 1

    def test_highly_repetitive_reference(self):
        table = ExmaTable("ACAC" * 50, k=2)
        assert table.frequency("AC") > 90
        assert table.frequency("CA") > 90
