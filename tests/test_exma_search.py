"""Unit tests for repro.exma.search (EXMA backward search)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testing import brute_force_find
from repro.exma.search import ExmaSearch, ExmaSearchStats
from repro.exma.table import ExmaTable
from repro.index.fmindex import FMIndex, Interval


@pytest.fixture(scope="module")
def exact_search(exma_table) -> ExmaSearch:
    return ExmaSearch(exma_table, index=None)


@pytest.fixture(scope="module")
def mtl_search(exma_table, mtl_index) -> ExmaSearch:
    return ExmaSearch(exma_table, index=mtl_index)


class TestCorrectness:
    def test_intervals_match_fm_index(self, exact_search, fm_index, small_reference):
        for start in range(0, 1700, 103):
            query = small_reference[start : start + 16]
            a = exact_search.backward_search(query)
            b = fm_index.backward_search(query)
            assert (a.low, a.high) == (b.low, b.high)

    def test_mtl_search_same_results_as_exact(self, mtl_search, exact_search, small_reference):
        # The learned index only changes *where* the linear search starts;
        # results must be identical.
        for start in range(0, 1500, 139):
            query = small_reference[start : start + 12]
            a = mtl_search.backward_search(query)
            b = exact_search.backward_search(query)
            assert (a.low, a.high) == (b.low, b.high)

    def test_find_matches_brute_force(self, mtl_search, small_reference):
        for start in range(0, 1200, 211):
            query = small_reference[start : start + 12]
            assert mtl_search.find(query) == brute_force_find(small_reference, query)

    def test_partial_chunk_queries(self, mtl_search, fm_index, small_reference):
        for length in (3, 5, 6, 7, 9, 10, 11, 13):
            query = small_reference[777 : 777 + length]
            assert mtl_search.occurrence_count(query) == fm_index.occurrence_count(query)

    def test_absent_query_returns_empty(self, exact_search, small_reference):
        query = "ACGTACGTACGTACGT"
        expected = brute_force_find(small_reference, query)
        assert exact_search.occurrence_count(query) == len(expected)

    def test_empty_query_raises(self, exact_search):
        with pytest.raises(ValueError):
            exact_search.backward_search("")

    def test_wrong_kmer_length_in_extend_raises(self, exact_search):
        with pytest.raises(ValueError):
            exact_search.extend("AC", Interval(0, 5))

    @given(st.integers(min_value=0, max_value=1900), st.integers(min_value=4, max_value=24))
    @settings(max_examples=25, deadline=None)
    def test_substring_occurrences_property(
        self, mtl_search, fm_index, small_reference, start, length
    ):
        query = small_reference[start : start + length]
        if len(query) < 4:
            return
        assert mtl_search.occurrence_count(query) == fm_index.occurrence_count(query)


class TestStats:
    def test_iterations_per_query(self, exact_search, small_reference):
        stats = ExmaSearchStats()
        exact_search.backward_search(small_reference[40:56], stats)
        assert stats.iterations == 4
        assert stats.occ_lookups == 8

    def test_partial_chunk_adds_iteration(self, exact_search, small_reference):
        stats = ExmaSearchStats()
        exact_search.backward_search(small_reference[40:54], stats)  # 14 = 3*4 + 2
        assert stats.iterations == 4

    def test_requests_record_kmer_and_pos(self, mtl_search, small_reference):
        stats = ExmaSearchStats()
        mtl_search.backward_search(small_reference[100:116], stats)
        assert len(stats.requests) == stats.occ_lookups
        for request in stats.requests:
            assert 0 <= request.packed_kmer < mtl_search.table.kmer_count
            assert 0 <= request.pos <= mtl_search.table.reference_length

    def test_mtl_predictions_counted(self, mtl_search, small_reference):
        stats = ExmaSearchStats()
        for start in range(0, 600, 53):
            mtl_search.backward_search(small_reference[start : start + 16], stats)
        assert stats.index_predictions + stats.occ_lookups > 0
        assert stats.increment_entries_read > 0

    def test_mean_error_non_negative(self, mtl_search, small_reference):
        stats = ExmaSearchStats()
        mtl_search.backward_search(small_reference[200:232], stats)
        assert stats.mean_error >= 0.0

    def test_request_stream_batches_queries(self, mtl_search, small_reference):
        queries = [small_reference[i : i + 12] for i in range(0, 300, 60)]
        requests, stats = mtl_search.request_stream(queries)
        assert len(requests) == stats.occ_lookups
        assert stats.iterations >= len(queries)

    def test_iterations_for_query(self, exact_search):
        assert exact_search.iterations_for_query(16) == 4
        assert exact_search.iterations_for_query(17) == 5


class TestAgainstDifferentReferences:
    def test_repetitive_reference(self):
        reference = "ACGT" * 100
        table_search = ExmaSearch(ExmaTable(reference, k=4))
        fm = FMIndex(reference)
        for query in ("ACGTACGT", "CGTACG", "TTTT"):
            assert table_search.occurrence_count(query) == fm.occurrence_count(query)

    def test_single_character_reference(self):
        reference = "A" * 64
        table_search = ExmaSearch(ExmaTable(reference, k=4))
        assert table_search.occurrence_count("AAAA") == 61
