"""Unit tests for caches, the scheduling CAM and request schedulers."""

from __future__ import annotations

import pytest

from repro.exma.search import OccRequest
from repro.hw.cache import SetAssociativeCache
from repro.hw.cam import CamConfig, SchedulingQueue
from repro.hw.scheduler import FrFcfsScheduler, TwoStageScheduler, pair_requests_by_kmer


class TestSetAssociativeCache:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache(1024, line_bytes=64, associativity=2)
        assert cache.access(0) is False
        assert cache.access(0) is True

    def test_same_line_different_offsets_hit(self):
        cache = SetAssociativeCache(1024, line_bytes=64, associativity=2)
        cache.access(0)
        assert cache.access(63) is True

    def test_lru_eviction(self):
        # 2 sets x 2 ways of 64 B lines: addresses 0, 128, 256 map to set 0.
        cache = SetAssociativeCache(256, line_bytes=64, associativity=2)
        cache.access(0)
        cache.access(128)
        cache.access(256)  # evicts line 0
        assert cache.access(0) is False

    def test_lru_promotes_on_hit(self):
        cache = SetAssociativeCache(256, line_bytes=64, associativity=2)
        cache.access(0)
        cache.access(128)
        cache.access(0)  # promote line 0
        cache.access(256)  # evicts 128, not 0
        assert cache.access(0) is True
        assert cache.access(128) is False

    def test_hit_rate(self):
        cache = SetAssociativeCache(1024)
        cache.access(0)
        cache.access(0)
        cache.access(0)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_contains_does_not_allocate(self):
        cache = SetAssociativeCache(1024)
        assert cache.contains(0) is False
        assert cache.access(0) is False

    def test_flush(self):
        cache = SetAssociativeCache(1024)
        cache.access(0)
        cache.flush()
        assert cache.access(0) is False

    def test_reset_stats(self):
        cache = SetAssociativeCache(1024)
        cache.access(0)
        cache.reset_stats()
        assert cache.stats.accesses == 0

    def test_capacity_property(self):
        cache = SetAssociativeCache(32 * 1024, line_bytes=64, associativity=16)
        assert cache.capacity_bytes == 32 * 1024
        assert cache.num_sets == 32

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, line_bytes=64, associativity=8)

    def test_negative_address_raises(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1024).access(-1)

    def test_bigger_cache_hits_more(self):
        addresses = [i * 64 for i in range(64)] * 2
        small = SetAssociativeCache(1024)
        large = SetAssociativeCache(8192)
        for address in addresses:
            small.access(address)
            large.access(address)
        assert large.stats.hit_rate > small.stats.hit_rate


def make_request(kmer: int, pos: int) -> OccRequest:
    return OccRequest(packed_kmer=kmer, pos=pos)


class TestSchedulingQueue:
    def test_capacity_matches_table1(self):
        assert CamConfig().entries == 512
        assert CamConfig().entry_bits == 128

    def test_entry_holds_15mer(self):
        assert CamConfig().max_kmer_length() >= 15

    def test_push_until_full(self):
        queue = SchedulingQueue(CamConfig(entries=2))
        assert queue.push(make_request(1, 1))
        assert queue.push(make_request(2, 2))
        assert not queue.push(make_request(3, 3))
        assert queue.full

    def test_extend_returns_overflow(self):
        queue = SchedulingQueue(CamConfig(entries=2))
        overflow = queue.extend([make_request(i, i) for i in range(5)])
        assert len(overflow) == 3

    def test_sort_by_kmer(self):
        queue = SchedulingQueue()
        queue.extend([make_request(3, 0), make_request(1, 5), make_request(2, 2)])
        queue.sort_by_kmer()
        assert [r.packed_kmer for r in queue.peek()] == [1, 2, 3]

    def test_sort_by_pos(self):
        queue = SchedulingQueue()
        queue.extend([make_request(3, 9), make_request(1, 5), make_request(2, 2)])
        queue.sort_by_pos()
        assert [r.pos for r in queue.peek()] == [2, 5, 9]

    def test_drain_empties_queue(self):
        queue = SchedulingQueue()
        queue.extend([make_request(1, 1)])
        assert len(queue.drain()) == 1
        assert len(queue) == 0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CamConfig(entries=0)

    def test_size_bytes(self):
        assert CamConfig().size_bytes == 512 * 128 // 8


class TestSchedulers:
    def _requests(self):
        return [make_request(kmer=i % 7, pos=(i * 37) % 100) for i in range(20)]

    def test_frfcfs_preserves_order(self):
        batches = list(FrFcfsScheduler(CamConfig(entries=8)).schedule(self._requests()))
        flattened = [r for batch in batches for r in batch.stage1]
        assert flattened == self._requests()

    def test_frfcfs_batch_size(self):
        batches = list(FrFcfsScheduler(CamConfig(entries=8)).schedule(self._requests()))
        assert all(len(batch) <= 8 for batch in batches)
        assert sum(len(batch) for batch in batches) == 20

    def test_frfcfs_stage_orders_identical(self):
        batch = next(iter(FrFcfsScheduler(CamConfig(entries=32)).schedule(self._requests())))
        assert batch.stage1 == batch.stage2

    def test_two_stage_sorts_stage1_by_kmer(self):
        batch = next(iter(TwoStageScheduler(CamConfig(entries=32)).schedule(self._requests())))
        kmers = [r.packed_kmer for r in batch.stage1]
        assert kmers == sorted(kmers)

    def test_two_stage_sorts_stage2_by_pos(self):
        batch = next(iter(TwoStageScheduler(CamConfig(entries=32)).schedule(self._requests())))
        positions = [r.pos for r in batch.stage2]
        assert positions == sorted(positions)

    def test_two_stage_preserves_all_requests(self):
        batches = list(TwoStageScheduler(CamConfig(entries=8)).schedule(self._requests()))
        scheduled = sorted(
            (r.packed_kmer, r.pos) for batch in batches for r in batch.stage1
        )
        expected = sorted((r.packed_kmer, r.pos) for r in self._requests())
        assert scheduled == expected

    def test_two_stage_batches_bounded_by_cam(self):
        batches = list(TwoStageScheduler(CamConfig(entries=4)).schedule(self._requests()))
        assert all(len(batch) <= 4 for batch in batches)

    def test_empty_input(self):
        assert list(TwoStageScheduler().schedule([])) == []
        assert list(FrFcfsScheduler().schedule([])) == []


class TestKeepOpenHints:
    def test_pair_hint_set_when_same_kmer_pending(self):
        batch = (make_request(5, 1), make_request(5, 9), make_request(6, 2))
        annotated = pair_requests_by_kmer(batch)
        assert annotated[0][1] is True
        assert annotated[1][1] is False
        assert annotated[2][1] is False

    def test_three_requests_same_kmer(self):
        batch = (make_request(4, 1), make_request(4, 2), make_request(4, 3))
        hints = [hint for _, hint in pair_requests_by_kmer(batch)]
        assert hints == [True, True, False]

    def test_empty_batch(self):
        assert pair_requests_by_kmer(()) == []
