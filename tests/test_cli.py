"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENT_NAMES, build_parser, main
from repro.genome.io import FastaRecord, write_fasta
from repro.genome.sequence import random_genome


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_arguments(self):
        args = build_parser().parse_args(["search", "--queries", "ACGT", "--step", "4"])
        assert args.command == "search"
        assert args.queries == ["ACGT"]
        assert args.step == 4

    def test_experiment_choices(self):
        for name in EXPERIMENT_NAMES:
            args = build_parser().parse_args(["experiment", name])
            assert args.name == name
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_info_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.genome_length == 3_000_000_000
        assert args.step == 15


class TestSearchCommand:
    def test_search_synthetic_genome(self, capsys):
        genome = random_genome(2000, seed=5)
        query = genome[100:116]
        exit_code = main(
            [
                "search",
                "--genome-length",
                "2000",
                "--seed",
                "5",
                "--step",
                "4",
                "--no-index",
                "--queries",
                query,
                "ACGTACGTACGTACGT",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert query in captured
        assert "occurrence" in captured

    def test_search_fasta_reference(self, tmp_path, capsys):
        genome = random_genome(1500, seed=6)
        path = tmp_path / "ref.fa"
        write_fasta(path, [FastaRecord("chr", genome)])
        exit_code = main(
            ["search", "--reference", str(path), "--step", "4", "--no-index",
             "--queries", genome[200:212]]
        )
        assert exit_code == 0
        assert "1 occurrence" in capsys.readouterr().out or "occurrence" in ""


class TestInfoCommand:
    def test_info_prints_sizes(self, capsys):
        exit_code = main(["info", "--genome-length", "3000000000", "--step", "15"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "increments" in out
        assert "GB" in out


class TestExperimentCommand:
    def test_fig21_runs(self, capsys):
        exit_code = main(["experiment", "fig21"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "EXMA" in out

    def test_table2_runs(self, capsys):
        exit_code = main(["experiment", "table2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "MEDAL" in out

    def test_fig13_runs_small(self, capsys):
        exit_code = main(["experiment", "fig13", "--genome-length", "6000"])
        assert exit_code == 0
        assert "MTL" in capsys.readouterr().out


class TestShardingFlags:
    def test_search_sharded_matches_serial_output(self, capsys):
        genome = random_genome(2000, seed=5)
        query = genome[100:116]
        args = [
            "search", "--genome-length", "2000", "--seed", "5", "--step", "4",
            "--no-index", "--queries", query,
        ]
        # Pin the baseline to serial so the comparison also holds when the
        # suite itself runs under REPRO_DEFAULT_SHARDS (the CI matrix job).
        assert main(args + ["--shards", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main(args + ["--shards", "3", "--executor", "thread"]) == 0
        sharded_out = capsys.readouterr().out
        assert "sharded: 3 shards via thread executor" in sharded_out
        # Everything but the sharding banner is identical: same counts,
        # same positions, same coalescing counters.
        assert [line for line in sharded_out.splitlines() if not line.startswith("sharded:")] \
            == serial_out.splitlines()

    def test_parser_accepts_window_and_sharding_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["experiment", "fig15-window", "--window", "4", "--shards", "2",
             "--executor", "process"]
        )
        assert args.window == 4
        assert args.shards == 2
        assert args.executor == "process"

    def test_parser_rejects_unknown_executor(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--queries", "ACGT", "--executor", "gpu"])

    def test_fig15_window_experiment_runs(self, capsys):
        exit_code = main(
            ["experiment", "fig15-window", "--genome-length", "4000", "--window", "2"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "coalescing-window sweep" in out
        assert " 1 " in out and " 2 " in out

    def test_fig18_window_experiment_runs_and_writes_json(self, tmp_path, capsys):
        report_path = tmp_path / "window_capacity.json"
        exit_code = main(
            [
                "experiment", "fig18-window", "--genome-length", "4000",
                "--window", "2", "--json", str(report_path),
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "throughput per window capacity" in out
        assert "W=1 matches unwindowed: yes" in out
        report = json.loads(report_path.read_text())
        assert report["benchmark"] == "window_capacity"
        assert report["w1_matches_unwindowed"] is True
        assert [row["window"] for row in report["rows"]] == [1, 2]
        assert report["rows"][0]["total_cycles"] == report["unwindowed"]["total_cycles"]
