"""Columnar-replay oracle suite: arrays must equal the object pipeline.

PR 5 made the accelerator replay columnar from the flush to the cycle
counts; the original request-at-a-time object pipeline survives as
:meth:`repro.accel.exma_accelerator.ExmaAccelerator.run_reference`, the
executable specification.  This suite pins the cutover down at every
layer:

* property-based (hypothesis) equivalence of the vectorized primitives —
  :func:`~repro.hw.scheduler.scheduled_orders` /
  :func:`~repro.hw.scheduler.keep_open_flags` against the
  :class:`~repro.hw.cam.SchedulingQueue` CAM model,
  :func:`~repro.hw.cache.simulate_lru_hits` against per-access
  :meth:`~repro.hw.cache.SetAssociativeCache.access`,
  :meth:`~repro.hw.dram.DRAMModel.process_columns` against the object
  :meth:`~repro.hw.dram.DRAMModel.process`, and the batched table/index
  queries against their scalar forms;
* end-to-end: :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.run`
  and :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.run_stream`
  field-for-field equal to the reference for the request streams of all
  six engine backends, under both schedulers and every page policy.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import ExmaAccelerator, ExmaAcceleratorConfig
from repro.engine import CoalescingWindow, QueryEngine, create_backend
from repro.engine.backends import ExmaBackend, FMIndexBackend, LisaBackend
from repro.exma.mtl_index import MTLIndex
from repro.exma.search import OccRequest
from repro.exma.table import ExmaTable
from repro.hw.cache import SetAssociativeCache, simulate_lru_hits
from repro.hw.cam import CamConfig
from repro.hw.dram import DDR4Config, DRAMModel, MemoryRequest, MemoryTrace, PagePolicy
from repro.hw.scheduler import (
    FrFcfsScheduler,
    TwoStageScheduler,
    keep_open_flags,
    pair_requests_by_kmer,
    scheduled_orders,
)
from repro.lisa.search import LisaIndex
from repro.testing import random_queries, reference_and_queries

BACKEND_NAMES = ("fmindex", "exma", "exma-learned", "exma-mtl", "lisa", "lisa-learned")

request_lists = st.lists(
    st.tuples(st.integers(0, 40), st.integers(0, 60)), min_size=0, max_size=120
)


def _requests(pairs: list[tuple[int, int]]) -> list[OccRequest]:
    return [OccRequest(packed_kmer=kmer, pos=pos) for kmer, pos in pairs]


# --------------------------------------------------------------------- #
# Vectorized schedulers vs the SchedulingQueue CAM model
# --------------------------------------------------------------------- #


class TestSchedulerOrders:
    @given(request_lists, st.integers(1, 17), st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_orders_match_queue_scheduling(self, pairs, cam_entries, two_stage):
        requests = _requests(pairs)
        kmers = np.array([r.packed_kmer for r in requests], dtype=np.int64)
        positions = np.array([r.pos for r in requests], dtype=np.int64)
        scheduler = (
            TwoStageScheduler(CamConfig(entries=cam_entries))
            if two_stage
            else FrFcfsScheduler(CamConfig(entries=cam_entries))
        )
        stage1_ref, stage2_ref = [], []
        for batch in scheduler.schedule(requests):
            stage1_ref.extend(batch.stage1)
            stage2_ref.extend(batch.stage2)
        stage1, stage2 = scheduled_orders(kmers, positions, cam_entries, two_stage)
        assert [requests[i] for i in stage1] == stage1_ref
        assert [requests[i] for i in stage2] == stage2_ref

    @given(request_lists, st.integers(1, 17))
    @settings(max_examples=80, deadline=None)
    def test_keep_open_matches_pair_annotation(self, pairs, cam_entries):
        requests = _requests(pairs)
        kmers = np.array([r.packed_kmer for r in requests], dtype=np.int64)
        positions = np.array([r.pos for r in requests], dtype=np.int64)
        scheduler = TwoStageScheduler(CamConfig(entries=cam_entries))
        hints_ref = []
        for batch in scheduler.schedule(requests):
            hints_ref.extend(hint for _, hint in pair_requests_by_kmer(batch.stage2))
        _, stage2 = scheduled_orders(kmers, positions, cam_entries, True)
        hints = keep_open_flags(kmers[stage2], cam_entries)
        assert hints.tolist() == hints_ref


# --------------------------------------------------------------------- #
# Set-grouped cache simulation vs per-access LRU
# --------------------------------------------------------------------- #


class TestCacheSimulation:
    @given(
        st.lists(st.integers(0, 5000), min_size=0, max_size=300),
        st.sampled_from([1, 2, 4, 8, 16]),
        st.sampled_from([1, 2, 16]),
        st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_hit_mask_matches_reference_cache(self, addresses, ways, sets, sort):
        if sort:  # run-heavy sequences exercise the collapse fast path
            addresses = sorted(addresses)
        line_bytes = 32
        capacity = line_bytes * ways * sets
        cache = SetAssociativeCache(capacity, line_bytes, ways)
        reference = [cache.access(address) for address in addresses]
        hits = simulate_lru_hits(np.array(addresses), capacity, line_bytes, ways)
        assert hits.tolist() == reference

    def test_skew_fallback_matches_reference_cache(self):
        # One set, many accesses: the rounds path degenerates and the
        # flat sequential pass must take over with identical results.
        rng = np.random.default_rng(0)
        addresses = rng.integers(0, 50, size=2000) * 64
        capacity, line_bytes, ways = 64 * 16, 64, 16  # a single 16-way set
        cache = SetAssociativeCache(capacity, line_bytes, ways)
        reference = [cache.access(int(address)) for address in addresses]
        hits = simulate_lru_hits(addresses, capacity, line_bytes, ways)
        assert hits.tolist() == reference

    def test_rejects_invalid_geometry_and_addresses(self):
        with pytest.raises(ValueError):
            simulate_lru_hits(np.array([0]), 100, 64, 8)
        with pytest.raises(ValueError):
            simulate_lru_hits(np.array([-1]), 1024, 64, 8)


# --------------------------------------------------------------------- #
# Columnar DRAM replay vs the object model
# --------------------------------------------------------------------- #


memory_requests = st.lists(
    st.tuples(
        st.integers(0, 70),  # row
        st.integers(1, 700),  # nbytes
        st.booleans(),  # keep_open_hint
        st.integers(0, 6),  # stream
    ),
    min_size=0,
    max_size=150,
)


class TestDRAMColumns:
    @given(memory_requests, st.sampled_from(list(PagePolicy)))
    @settings(max_examples=80, deadline=None)
    def test_process_columns_matches_process(self, rows, policy):
        requests = [
            MemoryRequest(row=row, nbytes=nbytes, keep_open_hint=keep, stream=stream)
            for row, nbytes, keep, stream in rows
        ]
        model = DRAMModel(DDR4Config(), page_policy=policy)
        assert model.process_columns(MemoryTrace.from_requests(requests)) == model.process(
            list(requests)
        )

    def test_rejects_nonpositive_bytes(self):
        model = DRAMModel()
        trace = MemoryTrace.from_requests([MemoryRequest(row=0, nbytes=0)])
        with pytest.raises(ValueError):
            model.process_columns(trace)

    def test_channel_split_preserves_order(self):
        requests = [MemoryRequest(row=row) for row in (0, 4, 1, 8, 5, 2, 12)]
        trace = MemoryTrace.from_requests(requests)
        channels = trace.split_channels(4)
        assert [shard.rows.tolist() for shard in channels] == [
            [0, 4, 8, 12],
            [1, 5],
            [2],
            [],
        ]


# --------------------------------------------------------------------- #
# Batched table/index queries vs their scalar forms
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def small_table():
    reference, _ = reference_and_queries(genome_length=700, seed=5)
    return ExmaTable(reference, k=4)


@pytest.fixture(scope="module")
def small_index(small_table):
    return MTLIndex(
        small_table, model_threshold=6, samples_per_kmer=24, epochs=25, seed=1
    )


class TestBatchedQueries:
    def test_occ_batch_matches_occ(self, small_table):
        rng = np.random.default_rng(2)
        kmers = rng.integers(0, small_table.kmer_count, size=600)
        positions = rng.integers(0, small_table.reference_length + 1, size=600)
        expected = [
            small_table.occ(int(kmer), int(pos))
            for kmer, pos in zip(kmers, positions)
        ]
        assert small_table.occ_batch(kmers, positions).tolist() == expected

    def test_occ_batch_validates_ranges(self, small_table):
        with pytest.raises(ValueError):
            small_table.occ_batch(np.array([0]), np.array([-1]))
        with pytest.raises(ValueError):
            small_table.occ_batch(np.array([small_table.kmer_count]), np.array([0]))

    def test_predict_many_matches_predict(self, small_table, small_index):
        rng = np.random.default_rng(3)
        modelled = np.array(small_index.modelled_kmers)
        assert modelled.size > 0
        kmers = modelled[rng.integers(0, modelled.size, size=400)]
        positions = rng.integers(0, small_table.reference_length + 1, size=400)
        expected = [
            small_index.predict(int(kmer), int(pos))
            for kmer, pos in zip(kmers, positions)
        ]
        assert small_index.predict_many(kmers, positions).tolist() == expected

    def test_lookup_arrays_match_scalar_queries(self, small_table, small_index):
        modelled = small_index.modelled_lookup(small_table.kmer_count)
        buckets = small_index.bucket_lookup(small_table.kmer_count)
        for packed in range(small_table.kmer_count):
            assert modelled[packed] == small_index.has_model(packed)
            node_ids = small_index.node_ids_for(packed)
            if node_ids:
                assert buckets[packed] == node_ids[0]
            else:
                assert buckets[packed] == -1
        frequencies = small_table.frequency_batch(np.arange(small_table.kmer_count))
        assert frequencies.tolist() == [
            small_table.frequency(packed) for packed in range(small_table.kmer_count)
        ]


# --------------------------------------------------------------------- #
# End to end: columnar run/run_stream vs the object reference
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def workload():
    reference, _ = reference_and_queries(genome_length=900, seed=3)
    batches = [
        random_queries(reference, count=8, length=18, seed=40 + i) for i in range(3)
    ]
    return reference, batches


@pytest.fixture(scope="module")
def backends(workload):
    reference, _ = workload
    table = ExmaTable(reference, k=4)
    mtl = MTLIndex(table, model_threshold=8, samples_per_kmer=32, epochs=30, seed=0)
    return table, mtl, {
        "fmindex": FMIndexBackend(reference),
        "exma": ExmaBackend(table=table),
        "exma-learned": create_backend("exma-learned", reference, k=4, model_threshold=8),
        "exma-mtl": ExmaBackend(table=table, index=mtl),
        "lisa": LisaBackend(reference, k=3),
        "lisa-learned": LisaBackend(
            lisa_index=LisaIndex(reference, k=3, use_learned_index=True)
        ),
    }


def _config(two_stage: bool, policy: PagePolicy) -> ExmaAcceleratorConfig:
    return ExmaAcceleratorConfig().with_overrides(
        base_cache_bytes=2048,
        index_cache_bytes=1024,
        cam_entries=32,
        two_stage_scheduling=two_stage,
        page_policy=policy,
    )


@pytest.mark.parametrize("name", BACKEND_NAMES)
@pytest.mark.parametrize("two_stage", (True, False))
@pytest.mark.parametrize("policy", (PagePolicy.DYNAMIC, PagePolicy.CLOSE))
class TestRunEqualsReference:
    def test_run_field_for_field_equal(self, name, two_stage, policy, workload, backends):
        _, batches = workload
        table, mtl, backend_map = backends
        stream, _ = QueryEngine(backend_map[name]).request_stream(
            [query for batch in batches for query in batch]
        )
        accelerator = ExmaAccelerator(table, mtl, _config(two_stage, policy))
        columnar = accelerator.run(stream)
        reference = accelerator.run_reference(list(stream))
        assert columnar == reference

    def test_run_stream_flushes_equal_reference(
        self, name, two_stage, policy, workload, backends
    ):
        _, batches = workload
        table, mtl, backend_map = backends
        engine = QueryEngine(backend_map[name])
        streams = [engine.request_stream(batch)[0] for batch in batches]
        accelerator = ExmaAccelerator(table, mtl, _config(two_stage, policy))
        result = accelerator.run_windowed(streams, window=2)
        flushes = list(CoalescingWindow(2).stream(streams))
        expected = [
            accelerator.run_reference(
                list(flushed.requests),
                bases_processed=accelerator._bases_processed(flushed.issued),
            )
            for flushed in flushes
        ]
        assert result.flushes == expected


class TestRunWithoutIndex:
    def test_no_index_replay_matches_reference(self, workload, backends):
        _, batches = workload
        table, _, backend_map = backends
        stream, _ = QueryEngine(backend_map["exma"]).request_stream(batches[0])
        accelerator = ExmaAccelerator(
            table, None, _config(True, PagePolicy.DYNAMIC)
        )
        assert accelerator.run(stream) == accelerator.run_reference(list(stream))

    def test_empty_stream_matches_reference(self, backends):
        table, mtl, _ = backends
        accelerator = ExmaAccelerator(table, mtl, _config(True, PagePolicy.DYNAMIC))
        assert accelerator.run([]) == accelerator.run_reference([])

    def test_object_sequences_match_columnar_containers(self, workload, backends):
        # A plain OccRequest list replays identically to the columnar
        # stream carrying the same requests.
        _, batches = workload
        table, mtl, backend_map = backends
        stream, _ = QueryEngine(backend_map["exma-mtl"]).request_stream(batches[0])
        accelerator = ExmaAccelerator(table, mtl, _config(True, PagePolicy.DYNAMIC))
        assert accelerator.run(stream) == accelerator.run(list(stream))
