"""Windowed-accelerator equivalence suite (the end-to-end stream path).

Pins the contract of :meth:`repro.accel.exma_accelerator.ExmaAccelerator
.run_stream` for the request streams of **all six** engine backends:

* at window capacity W=1, every flush's run result is *byte-identical*
  (dataclass equality over every counter, cache/DRAM stat and energy
  ledger) to :meth:`ExmaAccelerator.run` on that batch's per-batch
  coalesced request list — the unwindowed path, materialised through the
  legacy object view on purpose so the columnar plumbing cannot drift;
* the scheduled request count is monotone non-increasing in W over
  aligned power-of-two capacities (a set-union guarantee: every
  2W-window merges at least as many duplicates as its two aligned
  W-windows), and cycles follow the same trend — strictly fewer at the
  widest window, with at most CYCLE_SLACK of local model noise per step
  (shifted scheduling-epoch boundaries can move row-conflict patterns
  slightly even as the stream monotonically shrinks);
* the analytic baselines' stream entry points never report a windowed
  stream slower than the unwindowed model.
"""

from __future__ import annotations

import pytest

from repro.accel import ExmaAccelerator, ExmaAcceleratorConfig
from repro.accel.baselines import (
    CpuThroughputModel,
    SoftwareAlgorithm,
    exma_analytic_model,
    stream_merge_ratio,
)
from repro.engine import CoalescingWindow, QueryEngine, create_backend
from repro.engine.backends import ExmaBackend, FMIndexBackend, LisaBackend
from repro.exma.mtl_index import MTLIndex
from repro.exma.table import ExmaTable
from repro.lisa.search import LisaIndex
from repro.testing import random_queries, reference_and_queries

#: Aligned power-of-two capacities (monotonicity holds along this chain).
WINDOWS = (1, 2, 4)

#: Tolerated per-step relative cycle increase (model noise; see docstring).
CYCLE_SLACK = 0.02

BACKEND_NAMES = ("fmindex", "exma", "exma-learned", "exma-mtl", "lisa", "lisa-learned")


@pytest.fixture(scope="module")
def workload():
    reference, _ = reference_and_queries(genome_length=900, seed=3)
    batches = [
        random_queries(reference, count=10, length=18, seed=10 + i) for i in range(4)
    ]
    return reference, batches


@pytest.fixture(scope="module")
def backends(workload):
    reference, _ = workload
    table = ExmaTable(reference, k=4)
    mtl = MTLIndex(table, model_threshold=8, samples_per_kmer=32, epochs=30, seed=0)
    return {
        "fmindex": FMIndexBackend(reference),
        "exma": ExmaBackend(table=table),
        "exma-learned": create_backend("exma-learned", reference, k=4, model_threshold=8),
        "exma-mtl": ExmaBackend(table=table, index=mtl),
        "lisa": LisaBackend(reference, k=3),
        "lisa-learned": LisaBackend(
            lisa_index=LisaIndex(reference, k=3, use_learned_index=True)
        ),
    }


@pytest.fixture(scope="module")
def accelerator(workload):
    reference, _ = workload
    table = ExmaTable(reference, k=4)
    config = ExmaAcceleratorConfig().with_overrides(
        base_cache_bytes=2048, index_cache_bytes=1024, cam_entries=32
    )
    return ExmaAccelerator(table, None, config)


@pytest.fixture(scope="module")
def streams(workload, backends):
    """Per-backend: the columnar request stream of every consecutive batch."""
    _, batches = workload
    per_backend = {}
    for name, backend in backends.items():
        engine = QueryEngine(backend)
        per_backend[name] = [engine.request_stream(queries)[0] for queries in batches]
    return per_backend


@pytest.mark.parametrize("name", BACKEND_NAMES)
class TestW1EqualsPerBatchPath:
    def test_flushes_byte_identical_to_per_batch_run(self, name, streams, accelerator):
        batch_streams = streams[name]
        k = accelerator._table.k
        result = accelerator.run_windowed(batch_streams, window=1)
        direct = [
            accelerator.run(
                list(flushed.requests),
                bases_processed=max(1, flushed.issued * k // 2),
            )
            for flushed in CoalescingWindow(1).stream(batch_streams)
        ]
        assert result.flushes == direct
        assert result.windows == len(batch_streams)
        assert result.batches == len(batch_streams)

    def test_aggregate_counters_are_sums(self, name, streams, accelerator):
        result = accelerator.run_windowed(streams[name], window=1)
        assert result.total_cycles == sum(r.total_cycles for r in result.flushes)
        assert result.requests == sum(r.requests for r in result.flushes)
        assert result.dram_requests == sum(r.dram_requests for r in result.flushes)
        assert result.issued >= result.requests
        assert result.merge_ratio >= 1.0
        assert result.throughput.bases_processed == result.bases_processed


@pytest.mark.parametrize("name", BACKEND_NAMES)
class TestMonotoneInCapacity:
    def test_cycles_and_requests_monotone_non_increasing(self, name, streams, accelerator):
        results = [accelerator.run_windowed(streams[name], window=w) for w in WINDOWS]
        scheduled = [r.requests for r in results]
        cycles = [r.total_cycles for r in results]
        assert scheduled == sorted(scheduled, reverse=True)
        # Cycles track the shrinking stream: non-increasing up to the
        # model-noise slack per step, and never above the W=1 anchor.
        for previous, current in zip(cycles, cycles[1:]):
            assert current <= previous * (1 + CYCLE_SLACK)
        assert cycles[-1] <= cycles[0]
        # The issued (pre-merge) accounting is capacity-invariant: every
        # row replays the same logical workload.
        assert len({r.issued for r in results}) == 1
        assert len({r.bases_processed for r in results}) == 1


class TestStreamEntryPoints:
    def test_run_windowed_equals_run_stream_on_same_flushes(self, streams, accelerator):
        batch_streams = streams["exma"]
        flushes = list(CoalescingWindow(2).stream(batch_streams))
        via_stream = accelerator.run_stream(iter(flushes))
        via_windowed = accelerator.run_windowed(batch_streams, window=2)
        assert via_windowed.flushes == via_stream.flushes
        assert via_windowed.capacity == 2
        assert via_stream.capacity is None

    def test_plain_request_sequences_accepted(self, streams, accelerator):
        batch_streams = streams["exma"]
        flushes = list(CoalescingWindow(1).stream(batch_streams))
        as_lists = [list(flushed.requests) for flushed in flushes]
        result = accelerator.run_stream(as_lists)
        assert result.windows == len(flushes)
        # Plain sequences carry no issued/batches metadata beyond length.
        assert result.issued == sum(len(requests) for requests in as_lists)

    def test_analytic_models_never_slower_with_wider_window(self, streams):
        model = exma_analytic_model()
        rates = []
        for window in WINDOWS:
            flushes = list(CoalescingWindow(window).stream(streams["exma"]))
            assert stream_merge_ratio(flushes) >= 1.0
            rates.append(model.run_stream(flushes).mbase_per_second)
        assert rates == sorted(rates)
        assert rates[0] >= model.throughput().mbase_per_second * 0.999

    def test_cpu_model_stream_entry_point(self, streams):
        model = CpuThroughputModel()
        algorithm = SoftwareAlgorithm(name="EXMA-15", symbols_per_iteration=15)
        flushes = list(CoalescingWindow(4).stream(streams["exma"]))
        windowed = model.run_stream(algorithm, flushes)
        assert windowed.bases_per_second >= model.bases_per_second(algorithm) * 0.999

    def test_coalescing_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            exma_analytic_model().throughput(coalescing_factor=0.5)
