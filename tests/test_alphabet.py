"""Unit tests for repro.genome.alphabet."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genome import alphabet

dna_strings = st.text(alphabet="ACGT", min_size=0, max_size=64)
nonempty_dna = st.text(alphabet="ACGT", min_size=1, max_size=32)


class TestEncodeDecode:
    def test_encode_known_values(self):
        assert list(alphabet.encode("$ACGT")) == [0, 1, 2, 3, 4]

    def test_encode_returns_uint8(self):
        assert alphabet.encode("ACGT").dtype == np.uint8

    def test_decode_inverts_encode(self):
        assert alphabet.decode(alphabet.encode("GATTACA")) == "GATTACA"

    def test_decode_empty(self):
        assert alphabet.decode(np.array([], dtype=np.uint8)) == ""

    def test_decode_out_of_range_raises(self):
        with pytest.raises(alphabet.AlphabetError):
            alphabet.decode(np.array([9], dtype=np.uint8))

    def test_encode_invalid_symbol_raises(self):
        with pytest.raises(alphabet.AlphabetError):
            alphabet.encode("ACGN")

    def test_encode_preserves_lexicographic_order(self):
        a, b = "ACGT", "ACTA"
        assert (a < b) == (list(alphabet.encode(a)) < list(alphabet.encode(b)))

    @given(dna_strings)
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, text):
        assert alphabet.decode(alphabet.encode(text)) == text


class TestValidate:
    def test_valid_sequence_passes(self):
        alphabet.validate("ACGTACGT")

    def test_sentinel_rejected_by_default(self):
        with pytest.raises(alphabet.AlphabetError):
            alphabet.validate("ACGT$")

    def test_sentinel_allowed_when_requested(self):
        alphabet.validate("ACGT$", allow_sentinel=True)

    def test_invalid_symbol_listed_in_message(self):
        with pytest.raises(alphabet.AlphabetError, match="N"):
            alphabet.validate("ACGN")

    def test_empty_sequence_passes(self):
        alphabet.validate("")


class TestReverseComplement:
    def test_simple(self):
        assert alphabet.reverse_complement("ACGT") == "ACGT"

    def test_asymmetric(self):
        assert alphabet.reverse_complement("AAACC") == "GGTTT"

    def test_empty(self):
        assert alphabet.reverse_complement("") == ""

    @given(dna_strings)
    @settings(max_examples=30, deadline=None)
    def test_involution(self, text):
        assert alphabet.reverse_complement(alphabet.reverse_complement(text)) == text


class TestKmerPacking:
    def test_pack_known_values(self):
        assert alphabet.pack_kmer("AA") == 0
        assert alphabet.pack_kmer("AC") == 1
        assert alphabet.pack_kmer("TT") == 15

    def test_pack_empty_is_zero(self):
        assert alphabet.pack_kmer("") == 0

    def test_unpack_inverts_pack(self):
        assert alphabet.unpack_kmer(alphabet.pack_kmer("GATC"), 4) == "GATC"

    def test_unpack_out_of_range_raises(self):
        with pytest.raises(ValueError):
            alphabet.unpack_kmer(16, 2)

    def test_unpack_negative_raises(self):
        with pytest.raises(ValueError):
            alphabet.unpack_kmer(-1, 2)

    def test_pack_invalid_symbol_raises(self):
        with pytest.raises(alphabet.AlphabetError):
            alphabet.pack_kmer("AN")

    def test_pack_preserves_order(self):
        kmers = ["AAA", "ACG", "CGT", "GGG", "TTT"]
        packed = [alphabet.pack_kmer(k) for k in kmers]
        assert packed == sorted(packed)

    @given(nonempty_dna)
    @settings(max_examples=40, deadline=None)
    def test_pack_unpack_roundtrip(self, kmer):
        assert alphabet.unpack_kmer(alphabet.pack_kmer(kmer), len(kmer)) == kmer

    def test_kmer_count(self):
        assert alphabet.kmer_count(0) == 1
        assert alphabet.kmer_count(3) == 64

    def test_kmer_count_negative_raises(self):
        with pytest.raises(ValueError):
            alphabet.kmer_count(-1)


class TestIterKmers:
    def test_yields_all_windows(self):
        assert list(alphabet.iter_kmers("ACGTA", 3)) == ["ACG", "CGT", "GTA"]

    def test_k_longer_than_sequence(self):
        assert list(alphabet.iter_kmers("AC", 3)) == []

    def test_k_zero_raises(self):
        with pytest.raises(ValueError):
            list(alphabet.iter_kmers("ACGT", 0))

    def test_k_equal_length(self):
        assert list(alphabet.iter_kmers("ACGT", 4)) == ["ACGT"]


class TestGcContent:
    def test_all_gc(self):
        assert alphabet.gc_content("GGCC") == 1.0

    def test_no_gc(self):
        assert alphabet.gc_content("AATT") == 0.0

    def test_half(self):
        assert alphabet.gc_content("ACGT") == 0.5

    def test_empty(self):
        assert alphabet.gc_content("") == 0.0
