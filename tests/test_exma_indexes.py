"""Unit tests for the naive learned index and the MTL index over EXMA tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exma.learned_index import NaiveLearnedIndex
from repro.exma.mtl_index import MTLIndex, SharedNode
from repro.exma.table import ExmaTable
from repro.genome.sequence import RepeatProfile, random_genome


@pytest.fixture(scope="module")
def repeat_table() -> ExmaTable:
    """A repeat-rich reference so several k-mers have many increments."""
    genome = random_genome(
        4000, repeat_profile=RepeatProfile(repeat_fraction=0.7, repeat_unit_length=120), seed=11
    )
    return ExmaTable(genome, k=3)


@pytest.fixture(scope="module")
def naive_index(repeat_table) -> NaiveLearnedIndex:
    return NaiveLearnedIndex(repeat_table, model_threshold=8, increments_per_leaf=64)


@pytest.fixture(scope="module")
def mtl(repeat_table) -> MTLIndex:
    return MTLIndex(repeat_table, model_threshold=8, samples_per_kmer=32, epochs=80, seed=0)


class TestNaiveLearnedIndex:
    def test_models_built_for_heavy_kmers(self, naive_index, repeat_table):
        assert naive_index.modelled_kmers
        for packed in naive_index.modelled_kmers:
            assert repeat_table.frequency(packed) > 8

    def test_lookup_returns_exact_occ(self, naive_index, repeat_table):
        for packed in naive_index.modelled_kmers[:5]:
            for pos in (0, 100, 1000, repeat_table.reference_length):
                true_index, error = naive_index.lookup(packed, pos)
                assert true_index == repeat_table.occ(packed, pos)
                assert error >= 0

    def test_prediction_clamped_to_valid_range(self, naive_index, repeat_table):
        for packed in naive_index.modelled_kmers[:5]:
            count = repeat_table.frequency(packed)
            assert 0 <= naive_index.predict(packed, repeat_table.reference_length) < count

    def test_unmodelled_kmer_falls_back_to_exact(self, naive_index, repeat_table):
        light = [p for p in repeat_table.present_kmers() if not naive_index.has_model(p)]
        if not light:
            pytest.skip("all k-mers modelled")
        packed = light[0]
        assert naive_index.predict(packed, 500) == repeat_table.occ(packed, 500)

    def test_parameter_count_positive(self, naive_index):
        assert naive_index.parameter_count >= 4 * len(naive_index.modelled_kmers)

    def test_more_leaves_with_smaller_ratio(self, repeat_table):
        coarse = NaiveLearnedIndex(repeat_table, model_threshold=8, increments_per_leaf=4096)
        fine = NaiveLearnedIndex(repeat_table, model_threshold=8, increments_per_leaf=16)
        assert fine.parameter_count > coarse.parameter_count

    def test_errors_array_shape(self, naive_index):
        errors = naive_index.prediction_errors(samples_per_kmer=10, seed=1)
        assert errors.size == 10 * len(naive_index.modelled_kmers)
        assert np.all(errors >= 0)

    def test_error_stats(self, naive_index):
        stats = naive_index.error_stats(seed=2)
        assert stats.mean_error >= 0
        assert stats.max_error >= stats.percentile_75 >= stats.percentile_25

    def test_invalid_parameters_raise(self, repeat_table):
        with pytest.raises(ValueError):
            NaiveLearnedIndex(repeat_table, model_threshold=-1)
        with pytest.raises(ValueError):
            NaiveLearnedIndex(repeat_table, increments_per_leaf=0)


class TestSharedNode:
    def test_forward_shape(self):
        node = SharedNode()
        node.train(
            np.random.default_rng(0).uniform(size=(200, 2)),
            np.linspace(0, 1, 200),
            np.full(200, 1 / 200),
            epochs=50,
        )
        out = node.forward(np.array([[0.5, 0.1], [0.9, 0.1]]))
        assert out.shape == (2,)

    def test_training_reduces_error(self):
        rng = np.random.default_rng(1)
        features = rng.uniform(size=(400, 2))
        targets = features[:, 0] ** 2
        weights = np.full(400, 1 / 400)
        node = SharedNode()
        node.train(features, targets, weights, epochs=5, seed=3)
        early = float(np.mean((node.forward(features) - targets) ** 2))
        node.train(features, targets, weights, epochs=400, seed=3)
        late = float(np.mean((node.forward(features) - targets) ** 2))
        assert late <= early

    def test_parameter_count(self):
        assert SharedNode().parameter_count == 2 * 10 + 10 + 10 + 1


class TestMTLIndex:
    def test_leaves_cover_heavy_kmers(self, mtl, repeat_table):
        assert mtl.modelled_kmers
        for packed in mtl.modelled_kmers:
            assert repeat_table.frequency(packed) > 8

    def test_lookup_returns_exact_occ(self, mtl, repeat_table):
        for packed in mtl.modelled_kmers[:5]:
            for pos in (0, 500, 2000, repeat_table.reference_length):
                true_index, error = mtl.lookup(packed, pos)
                assert true_index == repeat_table.occ(packed, pos)
                assert error >= 0

    def test_prediction_within_range(self, mtl, repeat_table):
        for packed in mtl.modelled_kmers[:5]:
            count = repeat_table.frequency(packed)
            prediction = mtl.predict(packed, repeat_table.reference_length // 2)
            assert 0 <= prediction < count

    def test_shared_nodes_exist(self, mtl):
        assert mtl.shared_node_count >= 1

    def test_parameter_sharing_shrinks_index(self, mtl, naive_index):
        # The MTL index shares its non-leaf parameters, so per modelled
        # k-mer it needs far fewer parameters than the naive index.
        mtl_per_kmer = mtl.parameter_count / max(1, len(mtl.modelled_kmers))
        naive_per_kmer = naive_index.parameter_count / max(1, len(naive_index.modelled_kmers))
        assert mtl_per_kmer < naive_per_kmer

    def test_errors_not_catastrophic(self, mtl, repeat_table):
        errors = mtl.prediction_errors(samples_per_kmer=20, seed=4)
        heaviest = max(repeat_table.frequency(p) for p in mtl.modelled_kmers)
        assert errors.mean() < heaviest

    def test_node_ids_for_modelled_kmer(self, mtl):
        packed = mtl.modelled_kmers[0]
        node_ids = mtl.node_ids_for(packed)
        assert len(node_ids) == 2

    def test_node_ids_for_unmodelled_kmer(self, mtl, repeat_table):
        light = [p for p in repeat_table.present_kmers() if not mtl.has_model(p)]
        if not light:
            pytest.skip("all k-mers modelled")
        assert mtl.node_ids_for(light[0]) == ()

    def test_unmodelled_prediction_exact(self, mtl, repeat_table):
        light = [p for p in repeat_table.present_kmers() if not mtl.has_model(p)]
        if not light:
            pytest.skip("all k-mers modelled")
        assert mtl.predict(light[0], 1000) == repeat_table.occ(light[0], 1000)

    def test_deterministic_with_seed(self, repeat_table):
        a = MTLIndex(repeat_table, model_threshold=8, samples_per_kmer=16, epochs=30, seed=5)
        b = MTLIndex(repeat_table, model_threshold=8, samples_per_kmer=16, epochs=30, seed=5)
        packed = a.modelled_kmers[0]
        assert a.predict(packed, 1234) == b.predict(packed, 1234)
