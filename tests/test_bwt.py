"""Unit tests for repro.index.bwt."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genome.sequence import random_genome
from repro.index.bwt import bwt, bwt_from_suffix_array, inverse_bwt, run_length_encode
from repro.index.suffix_array import suffix_array

dna = st.text(alphabet="ACGT", min_size=1, max_size=60)


class TestBwt:
    def test_paper_example(self):
        # Fig. 3(a): BWT(CATAGA$) = AGTC$AA.
        assert bwt("CATAGA") == "AGTC$AA"

    def test_length_includes_sentinel(self):
        assert len(bwt("ACGT")) == 5

    def test_single_sentinel(self):
        assert bwt("ACGT").count("$") == 1

    def test_permutation_of_text(self):
        text = random_genome(100, seed=1)
        assert sorted(bwt(text)) == sorted(text + "$")

    def test_from_suffix_array_matches(self):
        text = random_genome(80, seed=2) + "$"
        assert bwt_from_suffix_array(text, suffix_array(text)) == bwt(text[:-1])

    def test_from_suffix_array_requires_sentinel(self):
        with pytest.raises(ValueError):
            bwt_from_suffix_array("ACGT", suffix_array("ACGT"))

    def test_from_suffix_array_length_mismatch(self):
        with pytest.raises(ValueError):
            bwt_from_suffix_array("ACGT$", suffix_array("ACG"))


class TestInverseBwt:
    def test_inverts_paper_example(self):
        assert inverse_bwt("AGTC$AA") == "CATAGA$"

    def test_roundtrip_random(self):
        text = random_genome(200, seed=3)
        assert inverse_bwt(bwt(text)) == text + "$"

    def test_requires_exactly_one_sentinel(self):
        with pytest.raises(ValueError):
            inverse_bwt("ACGT")
        with pytest.raises(ValueError):
            inverse_bwt("A$C$")

    @given(dna)
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, text):
        assert inverse_bwt(bwt(text)) == text + "$"


class TestRunLengthEncode:
    def test_empty(self):
        assert run_length_encode("") == []

    def test_single_run(self):
        assert run_length_encode("AAAA") == [("A", 4)]

    def test_alternating(self):
        assert run_length_encode("ACAC") == [("A", 1), ("C", 1), ("A", 1), ("C", 1)]

    def test_reconstruction(self):
        text = bwt(random_genome(150, seed=4))
        runs = run_length_encode(text)
        assert "".join(symbol * count for symbol, count in runs) == text

    def test_genomic_bwt_is_runny(self):
        # A repeat-rich genome's BWT should have fewer runs than symbols.
        text = random_genome(2000, seed=5)
        runs = run_length_encode(bwt(text))
        assert len(runs) < len(text) + 1
