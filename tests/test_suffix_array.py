"""Unit tests for repro.index.suffix_array."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genome.sequence import random_genome
from repro.index.suffix_array import (
    inverse_suffix_array,
    lcp_array,
    naive_suffix_array,
    suffix_array,
)

dna = st.text(alphabet="ACGT", min_size=1, max_size=80)


class TestSuffixArray:
    def test_paper_example(self):
        # G = CATAGA$ from Fig. 3(a): SA = [6, 5, 3, 1, 0, 4, 2].
        sa = suffix_array("CATAGA")
        assert list(sa) == [6, 5, 3, 1, 0, 4, 2]

    def test_matches_naive_on_random_genome(self):
        text = random_genome(500, seed=1)
        assert np.array_equal(suffix_array(text), naive_suffix_array(text))

    def test_single_symbol(self):
        assert list(suffix_array("A")) == [1, 0]

    def test_repetitive_text(self):
        text = "AAAA"
        assert np.array_equal(suffix_array(text), naive_suffix_array(text))

    def test_is_permutation(self):
        sa = suffix_array(random_genome(200, seed=2))
        assert sorted(sa) == list(range(len(sa)))

    def test_suffixes_sorted(self):
        text = random_genome(150, seed=3) + "$"
        sa = suffix_array(text)
        suffixes = [text[i:] for i in sa]
        assert suffixes == sorted(suffixes)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            suffix_array("")

    def test_interior_sentinel_raises(self):
        with pytest.raises(ValueError):
            suffix_array("AC$GT")

    def test_already_terminated_not_double_terminated(self):
        assert len(suffix_array("ACGT$")) == 5

    @given(dna)
    @settings(max_examples=25, deadline=None)
    def test_matches_naive_property(self, text):
        assert np.array_equal(suffix_array(text), naive_suffix_array(text))


class TestInverseSuffixArray:
    def test_inverse_relationship(self):
        text = random_genome(120, seed=4)
        sa = suffix_array(text)
        isa = inverse_suffix_array(sa)
        assert all(isa[sa[i]] == i for i in range(len(sa)))

    def test_is_permutation(self):
        sa = suffix_array(random_genome(80, seed=5))
        assert sorted(inverse_suffix_array(sa)) == list(range(len(sa)))


class TestLcpArray:
    def test_first_entry_zero(self):
        assert lcp_array("ACGTACGT")[0] == 0

    def test_known_repetitive_case(self):
        # For AAAA$, sorted suffixes are $, A$, AA$, AAA$, AAAA$ with LCPs
        # 0, 0, 1, 2, 3.
        assert list(lcp_array("AAAA")) == [0, 0, 1, 2, 3]

    def test_lcp_matches_direct_comparison(self):
        text = random_genome(100, seed=6) + "$"
        sa = suffix_array(text)
        lcp = lcp_array(text, sa)
        for rank in range(1, len(sa)):
            a, b = text[sa[rank - 1] :], text[sa[rank] :]
            common = 0
            while common < min(len(a), len(b)) and a[common] == b[common]:
                common += 1
            assert lcp[rank] == common

    def test_lcp_length_matches(self):
        text = random_genome(60, seed=7)
        assert len(lcp_array(text)) == len(text) + 1
