"""Cross-backend equivalence tests for the batched query engine.

For randomized references and mixed query sets (hits, mutated
near-misses, absent strings), every backend — 1-step FM-Index, EXMA
(exact, naive-learned and MTL Occ resolution), LISA (binary-search and
RMI) — must return identical BW-matrix intervals and identical located
positions, batched or one query at a time.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    ExmaBackend,
    FMIndexBackend,
    LisaBackend,
    QueryEngine,
    available_backends,
    create_backend,
)
from repro.exma.mtl_index import MTLIndex
from repro.exma.search import ExmaSearch
from repro.exma.table import ExmaTable
from repro.index.fmindex import FMIndex
from repro.lisa.search import LisaIndex
from repro.testing import brute_force_find, reference_and_queries

#: (genome_length, query_count, query_length, seed) per randomized case.
CASES = [(400, 24, 12, 0), (700, 30, 17, 1), (1000, 40, 21, 2)]


def _interval_pairs(intervals):
    return [(interval.low, interval.high) for interval in intervals]


@pytest.fixture(scope="module", params=CASES, ids=lambda c: f"n{c[0]}-q{c[1]}")
def case(request):
    genome_length, count, length, seed = request.param
    reference, queries = reference_and_queries(
        genome_length=genome_length, count=count, length=length, seed=seed
    )
    # Lengths that are not multiples of any backend step exercise the
    # partial-chunk paths; add a couple explicitly.
    queries += [reference[5:18], reference[50:50 + 11], "ACGT"]
    return reference, queries


@pytest.fixture(scope="module")
def backends(case):
    reference, _ = case
    table = ExmaTable(reference, k=4)
    mtl = MTLIndex(table, model_threshold=8, samples_per_kmer=32, epochs=40, seed=0)
    return {
        "fmindex": FMIndexBackend(reference),
        "exma": ExmaBackend(table=table),
        "exma-learned": create_backend("exma-learned", reference, k=4, model_threshold=8),
        "exma-mtl": ExmaBackend(table=table, index=mtl),
        "lisa": LisaBackend(reference, k=3),
        "lisa-learned": LisaBackend(
            lisa_index=LisaIndex(reference, k=3, use_learned_index=True)
        ),
    }


class TestCrossBackendEquivalence:
    def test_all_registered_backends_covered(self, backends):
        assert set(backends) == set(available_backends())

    def test_intervals_identical_across_backends(self, case, backends):
        """Non-empty match intervals agree exactly; misses are empty everywhere.

        (Backends consume different numbers of symbols per step, so an
        absent query aborts at different points — the empty interval's
        bounds are backend-specific, its emptiness is not.)
        """
        reference, queries = case
        expected = [FMIndex(reference).backward_search(q) for q in queries]
        for name, backend in backends.items():
            got = backend.search_batch(queries)
            for query, want, have in zip(queries, expected, got):
                if want.empty:
                    assert have.empty, f"backend {name} found absent query {query!r}"
                else:
                    assert (have.low, have.high) == (want.low, want.high), (
                        f"backend {name} diverged on {query!r}"
                    )

    def test_positions_match_brute_force(self, case, backends):
        reference, queries = case
        oracle = [brute_force_find(reference, q) for q in queries]
        for name, backend in backends.items():
            found = backend.find_batch(queries)
            assert found == oracle, f"backend {name} locate diverged"

    def test_batch_matches_single_query(self, case, backends):
        reference, queries = case
        for name, backend in backends.items():
            batched = _interval_pairs(backend.search_batch(queries))
            singles = _interval_pairs(backend.search(q) for q in queries)
            assert batched == singles, f"backend {name} batch != single"

    def test_batch_order_independent(self, case, backends):
        _, queries = case
        shuffled = list(reversed(queries))
        for name, backend in backends.items():
            forward = dict(zip(queries, _interval_pairs(backend.search_batch(queries))))
            backward = dict(zip(shuffled, _interval_pairs(backend.search_batch(shuffled))))
            assert forward == backward, f"backend {name} order-dependent"


class TestEngineAgainstSequentialPaths:
    def test_engine_matches_fmindex_find(self, case):
        reference, queries = case
        fm = FMIndex(reference)
        engine = QueryEngine(FMIndexBackend(fm_index=fm))
        positions, _ = engine.find_batch(queries)
        assert positions == [fm.find(q) for q in queries]

    def test_engine_matches_exma_search(self, case):
        reference, queries = case
        table = ExmaTable(reference, k=4)
        sequential = ExmaSearch(table)
        engine = QueryEngine(ExmaBackend(table=table))
        batched = _interval_pairs(engine.search_batch(queries).intervals)
        assert batched == _interval_pairs(sequential.backward_search(q) for q in queries)

    def test_engine_matches_lisa_search(self, case):
        reference, queries = case
        lisa = LisaIndex(reference, k=3, use_learned_index=False)
        engine = QueryEngine(LisaBackend(lisa_index=lisa))
        batched = _interval_pairs(engine.search_batch(queries).intervals)
        assert batched == _interval_pairs(lisa.backward_search(q) for q in queries)

    def test_learned_resolution_never_changes_results(self, case):
        """Prediction accuracy affects cost counters, never intervals."""
        reference, queries = case
        table = ExmaTable(reference, k=4)
        exact = ExmaBackend(table=table)
        mtl = ExmaBackend(
            table=table,
            index=MTLIndex(table, model_threshold=4, samples_per_kmer=16, epochs=5, seed=3),
        )
        assert _interval_pairs(exact.search_batch(queries)) == _interval_pairs(
            mtl.search_batch(queries)
        )


class TestEngineApi:
    def test_empty_batch(self):
        engine = QueryEngine.from_reference("ACGTACGTACGT", name="fmindex")
        result = engine.search_batch([])
        assert result.intervals == [] and result.stats.queries == 0

    def test_empty_query_raises(self):
        engine = QueryEngine.from_reference("ACGTACGTACGT", name="fmindex")
        with pytest.raises(ValueError):
            engine.search_batch(["ACGT", ""])

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("nope", "ACGT")

    def test_single_query_wrappers(self):
        reference, queries = reference_and_queries(genome_length=300, count=4, seed=7)
        engine = QueryEngine.from_reference(reference, name="fmindex")
        query = queries[0]
        assert engine.find(query) == brute_force_find(reference, query)
        assert engine.occurrence_count(query) == len(brute_force_find(reference, query))

    def test_batch_result_counts_and_matched(self):
        reference = "ACGTACGTACGT"
        engine = QueryEngine.from_reference(reference, name="fmindex")
        result = engine.search_batch(["ACGT", "TTTT"])
        assert result.counts == [3, 0]
        assert result.matched == 1

    def test_stats_populated(self):
        reference, queries = reference_and_queries(genome_length=500, count=16, seed=4)
        engine = QueryEngine.from_reference(reference, name="fmindex")
        stats = engine.search_batch(queries).stats
        assert stats.queries == len(queries)
        assert stats.occ_requests_issued >= stats.occ_requests_unique > 0
        assert stats.iterations > 0
        assert stats.lockstep_iterations <= max(len(q) for q in queries)
        assert len(stats.requests) == stats.occ_requests_unique


class TestBatchedSeeding:
    def test_batch_mems_match_sequential(self):
        reference, _ = reference_and_queries(genome_length=1500, count=0, seed=5)
        fm = FMIndex(reference)
        backend = FMIndexBackend(fm_index=fm)
        reads = [reference[i : i + 70] for i in range(0, 1200, 111)]
        # Corrupt some reads so seeds split, exercising restarts.
        reads += [read[:30] + "A" + read[31:] for read in reads[:3]]
        batched = backend.maximal_exact_matches_batch(reads, min_length=12)
        for read, seeds in zip(reads, batched):
            expected = fm.maximal_exact_matches(read, min_length=12)
            assert [
                (s.read_start, s.read_end, s.interval.low, s.interval.high) for s in seeds
            ] == [
                (s.read_start, s.read_end, s.interval.low, s.interval.high) for s in expected
            ]
