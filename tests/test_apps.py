"""Unit and integration tests for the genome-analysis applications."""

from __future__ import annotations

import pytest

from repro.apps.alignment import AlignerCounters, ReadAligner, alignment_accuracy
from repro.apps.annotation import AnnotationCounters, ExactWordAnnotator, words_from_reference
from repro.apps.assembly import AssemblyCounters, OverlapAssembler, error_correct_reads, n50
from repro.apps.compression import (
    CompressionCounters,
    LiteralToken,
    MatchToken,
    ReferenceCompressor,
    compressed_size_bytes,
)
from repro.apps.pipeline import (
    APPLICATIONS,
    WorkCounters,
    application_energy,
    default_breakdown_model,
    run_application,
)
from repro.genome.datasets import build_dataset
from repro.genome.reads import ILLUMINA, PACBIO, ReadSimulator
from repro.genome.sequence import random_genome
from repro.index.fmindex import FMIndex


@pytest.fixture(scope="module")
def reference() -> str:
    # Mostly unique sequence so perfect reads have a single best placement.
    from repro.genome.sequence import RepeatProfile

    return random_genome(
        3000, repeat_profile=RepeatProfile(repeat_fraction=0.02, tandem_fraction=0.0), seed=33
    )


@pytest.fixture(scope="module")
def aligner(reference) -> ReadAligner:
    return ReadAligner(reference, min_seed_length=15)


class TestReadAligner:
    def test_perfect_read_maps_to_origin(self, aligner, reference):
        read = reference[500:580]
        result = aligner.align_read(read)
        assert result.mapped
        assert abs(result.position - 500) <= 5

    def test_reverse_complement_read_maps(self, aligner, reference):
        from repro.genome.alphabet import reverse_complement

        read = reverse_complement(reference[900:980])
        result = aligner.align_read(read)
        assert result.mapped
        assert result.reverse
        assert abs(result.position - 900) <= 5

    def test_read_with_errors_still_maps(self, aligner, reference):
        read = list(reference[1200:1300])
        read[30] = "A" if read[30] != "A" else "C"
        read[70] = "G" if read[70] != "G" else "T"
        result = aligner.align_read("".join(read))
        assert result.mapped
        assert abs(result.position - 1200) <= 10

    def test_foreign_read_unmapped_or_low_score(self, aligner):
        foreign = "ACGT" * 25
        result = aligner.align_read(foreign)
        perfect_score = 100 * 2
        assert (not result.mapped) or result.score < perfect_score * 0.8

    def test_counters_accumulate(self, aligner, reference):
        counters = AlignerCounters()
        aligner.align_read(reference[100:180], counters=counters)
        aligner.align_read(reference[300:380], counters=counters)
        assert counters.reads == 2
        assert counters.seeding_bases_searched > 0
        assert counters.extension_cells > 0

    def test_align_batch_and_accuracy(self, reference):
        reads = ReadSimulator(reference, ILLUMINA, seed=1).simulate(read_length=90, count=12)
        aligner = ReadAligner(reference)
        results, counters = aligner.align_batch(reads)
        assert counters.reads == 12
        assert alignment_accuracy(results, reads) > 0.7

    def test_empty_read_raises(self, aligner):
        with pytest.raises(ValueError):
            aligner.align_read("")

    def test_accuracy_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            alignment_accuracy([], [None])  # type: ignore[list-item]

    def test_invalid_parameters(self, reference):
        with pytest.raises(ValueError):
            ReadAligner(reference, min_seed_length=0)
        with pytest.raises(ValueError):
            ReadAligner(reference, max_seed_hits=0)


class TestAssembly:
    def test_reassembles_tiled_reads(self):
        genome = random_genome(600, seed=44)
        reads = [genome[i : i + 100] for i in range(0, 500, 40)]
        assembler = OverlapAssembler(min_overlap=30)
        counters = AssemblyCounters()
        contigs = assembler.assemble(reads, counters)
        assert counters.contigs == len(contigs)
        longest = max(contigs, key=len)
        assert len(longest) > 300
        assert longest.sequence in genome

    def test_disjoint_reads_stay_separate(self):
        genome = random_genome(2000, seed=45)
        reads = [genome[0:100], genome[1000:1100]]
        contigs = OverlapAssembler(min_overlap=30).assemble(reads)
        assert len(contigs) == 2

    def test_empty_input(self):
        assert OverlapAssembler().assemble([]) == []

    def test_overlap_detection(self):
        genome = random_genome(300, seed=46)
        a, b = genome[0:120], genome[80:200]
        overlaps = OverlapAssembler(min_overlap=20).find_overlaps([a, b])
        assert any(o.source == 0 and o.target == 1 and o.length == 40 for o in overlaps)

    def test_n50(self):
        class FakeContig(str):
            pass

        from repro.apps.assembly import Contig

        contigs = [Contig("A" * 100, (0,)), Contig("A" * 50, (1,)), Contig("A" * 10, (2,))]
        assert n50(contigs) == 100

    def test_n50_empty(self):
        assert n50([]) == 0

    def test_invalid_min_overlap(self):
        with pytest.raises(ValueError):
            OverlapAssembler(min_overlap=0)

    def test_error_correction_fixes_isolated_error(self):
        genome = ("ACGTTGCA" * 40) + random_genome(200, seed=47)
        fm = FMIndex(genome)
        clean = genome[16:61]
        corrupted = clean[:20] + ("A" if clean[20] != "A" else "C") + clean[21:]
        corrected = error_correct_reads([corrupted], fm, kmer=9, min_support=3)[0]
        mismatches_before = sum(1 for a, b in zip(corrupted, clean) if a != b)
        mismatches_after = sum(1 for a, b in zip(corrected, clean) if a != b)
        assert mismatches_after <= mismatches_before


class TestAnnotation:
    def test_word_positions_exact(self, reference):
        fm = FMIndex(reference)
        annotator = ExactWordAnnotator(fm)
        word = reference[100:124]
        annotation = annotator.annotate_word(word)
        assert 100 in annotation.positions
        assert annotation.count >= 1

    def test_absent_word_empty(self, reference):
        annotator = ExactWordAnnotator(FMIndex(reference))
        annotation = annotator.annotate_word("ACGT" * 10)
        assert annotation.count == len(
            [i for i in range(len(reference) - 39) if reference[i : i + 40] == "ACGT" * 10]
        )

    def test_counters(self, reference):
        annotator = ExactWordAnnotator(FMIndex(reference))
        counters = AnnotationCounters()
        words = words_from_reference(reference, word_length=20, stride=500)
        annotator.annotate(words, counters)
        assert counters.words == len(words)
        assert counters.bases_searched == 20 * len(words)
        assert counters.occurrences >= len(words)

    def test_words_from_reference_parameters(self, reference):
        words = words_from_reference(reference, word_length=24, stride=300)
        assert all(len(w) == 24 for w in words)
        with pytest.raises(ValueError):
            words_from_reference(reference, word_length=0)

    def test_empty_word_raises(self, reference):
        with pytest.raises(ValueError):
            ExactWordAnnotator(FMIndex(reference)).annotate_word("")


class TestCompression:
    def test_roundtrip(self, reference):
        fm = FMIndex(reference)
        compressor = ReferenceCompressor(fm, reference)
        donor = reference[200:600]
        tokens = compressor.compress(donor)
        assert compressor.decompress(tokens) == donor

    def test_similar_sequence_compresses_well(self, reference):
        fm = FMIndex(reference)
        compressor = ReferenceCompressor(fm, reference)
        counters = CompressionCounters()
        donor = reference[100:700]
        compressor.compress(donor, counters)
        assert counters.compression_ratio < 0.3

    def test_foreign_sequence_stays_literal(self, reference):
        fm = FMIndex(reference)
        compressor = ReferenceCompressor(fm, reference)
        counters = CompressionCounters()
        foreign = random_genome(300, seed=48)
        tokens = compressor.compress(foreign, counters)
        assert compressor.decompress(tokens) == foreign
        assert counters.compression_ratio > 0.5

    def test_roundtrip_with_mutations(self, reference):
        fm = FMIndex(reference)
        compressor = ReferenceCompressor(fm, reference)
        donor = list(reference[300:800])
        for i in range(0, len(donor), 97):
            donor[i] = "A" if donor[i] != "A" else "G"
        sequence = "".join(donor)
        assert compressor.decompress(compressor.compress(sequence)) == sequence

    def test_token_sizes(self):
        tokens = [MatchToken(0, 100), LiteralToken("ACGT")]
        assert compressed_size_bytes(tokens) == 6 + 2 + 4

    def test_invalid_parameters(self, reference):
        fm = FMIndex(reference)
        with pytest.raises(ValueError):
            ReferenceCompressor(fm, reference, min_match=0)
        with pytest.raises(ValueError):
            ReferenceCompressor(fm, reference).compress("")


class TestPipeline:
    def test_run_application_all_apps(self):
        reference = build_dataset("human", simulated_length=6000, seed=0)
        for application in APPLICATIONS:
            work = run_application(application, reference, ILLUMINA, read_count=4, seed=0)
            assert work.fm_bases_searched > 0

    def test_alignment_has_dp_work(self):
        reference = build_dataset("human", simulated_length=6000, seed=1)
        work = run_application("alignment", reference, ILLUMINA, read_count=4, seed=1)
        assert work.dp_cells > 0

    def test_unknown_application_raises(self):
        reference = build_dataset("human", simulated_length=3000, seed=2)
        with pytest.raises(ValueError):
            run_application("folding", reference, ILLUMINA)

    def test_breakdown_fractions_sum_to_one(self):
        model = default_breakdown_model()
        run = model.breakdown("alignment", "human", WorkCounters(1000, 500, 100))
        total = run.fm_index_fraction + (
            run.dynamic_programming_seconds + run.other_seconds
        ) / run.total_seconds
        assert total == pytest.approx(1.0)

    def test_application_energy_exma_lower(self):
        model = default_breakdown_model()
        run = model.breakdown("alignment", "human", WorkCounters(100_000, 5_000, 2_000))
        baseline, exma = application_energy(run, search_speedup=23.6)
        assert exma.total_j < baseline.total_j

    def test_application_energy_invalid_speedup(self):
        model = default_breakdown_model()
        run = model.breakdown("alignment", "human", WorkCounters(10, 1, 1))
        with pytest.raises(ValueError):
            application_energy(run, search_speedup=0.0)

    def test_higher_error_profile_shifts_breakdown(self):
        reference = build_dataset("human", simulated_length=6000, seed=3)
        illumina = run_application("alignment", reference, ILLUMINA, read_count=4, seed=3)
        pacbio = run_application("alignment", reference, PACBIO, read_count=4, read_length=300, seed=3)
        model = default_breakdown_model()
        frac_illumina = model.breakdown("alignment", "human", illumina).fm_index_fraction
        frac_pacbio = model.breakdown("alignment", "human", pacbio).fm_index_fraction
        # Error-rich long reads spend relatively more time outside seeding.
        assert frac_pacbio <= frac_illumina + 0.2


class TestShardedAppPaths:
    """Opt-in sharded execution must not change any application result."""

    def test_aligner_sharded_seeding_identical(self, reference):
        simulator = ReadSimulator(reference, ILLUMINA, seed=9)
        reads = simulator.simulate(read_length=80, count=10)
        serial = ReadAligner(reference, min_seed_length=15, shards=1)
        sharded = ReadAligner(reference, min_seed_length=15, shards=4, executor="thread")
        serial_results, serial_counters = serial.align_batch(reads)
        sharded_results, sharded_counters = sharded.align_batch(reads)
        assert sharded_results == serial_results
        assert sharded_counters == serial_counters

    def test_aligner_process_executor_identical(self, reference):
        simulator = ReadSimulator(reference, ILLUMINA, seed=9)
        reads = simulator.simulate(read_length=80, count=6)
        serial_results, _ = ReadAligner(reference, shards=1).align_batch(reads)
        sharded_results, _ = ReadAligner(
            reference, shards=2, executor="process"
        ).align_batch(reads)
        assert sharded_results == serial_results

    def test_annotator_sharded_identical(self, reference):
        fm = FMIndex(reference)
        words = words_from_reference(reference, word_length=20, stride=150)
        serial = ExactWordAnnotator(FMIndex(reference)).annotate(words)
        counters = AnnotationCounters()
        sharded = ExactWordAnnotator(fm, shards=4, executor="thread").annotate(
            words, counters
        )
        assert sharded == serial
        assert counters.words == len(words)

    def test_pipeline_work_counters_identical_under_sharding(self):
        reference = build_dataset("human", simulated_length=5000, seed=4)
        for application in ("alignment", "annotate"):
            serial = run_application(application, reference, ILLUMINA, read_count=4, seed=4)
            sharded = run_application(
                application, reference, ILLUMINA, read_count=4, seed=4, shards=3
            )
            assert sharded == serial, application

    def test_aligner_rejects_invalid_shards(self, reference):
        with pytest.raises(ValueError):
            ReadAligner(reference, shards=0)


class TestWindowedAppPaths:
    """Opt-in scheduling windows record streams without changing results."""

    def test_aligner_windowed_results_identical_and_flushes_recorded(self, reference):
        simulator = ReadSimulator(reference, ILLUMINA, seed=9)
        reads = simulator.simulate(read_length=80, count=8)
        plain = ReadAligner(reference, min_seed_length=15)
        windowed = ReadAligner(reference, min_seed_length=15, window=2)
        plain_results, plain_counters = plain.align_batch(reads)
        windowed_results, windowed_counters = windowed.align_batch(reads)
        assert windowed_results == plain_results
        assert windowed_counters == plain_counters
        assert windowed.window_capacity == 2
        # One seeding pass buffered; the partial window flushes on demand.
        assert windowed.windowed_flushes == ()
        flushed = windowed.flush_window()
        assert flushed is not None
        assert flushed.batches == 1
        assert flushed.unique <= flushed.issued
        assert windowed.windowed_flushes == (flushed,)
        # Window full after a second pass: push flushes without an explicit call.
        windowed.align_batch(reads)
        windowed.align_batch(reads)
        assert len(windowed.windowed_flushes) == 2
        assert windowed.windowed_flushes[-1].batches == 2

    def test_aligner_without_window_noops(self, aligner):
        assert aligner.window_capacity is None
        assert aligner.flush_window() is None
        assert aligner.windowed_flushes == ()

    def test_annotator_windowed_annotations_identical(self, reference):
        fm = FMIndex(reference)
        words = words_from_reference(reference, word_length=20, stride=150)
        plain = ExactWordAnnotator(FMIndex(reference)).annotate(words)
        annotator = ExactWordAnnotator(fm, window=2)
        assert annotator.annotate(words) == plain
        assert annotator.windowed_flushes == ()
        # A second batch fills the W=2 window and flushes the merged stream.
        assert annotator.annotate(words) == plain
        flushes = annotator.windowed_flushes
        assert len(flushes) == 1
        assert flushes[0].batches == 2
        # Identical word batches: the second batch merges away entirely, so
        # at least half of the issued requests are eliminated.
        assert flushes[0].unique <= flushes[0].issued // 2
        assert annotator.flush_window() is None  # nothing pending

    def test_windowed_flushes_feed_the_accelerator(self, reference):
        from repro.accel import ExmaAccelerator, ExmaAcceleratorConfig
        from repro.exma.table import ExmaTable

        fm = FMIndex(reference)
        words = words_from_reference(reference, word_length=20, stride=150)
        annotator = ExactWordAnnotator(fm, window=2)
        annotator.annotate(words)
        annotator.annotate(words)
        config = ExmaAcceleratorConfig().with_overrides(
            base_cache_bytes=2048, index_cache_bytes=1024, cam_entries=32
        )
        accelerator = ExmaAccelerator(ExmaTable(reference, k=4), None, config)
        result = accelerator.run_stream(annotator.windowed_flushes)
        assert result.windows == 1
        assert result.batches == 2
        assert result.merge_ratio >= 2.0
        assert result.total_cycles > 0

    def test_pipeline_window_keeps_work_counters_identical(self):
        reference = build_dataset("human", simulated_length=5000, seed=4)
        for application in ("alignment", "annotate"):
            plain = run_application(application, reference, ILLUMINA, read_count=4, seed=4)
            flushes: list = []
            windowed = run_application(
                application, reference, ILLUMINA, read_count=4, seed=4, window=2,
                window_flushes=flushes,
            )
            assert windowed == plain, application
            # The recorded stream surfaces through the collector.
            assert flushes, application
            assert all(flushed.unique <= flushed.issued for flushed in flushes)

    def test_aligner_rejects_invalid_window(self, reference):
        with pytest.raises(ValueError):
            ReadAligner(reference, window=0)
