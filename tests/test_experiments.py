"""Tests for the per-figure experiment harnesses (small scales).

These tests run every experiment end-to-end at the smallest sensible scale
and assert the qualitative claims the paper makes — orderings, monotone
trends, rough ratios — rather than absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    build_workload,
    exma_size_sweep,
    run_fig1,
    run_fig6,
    run_fig10,
    run_fig11_12,
    run_fig13,
    run_fig18,
    run_fig19_20,
    run_fig21,
    run_fig22,
    run_fig23,
    run_table1,
    run_table2,
    sample_queries,
)

pytestmark = pytest.mark.slow  # regenerates every experiment end-to-end

SMALL = 12_000


@pytest.fixture(scope="module")
def fig6_result():
    return run_fig6(genome_length=SMALL, seed=0)


@pytest.fixture(scope="module")
def fig18_result():
    return run_fig18(genome_length=SMALL, seed=0, datasets=("human", "pinus"))


class TestWorkloadBuilder:
    def test_workload_components(self):
        workload = build_workload("human", genome_length=8000, k=4, query_count=10)
        assert workload.table.k == 4
        assert len(workload.queries) == 10
        assert len(workload.requests) > 0
        assert workload.reference.name == "human"

    def test_sample_queries_lengths(self):
        reference = build_workload("human", genome_length=8000, k=4, query_count=5).reference
        queries = sample_queries(reference.sequence, count=5, length=30)
        assert len(queries) == 5
        assert all(len(q) <= 30 for q in queries)


class TestFig1:
    def test_breakdown_rows_cover_all_workloads(self):
        rows = run_fig1(genome_length=8000, read_count=4)
        assert len(rows) == 8
        for row in rows:
            total = row.fm_index_fraction + row.dynamic_programming_fraction + row.other_fraction
            assert total == pytest.approx(1.0)

    def test_fm_index_is_major_component(self):
        rows = run_fig1(genome_length=8000, read_count=4)
        mean_fm = sum(row.fm_index_fraction for row in rows) / len(rows)
        assert mean_fm > 0.3  # paper: 31 %-81 % of execution time


class TestFig6:
    def test_row_accesses_have_little_locality(self, fig6_result):
        trace = fig6_result.row_trace
        assert trace.accesses > 0
        assert trace.consecutive_same_bucket_rate < 0.6
        assert trace.distinct_buckets > trace.accesses * 0.25

    def test_fm_size_exponential_lisa_linear(self, fig6_result):
        fm = fig6_result.fm_sizes_gb
        lisa = fig6_result.lisa_sizes_gb
        assert fm[6] / fm[5] > 3.0
        assert lisa[32] / lisa[21] < 2.0
        assert fm[6] > 300  # paper: 374 GB
        assert 80 < fm[5] < 120  # paper: 105 GB

    def test_lisa_errors_nonzero(self, fig6_result):
        assert fig6_result.lisa_error_stats.mean_error > 0
        assert fig6_result.lisa_error_stats.max_error >= fig6_result.lisa_error_stats.mean_error

    def test_cpu_throughput_ordering(self, fig6_result):
        norm = fig6_result.cpu_throughput_normalised
        assert norm["FM-1"] == pytest.approx(1.0)
        # k-step gains are modest and non-monotonic (FM-6 below FM-5).
        assert norm["FM-5"] < 2.5
        assert norm["FM-6"] < norm["FM-5"]
        # LISA beats conventional FM-Index; perfect index and perfect cache
        # add progressively more.
        assert norm["LISA-21"] > norm["FM-1"]
        assert norm["LISA-21P"] >= norm["LISA-21"]
        assert norm["LISA-21PC"] > norm["LISA-21P"]


class TestFig10:
    def test_size_sweep_components(self):
        rows = exma_size_sweep(10, 17)
        by_step = {row.step: row for row in rows}
        # Increments and SA are constant; bases grow 4x per step.
        assert by_step[12].increments_gb == pytest.approx(by_step[16].increments_gb)
        assert by_step[16].bases_gb == pytest.approx(4 * by_step[15].bases_gb, rel=0.01)
        # 15-step total near the paper's 29.5 GB.
        assert 25 < by_step[15].total_gb < 35

    def test_throughput_panel(self):
        result = run_fig10(genome_length=SMALL, seed=0)
        norm = result.throughput_normalised
        assert norm["LISA-21"] == pytest.approx(1.0)
        assert norm["EXMA-15M"] > 0.9  # EXMA-15M competitive with LISA-21
        assert "EXMA-15" in norm and "EXMA-17" in norm
        assert result.parameter_counts["EXMA-15M"] > 0


class TestFig11_12:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig11_12(genome_length=SMALL, k=5, seed=0)

    def test_distributions_similar(self, result):
        # Kolmogorov-Smirnov distance is bounded by 1; similar CDFs stay
        # well below that.
        assert 0.0 <= result.similarity.mean_pairwise_ks_distance < 0.9
        assert result.similarity.kmer_count > 1

    def test_profile_fractions_sum_to_one(self, result):
        assert sum(b.kmer_fraction for b in result.buckets) == pytest.approx(1.0, abs=0.01)
        assert sum(b.search_time_fraction for b in result.buckets) == pytest.approx(1.0, abs=0.01)

    def test_heavy_kmers_take_disproportionate_time(self, result):
        buckets = [b for b in result.buckets if b.kmer_fraction > 0]
        heaviest = buckets[-1]
        assert heaviest.search_time_fraction >= heaviest.kmer_fraction


class TestFig13:
    def test_mtl_uses_fewer_parameters(self):
        result = run_fig13(genome_length=SMALL, k=5, seed=0, mtl_epochs=60, samples_per_kmer=30)
        assert result.mtl_parameters < result.naive_parameters
        assert result.heavy.kmer_count > 0
        assert result.heavy.naive.mean_error >= 0
        assert result.heaviest.mtl.mean_error >= 0


class TestFig18:
    def test_all_datasets_present(self, fig18_result):
        assert {row.dataset for row in fig18_result.rows} == {"human", "pinus"}

    def test_accelerator_beats_software(self, fig18_result):
        for row in fig18_result.rows:
            assert row.ex_acc > row.exma15_software

    def test_full_exma_is_best_variant(self, fig18_result):
        for row in fig18_result.rows:
            assert row.exma >= row.ex_acc
            assert row.exma >= row.ex_2stage * 0.95

    def test_exma_software_beats_cpu(self, fig18_result):
        for row in fig18_result.rows:
            assert row.exma15_software > 1.0


class TestFig19_20:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig19_20(
            search_speedup=23.6, datasets=("human",), genome_length=8000, read_count=4
        )

    def test_speedups_above_one(self, result):
        assert all(outcome.speedup > 1.0 for outcome in result.outcomes)

    def test_gmean_speedup_in_paper_range(self, result):
        assert 1.5 < result.gmean_speedup() < 12.0

    def test_energy_reduced(self, result):
        assert all(outcome.normalised_energy < 1.0 for outcome in result.outcomes)
        assert result.gmean_energy() < 0.6

    def test_energy_breakdown_components(self, result):
        outcome = result.outcomes[0]
        assert outcome.exma_energy.accelerator_dynamic_j >= 0
        assert outcome.exma_energy.cpu_j < outcome.baseline_energy.cpu_j


class TestFig21_23:
    def test_bandwidth_utilization_ordering(self):
        utilization = run_fig21()
        assert utilization["ASIC"] < utilization["MEDAL"] < utilization["EXMA"]
        assert utilization["EXMA"] > 0.8

    def test_dse_points_cover_all_groups(self):
        points = run_fig22(genome_length=SMALL, seed=0)
        groups = {p.group for p in points}
        assert groups == {"DIMMs", "PE arrays", "CAM entries", "base cache"}
        assert all(p.normalised_throughput > 0 for p in points)

    def test_chain_compression_comparison(self):
        comparison = run_fig23(dataset="pinus", genome_length=SMALL, k=5, seed=0)
        assert comparison.lisa_original_gb > comparison.exma_original_gb
        assert comparison.exma_chain_gb < comparison.exma_original_gb
        assert comparison.exma_chain_gb < comparison.lisa_bdi_gb
        assert 0.0 < comparison.measured_chain_ratio < 1.0


class TestTables:
    def test_table1_area_consistent(self):
        table1 = run_table1()
        assert table1.area_matches_reported
        assert table1.dram_timings == (16, 16, 16)
        assert table1.cpu_cores == 16
        assert table1.dram_capacity_gb == 384

    def test_table2_rows_and_ordering(self):
        rows = run_table2()
        names = [row.name for row in rows]
        assert names == ["GPU", "FPGA", "ASIC", "MEDAL", "FindeR", "EXMA"]
        by_name = {row.name: row for row in rows}
        assert by_name["EXMA"].mbase_per_second == max(r.mbase_per_second for r in rows)
        assert by_name["EXMA"].mbase_per_second_per_watt == max(
            r.mbase_per_second_per_watt for r in rows
        )
        assert by_name["ASIC"].mbase_per_second == min(r.mbase_per_second for r in rows)

    def test_table2_exma_vs_medal_ratio(self):
        rows = {row.name: row for row in run_table2()}
        ratio = rows["EXMA"].mbase_per_second / rows["MEDAL"].mbase_per_second
        assert 3.0 < ratio < 8.0  # paper reports 4.9x
