"""Unit tests for repro.apps.smith_waterman."""

from __future__ import annotations

import pytest

from repro.apps.smith_waterman import (
    LocalAlignment,
    ScoringScheme,
    banded_smith_waterman,
    smith_waterman,
)


class TestScoringScheme:
    def test_defaults_valid(self):
        ScoringScheme()

    def test_invalid_match(self):
        with pytest.raises(ValueError):
            ScoringScheme(match=0)

    def test_invalid_penalties(self):
        with pytest.raises(ValueError):
            ScoringScheme(mismatch=1)
        with pytest.raises(ValueError):
            ScoringScheme(gap=0)


class TestSmithWaterman:
    def test_identical_sequences(self):
        result = smith_waterman("ACGTACGT", "ACGTACGT")
        assert result.score == 16
        assert result.query_span == 8
        assert result.target_start == 0

    def test_substring_match(self):
        result = smith_waterman("CGTA", "AACGTATT")
        assert result.score == 8
        assert result.target_start == 2

    def test_mismatch_reduces_score(self):
        perfect = smith_waterman("ACGTACGT", "ACGTACGT").score
        mismatched = smith_waterman("ACGTACGT", "ACGTTCGT").score
        assert mismatched < perfect

    def test_gap_handled(self):
        result = smith_waterman("ACGTACGT", "ACGTTTACGT")
        assert result.score >= 8

    def test_no_similarity(self):
        result = smith_waterman("AAAA", "TTTT")
        assert result.score == 0

    def test_cells_computed(self):
        result = smith_waterman("ACGT", "ACGTACGT")
        assert result.cells_computed == 4 * 8

    def test_empty_inputs_raise(self):
        with pytest.raises(ValueError):
            smith_waterman("", "ACGT")
        with pytest.raises(ValueError):
            smith_waterman("ACGT", "")

    def test_spans_consistent(self):
        result = smith_waterman("GGCATTACG", "TTCATTAGG")
        assert result.query_end >= result.query_start
        assert result.target_end >= result.target_start


class TestBandedSmithWaterman:
    def test_matches_full_when_band_large(self):
        query, target = "ACGTACGTAA", "ACGTACGTAA"
        full = smith_waterman(query, target)
        banded = banded_smith_waterman(query, target, band=len(target))
        assert banded.score == full.score

    def test_fewer_cells_than_full(self):
        query = "ACGT" * 10
        target = "ACGT" * 10
        full = smith_waterman(query, target)
        banded = banded_smith_waterman(query, target, band=4)
        assert banded.cells_computed < full.cells_computed

    def test_finds_near_diagonal_alignment(self):
        query = "ACGTACGTACGT"
        target = "ACGTACGAACGT"
        result = banded_smith_waterman(query, target, band=4)
        assert result.score > 10

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            banded_smith_waterman("ACGT", "ACGT", band=0)

    def test_empty_inputs_raise(self):
        with pytest.raises(ValueError):
            banded_smith_waterman("", "ACGT")

    def test_result_type(self):
        assert isinstance(banded_smith_waterman("ACG", "ACG"), LocalAlignment)
