"""Fault-injection and supervision suite.

Two layers: the registry itself (spec grammar, seeded determinism, the
exact-probe schedule that makes failure edges testable instead of
flaky), and the serving stack under injected faults — transient search
faults absorbed by bisection, poisoned queries quarantined alone, worker
kills respawned by supervision, replay retry/degraded-mode ladders, and
the zero-stranded ledger contract under combined chaos.
"""

from __future__ import annotations

import pytest

from repro.accel.exma_accelerator import ExmaAccelerator
from repro.engine.backends import ExmaBackend
from repro.engine.engine import QueryEngine
from repro.exma.table import ExmaTable
from repro.faults import (
    FAULT_SITES,
    SITE_LOOP,
    SITE_REPLAY,
    SITE_SEARCH,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    WorkerKilled,
    parse_fault_spec,
)
from repro.genome.sequence import random_genome
from repro.serving import QueryService, ServingConfig
from repro.testing import random_queries

TIMEOUT = 60.0


@pytest.fixture(scope="module")
def stack():
    reference = random_genome(1600, seed=7)
    table = ExmaTable(reference, k=4)
    engine = QueryEngine(ExmaBackend(table=table))
    queries = random_queries(reference, count=12, length=16, seed=5)
    return reference, table, engine, queries


def _service(stack, config):
    _, table, engine, _ = stack
    return QueryService(engine, ExmaAccelerator(table, None), config)


def _plan(*specs, seed=0):
    return FaultPlan(specs=tuple(specs), seed=seed)


# --------------------------------------------------------------------- #
# Specs and the CLI grammar
# --------------------------------------------------------------------- #


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="nowhere", kind="raise", rate=0.5)
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(site=SITE_SEARCH, kind="explode", rate=0.5)
        with pytest.raises(ValueError, match="rate must be in"):
            FaultSpec(site=SITE_SEARCH, kind="raise", rate=1.5)
        with pytest.raises(ValueError, match="rate > 0 or explicit"):
            FaultSpec(site=SITE_SEARCH, kind="raise")
        with pytest.raises(ValueError, match=">= 0"):
            FaultSpec(site=SITE_SEARCH, kind="raise", at=(-1,))
        with pytest.raises(ValueError, match="delay_s"):
            FaultSpec(site=SITE_SEARCH, kind="delay", rate=0.5, delay_s=-1.0)

    def test_parse_rate_form(self):
        spec = parse_fault_spec("replay.flush:raise:0.2")
        assert spec == FaultSpec(site=SITE_REPLAY, kind="raise", rate=0.2)

    def test_parse_schedule_and_delay_forms(self):
        spec = parse_fault_spec("worker.loop:kill:@3,7")
        assert spec.site == SITE_LOOP and spec.kind == "kill"
        assert spec.at == (3, 7) and spec.rate == 0.0
        delayed = parse_fault_spec("engine.search:delay:0.05:1.5")
        assert delayed.kind == "delay" and delayed.delay_s == 1.5

    def test_parse_rejects_malformed(self):
        for bad in ("replay.flush", "replay.flush:raise", "a:b:c:d:e",
                    "replay.flush:raise:@"):
            with pytest.raises(ValueError):
                parse_fault_spec(bad)

    def test_plan_parse_and_for_site(self):
        plan = FaultPlan.parse(
            ["engine.search:raise:0.1", "replay.flush:kill:@2"], seed=9
        )
        assert plan.seed == 9 and len(plan.specs) == 2
        assert plan.for_site(SITE_REPLAY)[0].at == (2,)
        assert plan.for_site(SITE_LOOP) == ()
        with pytest.raises(TypeError):
            FaultPlan(specs=("not a spec",))


# --------------------------------------------------------------------- #
# The injector runtime
# --------------------------------------------------------------------- #


class TestFaultInjector:
    def test_exact_schedule_fires_exactly_there(self):
        injector = FaultInjector(
            _plan(FaultSpec(site=SITE_SEARCH, kind="raise", at=(2, 5)))
        )
        decisions = [injector.decide(SITE_SEARCH) is not None for _ in range(8)]
        assert decisions == [False, False, True, False, False, True, False, False]
        assert injector.injected[SITE_SEARCH] == 2
        assert injector.probes[SITE_SEARCH] == 8

    def test_rate_stream_is_seed_deterministic(self):
        """Fresh injectors over the same plan replay the same stream."""
        plan = _plan(FaultSpec(site=SITE_REPLAY, kind="raise", rate=0.3), seed=42)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        decisions_a = [a.decide(SITE_REPLAY) is not None for _ in range(64)]
        decisions_b = [b.decide(SITE_REPLAY) is not None for _ in range(64)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_sites_draw_independent_streams(self):
        plan = _plan(
            FaultSpec(site=SITE_SEARCH, kind="raise", rate=0.3),
            FaultSpec(site=SITE_REPLAY, kind="raise", rate=0.3),
        )
        solo = FaultInjector(plan)
        replay_alone = [solo.decide(SITE_REPLAY) is not None for _ in range(32)]
        mixed = FaultInjector(plan)
        for _ in range(32):
            mixed.decide(SITE_SEARCH)  # interleaved probes at another site
        replay_mixed = [mixed.decide(SITE_REPLAY) is not None for _ in range(32)]
        assert replay_alone == replay_mixed

    def test_fire_semantics(self):
        injector = FaultInjector(
            _plan(
                FaultSpec(site=SITE_SEARCH, kind="raise", at=(0,)),
                FaultSpec(site=SITE_LOOP, kind="kill", at=(0,)),
                FaultSpec(site=SITE_REPLAY, kind="delay", at=(0,), delay_s=0.0),
            )
        )
        with pytest.raises(InjectedFault) as raised:
            injector.fire(SITE_SEARCH)
        assert raised.value.site == SITE_SEARCH and raised.value.probe == 0
        assert not isinstance(raised.value, WorkerKilled)
        with pytest.raises(WorkerKilled):
            injector.fire(SITE_LOOP)
        injector.fire(SITE_REPLAY)  # delay_s=0: returns, no raise
        injector.fire(SITE_SEARCH)  # probe 1: off schedule, no-op
        assert injector.total_injected == 3

    def test_unknown_site_rejected(self):
        injector = FaultInjector(_plan())
        with pytest.raises(ValueError):
            injector.decide("nowhere")

    def test_empty_plan_never_fires(self):
        injector = FaultInjector(_plan())
        for site in FAULT_SITES:
            for _ in range(16):
                injector.fire(site)
        assert injector.total_injected == 0


# --------------------------------------------------------------------- #
# The serving stack under injected faults
# --------------------------------------------------------------------- #


class _PoisonEngine:
    """An engine whose batches fail whenever the poisoned query rides along."""

    def __init__(self, engine, poison: str):
        self._engine = engine
        self._poison = poison

    def clone(self):
        return _PoisonEngine(self._engine.clone(), self._poison)

    def search_batch(self, queries):
        if self._poison in queries:
            raise ValueError(f"poisoned query {self._poison!r}")
        return self._engine.search_batch(queries)

    def __getattr__(self, name):
        return getattr(self._engine, name)


class TestServingUnderFaults:
    def test_transient_search_fault_absorbed_by_bisection(self, stack):
        """One injected search failure on a multi-query batch: the bisected
        halves re-search clean, so every query still completes."""
        _, _, _, queries = stack
        config = ServingConfig(
            max_batch=16,
            faults=_plan(FaultSpec(site=SITE_SEARCH, kind="raise", at=(0,))),
        )
        service = _service(stack, config)
        ticket = service.submit(queries)
        service.stop()
        outcomes = ticket.result(timeout=TIMEOUT)
        assert all(outcome.ok for outcome in outcomes)
        assert service.stats.completed == len(queries)
        assert service.stats.failed == 0 and service.stats.quarantined == 0
        assert service.faults.total_injected == 1

    def test_poisoned_query_quarantined_alone(self, stack):
        """A query that fails every re-search is bisected down to a
        singleton and fails alone; its batch-mates complete."""
        _, table, engine, queries = stack
        poisoned = _PoisonEngine(engine, "NOTDNA")
        service = QueryService(
            poisoned, ExmaAccelerator(table, None), ServingConfig(max_batch=16)
        )
        group = queries[:5] + ["NOTDNA"] + queries[5:10]
        ticket = service.submit(group)
        service.stop()
        outcomes = ticket.result(timeout=TIMEOUT)
        by_query = {outcome.query: outcome for outcome in outcomes}
        bad = by_query["NOTDNA"]
        assert bad.status == "failed" and not bad.ok
        assert bad.interval is None and "SearchFailed" in bad.error
        for query in group:
            if query != "NOTDNA":
                assert by_query[query].ok
        assert service.stats.quarantined == 1
        assert service.stats.failed == 1
        assert service.stats.completed == len(group) - 1

    def test_failed_ticket_resolves_promptly(self, stack):
        """satellite: result(timeout=) on a failed query returns the failed
        outcome immediately — never a stranded TimeoutError."""
        _, table, engine, _ = stack
        poisoned = _PoisonEngine(engine, "NOTDNA")
        service = QueryService(poisoned, ExmaAccelerator(table, None), ServingConfig())
        ticket = service.submit(["NOTDNA"])
        service.stop()
        (outcome,) = ticket.result(timeout=1.0)
        assert ticket.done()
        assert outcome.status == "failed" and not outcome.ok

    def test_worker_kill_respawns_and_serves_on(self, stack):
        """A kill at the loop's first probe crashes the batcher thread;
        supervision respawns it and the service keeps completing queries."""
        _, _, _, queries = stack
        config = ServingConfig(
            workers=1,
            faults=_plan(FaultSpec(site=SITE_LOOP, kind="kill", at=(0,))),
        )
        service = _service(stack, config)
        with service:
            ticket = service.submit(queries)
            outcomes = ticket.result(timeout=TIMEOUT)
            service.stop()
        assert all(outcome.ok for outcome in outcomes)
        assert service.stats.worker_crashes == 1
        assert service.stats.completed == len(queries)

    def test_kill_mid_batch_fails_only_owned_queries(self, stack):
        """A worker killed at the search probe fails the batch it owns with
        a structured outcome; nothing strands, and the respawned worker
        completes later traffic."""
        _, _, _, queries = stack
        config = ServingConfig(
            workers=1,
            max_batch=16,
            faults=_plan(FaultSpec(site=SITE_SEARCH, kind="kill", at=(0,))),
        )
        service = _service(stack, config)
        with service:
            first = service.submit(queries[:6])
            first_outcomes = first.result(timeout=TIMEOUT)
            second = service.submit(queries[6:])
            second_outcomes = second.result(timeout=TIMEOUT)
            service.stop()
        assert all(outcome.status == "failed" for outcome in first_outcomes)
        assert all("WorkerKilled" in outcome.error for outcome in first_outcomes)
        assert all(outcome.ok for outcome in second_outcomes)
        assert service.stats.worker_crashes == 1
        stats = service.stats
        assert stats.completed + stats.failed + stats.cancelled == stats.accepted

    def test_replay_fault_retried_then_completes(self, stack):
        """One injected replay failure: the capped-backoff retry succeeds,
        so the flush (and every query riding it) completes."""
        _, _, _, queries = stack
        config = ServingConfig(
            max_batch=16,
            faults=_plan(FaultSpec(site=SITE_REPLAY, kind="raise", at=(0,))),
        )
        service = _service(stack, config)
        ticket = service.submit(queries)
        service.stop()
        assert all(outcome.ok for outcome in ticket.result(timeout=TIMEOUT))
        assert service.stats.replay_faults == 1
        assert service.stats.failed == 0

    def test_replay_retries_exhausted_degrades_per_batch(self, stack):
        """A window whose flush fails every retry bisects into per-batch
        degraded replays; the clean batches all complete."""
        _, _, _, queries = stack
        config = ServingConfig(
            max_batch=6,
            window=2,
            replay_retries=2,
            faults=_plan(FaultSpec(site=SITE_REPLAY, kind="raise", at=(0, 1, 2))),
        )
        service = _service(stack, config)
        ticket = service.submit(queries)  # 12 queries -> two 6-query batches
        service.stop()
        assert all(outcome.ok for outcome in ticket.result(timeout=TIMEOUT))
        assert service.stats.replay_faults == 3  # the 3 window-flush attempts
        assert service.stats.failed == 0
        assert service.stats.flushes == 2  # one degraded flush per batch

    def test_replay_poisoned_single_batch_quarantined(self, stack):
        """A single-batch window that still fails after every retry is
        quarantined: its queries resolve failed with ReplayFailed."""
        _, _, _, queries = stack
        config = ServingConfig(
            max_batch=16,
            replay_retries=1,
            faults=_plan(FaultSpec(site=SITE_REPLAY, kind="raise", at=(0, 1))),
        )
        service = _service(stack, config)
        ticket = service.submit(queries)
        service.stop()
        outcomes = ticket.result(timeout=TIMEOUT)
        assert all(outcome.status == "failed" for outcome in outcomes)
        assert all("ReplayFailed" in outcome.error for outcome in outcomes)
        assert service.stats.quarantined == len(queries)
        assert service.stats.replay_faults == 2

    def test_combined_chaos_strands_nothing(self, stack):
        """The ledger contract: under combined search+replay faults every
        accepted query resolves — accepted == completed+failed+cancelled
        and every ticket is done."""
        reference, _, _, _ = stack
        config = ServingConfig(
            max_batch=8,
            workers=2,
            faults=_plan(
                FaultSpec(site=SITE_SEARCH, kind="raise", rate=0.2),
                FaultSpec(site=SITE_REPLAY, kind="raise", rate=0.2),
                FaultSpec(site=SITE_LOOP, kind="kill", at=(5,)),
                seed=3,
            ),
        )
        service = _service(stack, config)
        tickets = []
        with service:
            for index in range(12):
                group = random_queries(reference, count=4, length=14, seed=100 + index)
                tickets.append(service.submit(group, tenant=f"t{index % 3}"))
            for ticket in tickets:
                ticket.result(timeout=TIMEOUT)
            service.stop()
        assert all(ticket.done() for ticket in tickets)
        stats = service.stats
        assert stats.accepted == stats.completed + stats.failed + stats.cancelled
        assert service.faults.total_injected > 0

    def test_empty_plan_matches_no_injector(self, stack):
        """The fault-free pin: an empty FaultPlan must not perturb a single
        outcome field relative to a service with no injector at all."""
        _, _, _, queries = stack

        def outcomes_with(faults):
            service = _service(stack, ServingConfig(max_batch=6, faults=faults))
            ticket = service.submit(queries)
            service.stop()
            return [
                (o.query, o.interval, o.status, o.error, o.batch_index, o.flush_index)
                for o in ticket.result(timeout=TIMEOUT)
            ]

        assert outcomes_with(None) == outcomes_with(FaultPlan(specs=(), seed=0))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(replay_retries=-1)
        with pytest.raises(ValueError):
            ServingConfig(retry_backoff=-0.1)
        with pytest.raises(ValueError):
            ServingConfig(replay_timeout=0.0)
        with pytest.raises(TypeError):
            ServingConfig(faults="replay.flush:raise:0.2")
