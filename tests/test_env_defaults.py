"""Defensive parsing of the engine's environment toggles.

A long-lived serving process must never crash (or spam its log) because
an operator exported ``REPRO_DEFAULT_SHARDS=auto`` or typo'd the executor
name: malformed values warn exactly once per process and fall back to the
safe serial/thread defaults.
"""

from __future__ import annotations

import warnings

import pytest

import repro.engine.sharded as sharded
from repro.engine.backends import FMIndexBackend
from repro.engine.engine import QueryEngine
from repro.engine.sharded import default_executor, default_replay_workers, default_shards


@pytest.fixture(autouse=True)
def fresh_warn_state():
    """Each test sees virgin warn-once state (it is per-process otherwise)."""
    saved = set(sharded._WARNED_ENV_VALUES)
    sharded._WARNED_ENV_VALUES.clear()
    yield
    sharded._WARNED_ENV_VALUES.clear()
    sharded._WARNED_ENV_VALUES.update(saved)


class TestDefaultShards:
    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv(sharded.SHARDS_ENV, raising=False)
        assert default_shards() == 1

    def test_blank_means_serial(self, monkeypatch):
        monkeypatch.setenv(sharded.SHARDS_ENV, "   ")
        assert default_shards() == 1

    def test_valid_value_parses_with_whitespace(self, monkeypatch):
        monkeypatch.setenv(sharded.SHARDS_ENV, " 8 ")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning is a failure
            assert default_shards() == 8

    @pytest.mark.parametrize("raw", ["abc", "3.5", "4 shards", ""])
    def test_malformed_value_warns_and_falls_back(self, monkeypatch, raw):
        monkeypatch.setenv(sharded.SHARDS_ENV, raw)
        if not raw.strip():
            assert default_shards() == 1
            return
        with pytest.warns(RuntimeWarning, match="malformed"):
            assert default_shards() == 1

    @pytest.mark.parametrize("raw", ["0", "-3"])
    def test_non_positive_value_warns_and_falls_back(self, monkeypatch, raw):
        monkeypatch.setenv(sharded.SHARDS_ENV, raw)
        with pytest.warns(RuntimeWarning, match="non-positive"):
            assert default_shards() == 1

    def test_warns_once_per_value(self, monkeypatch):
        monkeypatch.setenv(sharded.SHARDS_ENV, "bogus")
        with pytest.warns(RuntimeWarning):
            default_shards()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert default_shards() == 1  # second read: silent fallback
        # A *different* bad value still gets its own warning.
        monkeypatch.setenv(sharded.SHARDS_ENV, "also-bogus")
        with pytest.warns(RuntimeWarning):
            default_shards()


class TestDefaultReplayWorkers:
    """REPRO_DEFAULT_REPLAY_WORKERS mirrors the shard toggle's contract:
    malformed or non-positive values warn once and fall back to serial
    replay — an always-on service must never crash on an operator typo."""

    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv(sharded.REPLAY_WORKERS_ENV, raising=False)
        assert default_replay_workers() == 1

    def test_blank_means_serial(self, monkeypatch):
        monkeypatch.setenv(sharded.REPLAY_WORKERS_ENV, "   ")
        assert default_replay_workers() == 1

    def test_valid_value_parses_with_whitespace(self, monkeypatch):
        monkeypatch.setenv(sharded.REPLAY_WORKERS_ENV, " 4 ")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning is a failure
            assert default_replay_workers() == 4

    @pytest.mark.parametrize("raw", ["auto", "2.5", "2 workers", ""])
    def test_malformed_value_warns_and_falls_back(self, monkeypatch, raw):
        monkeypatch.setenv(sharded.REPLAY_WORKERS_ENV, raw)
        if not raw.strip():
            assert default_replay_workers() == 1
            return
        with pytest.warns(RuntimeWarning, match="malformed"):
            assert default_replay_workers() == 1

    @pytest.mark.parametrize("raw", ["0", "-2"])
    def test_non_positive_value_warns_and_falls_back(self, monkeypatch, raw):
        monkeypatch.setenv(sharded.REPLAY_WORKERS_ENV, raw)
        with pytest.warns(RuntimeWarning, match="non-positive"):
            assert default_replay_workers() == 1

    def test_warns_once_per_value(self, monkeypatch):
        monkeypatch.setenv(sharded.REPLAY_WORKERS_ENV, "bogus")
        with pytest.warns(RuntimeWarning):
            default_replay_workers()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert default_replay_workers() == 1  # second read: silent fallback
        monkeypatch.setenv(sharded.REPLAY_WORKERS_ENV, "also-bogus")
        with pytest.warns(RuntimeWarning):
            default_replay_workers()

    def test_independent_of_shard_toggle(self, monkeypatch):
        """The two knobs are separate axes: shard env does not leak into
        the replay default and vice versa."""
        monkeypatch.setenv(sharded.SHARDS_ENV, "8")
        monkeypatch.delenv(sharded.REPLAY_WORKERS_ENV, raising=False)
        assert default_replay_workers() == 1
        monkeypatch.setenv(sharded.REPLAY_WORKERS_ENV, "2")
        monkeypatch.delenv(sharded.SHARDS_ENV, raising=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert default_replay_workers() == 2
            assert default_shards() == 1


class TestDefaultExecutor:
    def test_unset_means_thread(self, monkeypatch):
        monkeypatch.delenv(sharded.EXECUTOR_ENV, raising=False)
        assert default_executor() == "thread"

    def test_known_values_normalise(self, monkeypatch):
        for raw, expected in [("thread", "thread"), (" Process ", "process"), ("THREAD", "thread")]:
            monkeypatch.setenv(sharded.EXECUTOR_ENV, raw)
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert default_executor() == expected

    def test_unknown_value_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(sharded.EXECUTOR_ENV, "greenlet")
        with pytest.warns(RuntimeWarning, match="thread, process"):
            assert default_executor() == "thread"

    def test_warns_once_per_value(self, monkeypatch):
        monkeypatch.setenv(sharded.EXECUTOR_ENV, "fiber")
        with pytest.warns(RuntimeWarning):
            default_executor()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert default_executor() == "thread"


class TestEngineUnderBadEnv:
    def test_engine_construction_survives_malformed_env(self, monkeypatch):
        """The regression this PR fixes: a bad toggle pair must yield a
        working serial engine, not an exception at construction."""
        monkeypatch.setenv(sharded.SHARDS_ENV, "not-a-number")
        monkeypatch.setenv(sharded.EXECUTOR_ENV, "greenlet")
        with pytest.warns(RuntimeWarning):
            engine = QueryEngine(FMIndexBackend("ACGTACGTACGT"))
            result = engine.search_batch(["ACGT", "TTTT"])
            assert engine.shards == 1 and engine.executor == "thread"
        assert len(result.intervals) == 2
